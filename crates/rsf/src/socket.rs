//! Feed distribution over a real transport: Unix-domain-socket feed
//! servers and a matching remote subscriber.
//!
//! The sans-IO [`crate::transport`] layer stays the source of truth;
//! this module is the thin framing that carries its artifacts across a
//! socket, standing in for the HTTPS endpoint the paper proposes
//! ("RSFs can be distributed using conventional protocols", §4). The
//! wire protocol is a simple request/response exchange:
//!
//! ```text
//! request  := "RSFQ" u64 have_sequence u64 have_checkpoint_size
//! response := "RSFR"
//!             u32 n_messages (u32 len, bytes signed-message)*
//!             u32 len, bytes checkpoint
//!             u8 has_proof [u64 old u64 new u32 n (32-byte digest)*]
//!             u32 n_rotations (u32 len, bytes rotation-event)*
//! ```
//!
//! Two servers speak it, answering every request through one shared
//! response builder (`build_response_body`) so their replies are
//! byte-identical by construction:
//!
//! * [`FeedDistributionNode`] — the real thing: a reactor-backed node
//!   (the same [`nrslb_reactor`] engine the trust daemon runs on) that
//!   holds thousands of keep-alive subscriber connections on a few
//!   event loops, serving idle re-polls inline on the loop and
//!   everything else on a small worker pool.
//! * [`FeedSocketServer`] — the deprecated thread-per-connection
//!   ablation arm, kept so E21 can measure exactly what the reactor
//!   buys at the distribution tier.
//!
//! Everything security-relevant (signatures, endorsements, sequence
//! continuity, checkpoint consistency) is verified by the subscriber —
//! the socket is untrusted, exactly like the HTTPS CDN would be.

use crate::quorum::RotationEvent;
use crate::signing::SignedMessage;
use crate::sync::{ResilientReport, Staleness, Subscriber, SubscriberBuilder, SyncCounters};
use crate::translog::Checkpoint;
use crate::transport::{FeedPublisher, SyncReport};
use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::merkle::ConsistencyProof;
use nrslb_crypto::sha256::Digest;
use nrslb_obs::Registry;
use nrslb_reactor::{Frame, ReactorHandle, Service};
use std::io::{ErrorKind, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on any frame body, either direction.
const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

/// A request body is exactly two `u64`s.
const FEED_REQUEST_BODY_LEN: usize = 16;

/// Read timeout on the thread server's accepted streams: blocked serve
/// reads become stop-flag checks at this cadence, which is what lets
/// [`FeedSocketServer`]'s `Drop` join every connection thread.
const SERVE_POLL: Duration = Duration::from_millis(25);

fn io_err(e: std::io::Error) -> RsfError {
    let _ = e;
    RsfError::Wire("socket i/o failure")
}

fn read_frame(stream: &mut UnixStream, magic: &[u8; 4]) -> Result<Vec<u8>, RsfError> {
    let mut head = [0u8; 8];
    stream.read_exact(&mut head).map_err(io_err)?;
    if &head[..4] != magic {
        return Err(RsfError::Wire("bad frame magic"));
    }
    let len = u32::from_le_bytes(head[4..].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(RsfError::Wire("frame too large"));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(io_err)?;
    Ok(body)
}

/// [`read_frame`] for the thread server's serve loops: the stream
/// carries a short read timeout ([`SERVE_POLL`]) and every timeout tick
/// re-checks `stop`, so a connection blocked on a silent peer still
/// unwinds promptly at shutdown.
fn read_exact_stop(
    stream: &mut UnixStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<(), RsfError> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Err(RsfError::Wire("server shutting down"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(RsfError::Wire("socket i/o failure")),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(())
}

fn read_frame_stop(
    stream: &mut UnixStream,
    magic: &[u8; 4],
    stop: &AtomicBool,
) -> Result<Vec<u8>, RsfError> {
    let mut head = [0u8; 8];
    read_exact_stop(stream, &mut head, stop)?;
    if &head[..4] != magic {
        return Err(RsfError::Wire("bad frame magic"));
    }
    let len = u32::from_le_bytes(head[4..].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(RsfError::Wire("frame too large"));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_stop(stream, &mut body, stop)?;
    Ok(body)
}

fn write_frame(stream: &mut UnixStream, magic: &[u8; 4], body: &[u8]) -> Result<(), RsfError> {
    stream.write_all(magic).map_err(io_err)?;
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    stream.write_all(body).map_err(io_err)?;
    stream.flush().map_err(io_err)
}

fn encode_proof(w: &mut Writer, proof: &ConsistencyProof) {
    w.put_u64(proof.old_size);
    w.put_u64(proof.new_size);
    w.put_u32(proof.path.len() as u32);
    for d in &proof.path {
        w.put_bytes(d.as_bytes());
    }
}

fn decode_proof(r: &mut Reader<'_>) -> Result<ConsistencyProof, RsfError> {
    let old_size = r.get_u64()?;
    let new_size = r.get_u64()?;
    let n = r.get_u32()?;
    if n > 1024 {
        return Err(RsfError::Wire("oversized proof"));
    }
    let mut path = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let arr: [u8; 32] = r
            .get_bytes()?
            .try_into()
            .map_err(|_| RsfError::Wire("bad proof digest"))?;
        path.push(Digest(arr));
    }
    Ok(ConsistencyProof {
        old_size,
        new_size,
        path,
    })
}

/// One decoded feed poll: where the subscriber claims to be.
#[derive(Debug, Clone, Copy)]
struct FeedRequest {
    have_sequence: u64,
    have_checkpoint: u64,
}

fn decode_request(body: &[u8]) -> Result<FeedRequest, RsfError> {
    let mut r = Reader::new(body);
    let have_sequence = r.get_u64()?;
    let have_checkpoint = r.get_u64()?;
    r.expect_end()?;
    Ok(FeedRequest {
        have_sequence,
        have_checkpoint,
    })
}

/// Build the RSFR response body for a subscriber at
/// `request.have_sequence` holding a pinned checkpoint of
/// `request.have_checkpoint` leaves. Both servers — the deprecated
/// thread-per-connection ablation arm and the reactor-backed
/// distribution node — answer every request through this one function,
/// so their replies are byte-identical by construction.
fn build_response_body(
    publisher: &Mutex<FeedPublisher>,
    request: FeedRequest,
) -> Result<Vec<u8>, RsfError> {
    let mut publisher = publisher.lock().expect("publisher mutex");
    build_response_with(&mut publisher, request)
}

/// [`build_response_body`] against an already-acquired publisher — the
/// node's fused inline path holds the `try_lock` guard it probed with,
/// so locking again here would deadlock (std mutexes are not
/// reentrant) and re-probing would waste the acquisition.
fn build_response_with(
    publisher: &mut FeedPublisher,
    request: FeedRequest,
) -> Result<Vec<u8>, RsfError> {
    let checkpoint = publisher.checkpoint()?;
    let proof = if request.have_checkpoint > 0 {
        publisher.prove_extension(request.have_checkpoint)
    } else {
        None
    };
    let messages: Vec<Vec<u8>> = publisher
        .fetch(request.have_sequence)
        .into_iter()
        .map(|m| m.encode())
        .collect();
    let rotations: Vec<Vec<u8>> = publisher.rotations().iter().map(|e| e.encode()).collect();

    let mut w = Writer::new();
    w.put_u32(messages.len() as u32);
    for m in &messages {
        w.put_bytes(m);
    }
    w.put_bytes(&checkpoint.encode());
    match proof {
        Some(p) => {
            w.put_u8(1);
            encode_proof(&mut w, &p);
        }
        None => {
            w.put_u8(0);
        }
    }
    w.put_u32(rotations.len() as u32);
    for ev in &rotations {
        w.put_bytes(ev);
    }
    Ok(w.finish())
}

/// A feed server bound to a Unix socket, one thread per connection,
/// sharing a publisher that the operator keeps updating through the
/// mutex. Each connection serves a single request and hangs up.
#[deprecated(
    note = "thread-per-connection ablation arm for E21; use FeedDistributionNode, \
            which holds thousands of keep-alive subscribers on a few event loops"
)]
pub struct FeedSocketServer {
    path: PathBuf,
    publisher: Arc<Mutex<FeedPublisher>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    serves: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

#[allow(deprecated)]
impl FeedSocketServer {
    /// Bind and serve.
    pub fn spawn(
        publisher: Arc<Mutex<FeedPublisher>>,
        socket_path: impl AsRef<Path>,
    ) -> std::io::Result<FeedSocketServer> {
        let path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let serves = Arc::new(Mutex::new(Vec::<JoinHandle<()>>::new()));
        let stop2 = stop.clone();
        let publisher2 = publisher.clone();
        let serves2 = serves.clone();
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                // The short read timeout turns blocked serve reads
                // into stop-flag checks, so Drop can join this thread.
                let _ = stream.set_read_timeout(Some(SERVE_POLL));
                let publisher = publisher2.clone();
                let stop = stop2.clone();
                let handle = std::thread::spawn(move || {
                    let _ = serve_once(&mut stream, &publisher, &stop);
                });
                let mut serves = serves2.lock().expect("serve-thread registry");
                // Reap finished threads as we go so a long-lived server
                // does not accumulate handles.
                let mut live = Vec::with_capacity(serves.len() + 1);
                for h in serves.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                live.push(handle);
                *serves = live;
            }
        });
        Ok(FeedSocketServer {
            path,
            publisher,
            stop,
            accept: Some(accept),
            serves,
        })
    }

    /// The socket path.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// The shared publisher handle (for publishing updates).
    pub fn publisher(&self) -> Arc<Mutex<FeedPublisher>> {
        self.publisher.clone()
    }
}

#[allow(deprecated)]
impl Drop for FeedSocketServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the stop flag.
        let _ = UnixStream::connect(&self.path);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // Serve threads observe the flag within one read-timeout tick.
        let serves: Vec<JoinHandle<()>> = {
            let mut serves = self.serves.lock().expect("serve-thread registry");
            serves.drain(..).collect()
        };
        for t in serves {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn serve_once(
    stream: &mut UnixStream,
    publisher: &Mutex<FeedPublisher>,
    stop: &AtomicBool,
) -> Result<(), RsfError> {
    let body = read_frame_stop(stream, b"RSFQ", stop)?;
    let request = decode_request(&body)?;
    let reply = build_response_body(publisher, request)?;
    write_frame(stream, b"RSFR", &reply)
}

/// The feed wire protocol as a reactor [`Service`]: framing and
/// request decoding for [`Frame`], execution through the shared
/// [`build_response_body`], and an inline guard that keeps idle
/// re-polls off the worker pool.
struct FeedService {
    publisher: Arc<Mutex<FeedPublisher>>,
}

impl Service for FeedService {
    type Request = FeedRequest;

    fn parse(&self, buf: &[u8]) -> Frame<FeedRequest> {
        if buf.len() < 8 {
            return Frame::Incomplete;
        }
        if &buf[..4] != b"RSFQ" {
            // The thread server closes without answering on a bad
            // frame; an empty Fatal reply is the engine's spelling of
            // the same silent hang-up.
            return Frame::Fatal { reply: Vec::new() };
        }
        let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        // A valid request body is exactly two u64s. The thread server
        // reads any cap-respecting length and then fails the decode;
        // rejecting at the header is the same observable silent close,
        // without buffering up to the frame cap first.
        if len != FEED_REQUEST_BODY_LEN {
            return Frame::Fatal { reply: Vec::new() };
        }
        let total = 8 + len;
        if buf.len() < total {
            return Frame::Incomplete;
        }
        match decode_request(&buf[8..total]) {
            Ok(request) => Frame::Request {
                request,
                consumed: total,
            },
            Err(_) => Frame::Fatal { reply: Vec::new() },
        }
    }

    fn max_buffered(&self) -> usize {
        // Requests are 24 bytes and parse bounds any incomplete frame
        // to that, so this is pipelining headroom, not a protocol cap.
        4096
    }

    fn overflow_reply(&self) -> Vec<u8> {
        Vec::new()
    }

    fn execute(&self, request: &FeedRequest) -> Vec<u8> {
        match build_response_body(&self.publisher, *request) {
            Ok(body) => rsfr_frame(&body),
            // The thread server closes without answering when the
            // publisher fails; the engine has no close-from-execute
            // channel, so the node stays silent and the subscriber's
            // attempt timeout classifies the connection as damaged.
            Err(_) => Vec::new(),
        }
    }

    fn try_execute_inline(&self, request: &FeedRequest) -> Option<Vec<u8>> {
        // Idle re-polls only: the subscriber is current (no messages
        // to encode) and the cached checkpoint is fresh (no hash-based
        // signing), so the reply is a few hundred bytes of copies —
        // cheaper than the loop→worker→loop handoff. The guard and the
        // execution share one lock acquisition: try_lock keeps the
        // event loop from ever blocking behind a publish, and the held
        // guard builds the reply, so a publish can no longer land
        // between probe and execute.
        let mut publisher = self.publisher.try_lock().ok()?;
        if request.have_sequence < publisher.sequence() || !publisher.checkpoint_is_cached() {
            return None; // real delta or stale checkpoint: worker
        }
        match build_response_with(&mut publisher, *request) {
            Ok(body) => Some(rsfr_frame(&body)),
            // Same silent close execute() answers failures with.
            Err(_) => Some(Vec::new()),
        }
    }
}

/// Wrap a response body in the `RSFR` length-prefixed frame — the one
/// encoding shared by the worker and inline reply paths.
fn rsfr_frame(body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(b"RSFR");
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// A reactor-backed feed distribution node: the event-driven
/// replacement for [`FeedSocketServer`], built on the same
/// [`nrslb_reactor`] engine as the trust daemon's `Engine::Reactor`.
///
/// Subscriber connections are keep-alive — a derivative store connects
/// once and re-polls on the same stream for its whole lifetime — so a
/// node holds its entire subscriber population (E21 drives it past
/// 5 000 concurrent connections) on a few event loops plus a small
/// worker pool. Idle re-polls, the steady state of a healthy feed
/// (nothing new since the last poll), are served inline on the event
/// loop under a cost guard: the publisher lock is free, the subscriber
/// is current, and the signed checkpoint is cached, so the reply is
/// cheap copies with no signing and no handoff.
pub struct FeedDistributionNode {
    path: PathBuf,
    publisher: Arc<Mutex<FeedPublisher>>,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    engine: Option<ReactorHandle>,
}

impl FeedDistributionNode {
    /// Bind and serve with default sizing: event loops scaled to the
    /// machine (half the cores, clamped to 1..=4) and two workers —
    /// execution is serialized on the publisher mutex, so extra
    /// workers only overlap socket writes.
    pub fn spawn(
        publisher: Arc<Mutex<FeedPublisher>>,
        socket_path: impl AsRef<Path>,
    ) -> std::io::Result<FeedDistributionNode> {
        let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
        FeedDistributionNode::spawn_with(publisher, socket_path, (cores / 2).clamp(1, 4), 2)
    }

    /// Bind and serve with explicit event-loop and worker counts (both
    /// floored at 1).
    pub fn spawn_with(
        publisher: Arc<Mutex<FeedPublisher>>,
        socket_path: impl AsRef<Path>,
        event_loops: usize,
        workers: usize,
    ) -> std::io::Result<FeedDistributionNode> {
        let path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new());
        let service = Arc::new(FeedService {
            publisher: Arc::clone(&publisher),
        });
        let engine = ReactorHandle::spawn(
            listener,
            event_loops.max(1),
            workers.max(1),
            service,
            &registry,
            Arc::clone(&stop),
        )?;
        Ok(FeedDistributionNode {
            path,
            publisher,
            registry,
            stop,
            engine: Some(engine),
        })
    }

    /// The socket path.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// The shared publisher handle (for publishing updates).
    pub fn publisher(&self) -> Arc<Mutex<FeedPublisher>> {
        self.publisher.clone()
    }

    /// The node's metrics registry: the engine's per-loop series
    /// (`nrslb_reactor_connections`, `nrslb_reactor_ready_events`,
    /// `nrslb_reactor_backpressure_total`, `nrslb_reactor_inline_total`)
    /// labelled `loop="N"`.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Render the node's metrics in text exposition format.
    pub fn render_metrics(&self) -> String {
        self.registry.render_text()
    }
}

impl Drop for FeedDistributionNode {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept thread so it observes the stop flag; the
        // engine's shutdown then wakes and joins loops and workers.
        let _ = UnixStream::connect(&self.path);
        if let Some(mut engine) = self.engine.take() {
            engine.shutdown();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl SubscriberBuilder {
    /// Finish as a socket-backed subscriber polling the feed served at
    /// `socket` — the remote counterpart of
    /// [`SubscriberBuilder::build`].
    pub fn connect(self, socket: impl AsRef<Path>) -> RemoteSubscriber {
        RemoteSubscriber {
            inner: self.build(),
            socket: socket.as_ref().to_path_buf(),
            stream: None,
            keep_alive: true,
        }
    }
}

/// A subscriber that polls a [`FeedDistributionNode`] (or the
/// deprecated [`FeedSocketServer`]) over the socket.
///
/// Wraps the sans-IO [`Subscriber`]'s *state* but performs its own
/// verification of the transported artifacts, since it cannot hold a
/// reference to the remote publisher. The engine's [`crate::sync::SyncPolicy`]
/// governs the socket too: `attempt_timeout_ms` becomes the stream's
/// read/write timeout and [`RemoteSubscriber::sync`] retries transient
/// failures with the policy's (real, slept) backoff.
///
/// Connections are kept alive across polls by default: the stream from
/// a successful exchange is cached and reused, and a failure on a
/// reused stream (a one-shot server hanging up, a restarted node)
/// falls back to exactly one fresh connection before erroring — so the
/// same subscriber works against both servers, paying the per-poll
/// connect only where the server forces it.
pub struct RemoteSubscriber {
    inner: Subscriber,
    socket: PathBuf,
    stream: Option<UnixStream>,
    keep_alive: bool,
}

impl RemoteSubscriber {
    /// The local store replica.
    pub fn store(&self) -> &nrslb_rootstore::RootStore {
        self.inner.store()
    }

    /// Last applied sequence.
    pub fn sequence(&self) -> u64 {
        self.inner.sequence()
    }

    /// The wrapped sync engine (state, staleness, quarantine).
    pub fn subscriber(&self) -> &Subscriber {
        &self.inner
    }

    /// Scrapeable sync counters.
    pub fn counters(&self) -> SyncCounters {
        self.inner.counters()
    }

    /// Serve the last-good store with a freshness verdict.
    pub fn serve(&mut self, now: i64) -> (&nrslb_rootstore::RootStore, Staleness) {
        self.inner.serve(now)
    }

    /// Toggle connection reuse across polls (on by default). Turning
    /// it off drops any cached stream and reverts to one connection
    /// per poll — the E21 ablation arm's access pattern.
    pub fn set_keep_alive(&mut self, keep_alive: bool) {
        self.keep_alive = keep_alive;
        if !keep_alive {
            self.stream = None;
        }
    }

    /// One request/response exchange, reusing the kept-alive stream
    /// when there is one. A failure on a reused stream is
    /// indistinguishable from the server having hung up between polls
    /// (the deprecated thread server always does), so it falls through
    /// to one fresh connection rather than surfacing an error.
    fn exchange(&mut self, request: &[u8], timeout: Duration) -> Result<Vec<u8>, RsfError> {
        if let Some(mut stream) = self.stream.take() {
            if let Ok(body) = roundtrip(&mut stream, request) {
                self.stream = Some(stream);
                return Ok(body);
            }
        }
        let mut stream = UnixStream::connect(&self.socket).map_err(io_err)?;
        stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
        let body = roundtrip(&mut stream, request)?;
        if self.keep_alive {
            self.stream = Some(stream);
        }
        Ok(body)
    }

    /// Poll the server once (no retries).
    pub fn sync_once(&mut self, now: i64) -> Result<SyncReport, RsfError> {
        let timeout = Duration::from_millis(self.inner.policy().attempt_timeout_ms);
        let mut req = Writer::new();
        req.put_u64(self.inner.sequence());
        req.put_u64(self.inner.pinned_checkpoint().map(|c| c.size).unwrap_or(0));
        let body = self.exchange(&req.finish(), timeout)?;

        let mut r = Reader::for_artifact(&body, "feed response");
        let n = r.field("message count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many messages"));
        }
        let mut messages = Vec::with_capacity(n as usize);
        for _ in 0..n {
            messages.push(SignedMessage::decode(r.field("message").get_bytes()?)?);
        }
        let checkpoint = Checkpoint::decode(r.field("checkpoint").get_bytes()?)?;
        let proof = match r.field("proof tag").get_u8()? {
            0 => None,
            1 => Some(decode_proof(&mut r)?),
            _ => return Err(r.error("bad proof tag")),
        };
        let n_rotations = r.field("rotation count").get_u32()?;
        if n_rotations > 10_000 {
            return Err(r.error("too many rotations"));
        }
        let mut rotations = Vec::with_capacity(n_rotations as usize);
        for _ in 0..n_rotations {
            rotations.push(RotationEvent::decode(r.field("rotation").get_bytes()?)?);
        }
        r.expect_end()?;
        self.inner
            .poll_full(messages, rotations, checkpoint, proof, now)
    }

    /// Poll the server once at the injected clock's current time.
    pub fn sync_once_now(&mut self) -> Result<SyncReport, RsfError> {
        let now = self.inner.clock().now_secs();
        self.sync_once(now)
    }

    /// [`RemoteSubscriber::sync`] at the injected clock's current time.
    pub fn sync_now(&mut self) -> Result<ResilientReport, RsfError> {
        let now = self.inner.clock().now_secs();
        self.sync(now)
    }

    /// Poll the server, retrying transient failures (connection
    /// refused, timeouts, damaged frames) with the policy's
    /// exponential backoff — slept on the subscriber's injected clock,
    /// so tests with a [`crate::clock::VirtualClock`] retry instantly
    /// while production wall clocks really wait. Split-view evidence
    /// aborts immediately.
    pub fn sync(&mut self, now: i64) -> Result<ResilientReport, RsfError> {
        let max_attempts = self.inner.policy().max_attempts;
        let mut backoff_ms_total = 0u64;
        let mut attempts = 0u32;
        let mut last_err = RsfError::Wire("no attempts made");
        while attempts < max_attempts {
            let attempt = attempts;
            attempts += 1;
            match self.sync_once(now) {
                Ok(report) => {
                    return Ok(ResilientReport {
                        report,
                        attempts,
                        backoff_ms_total,
                    })
                }
                Err(e @ (RsfError::SplitView(_) | RsfError::Quarantined(_))) => return Err(e),
                Err(e) => last_err = e,
            }
            if attempts < max_attempts {
                self.inner.note_retry();
                let backoff = self.inner.backoff_ms(attempt);
                backoff_ms_total += backoff;
                let clock = Arc::clone(self.inner.clock());
                clock.sleep_ms(backoff);
            }
        }
        Err(RsfError::Exhausted {
            attempts,
            last: Box::new(last_err),
        })
    }
}

fn roundtrip(stream: &mut UnixStream, request: &[u8]) -> Result<Vec<u8>, RsfError> {
    write_frame(stream, b"RSFQ", request)?;
    read_frame(stream, b"RSFR")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::signing::{CoordinatorKey, FeedKey, FeedTrust};
    use nrslb_rootstore::{RootStore, TrustStatus};
    use nrslb_x509::testutil::simple_chain;

    fn socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nrslb-rsf-{tag}-{}.sock", std::process::id()))
    }

    fn fresh_publisher(tag: &str) -> (Arc<Mutex<FeedPublisher>>, FeedTrust, RootStore) {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let key = FeedKey::new([2; 32], 8, &coordinator).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let pki = simple_chain(&format!("sock-{tag}.example"));
        let mut store = RootStore::new("nss");
        store.add_trusted(pki.root.clone()).unwrap();
        let publisher = FeedPublisher::new("nss", key, &store, 0).unwrap();
        (Arc::new(Mutex::new(publisher)), trust, store)
    }

    fn setup(tag: &str) -> (FeedSocketServer, RemoteSubscriber, RootStore) {
        let (publisher, trust, store) = fresh_publisher(tag);
        let server = FeedSocketServer::spawn(publisher, socket_path(tag)).unwrap();
        let subscriber = Subscriber::builder("remote", trust).connect(server.socket_path());
        (server, subscriber, store)
    }

    fn setup_node(tag: &str) -> (FeedDistributionNode, RemoteSubscriber, RootStore) {
        let (publisher, trust, store) = fresh_publisher(tag);
        let node = FeedDistributionNode::spawn_with(publisher, socket_path(tag), 2, 2).unwrap();
        let subscriber = Subscriber::builder("remote", trust).connect(node.socket_path());
        (node, subscriber, store)
    }

    #[test]
    fn remote_bootstrap_and_incremental_sync() {
        let (server, mut subscriber, mut store) = setup("inc");
        let report = subscriber.sync(0).unwrap();
        assert!(report.report.snapshot_applied);
        assert_eq!(subscriber.store().len(), 1);

        // Publish a distrust; remote pickup on next poll.
        let fp = *store.iter().next().unwrap().0;
        store.distrust(fp, "incident");
        server
            .publisher()
            .lock()
            .unwrap()
            .publish(&store, 100)
            .unwrap();
        let report = subscriber.sync(10).unwrap();
        assert_eq!(report.report.deltas_applied, 1);
        assert_eq!(subscriber.store().status(&fp), TrustStatus::Distrusted);

        // Idle poll: nothing to apply, checkpoint still verifies.
        let report = subscriber.sync(20).unwrap();
        assert_eq!(report.report.deltas_applied, 0);
        assert!(!report.report.snapshot_applied);
    }

    /// The same end-to-end flow against the reactor-backed node, over
    /// a single kept-alive connection.
    #[test]
    fn node_bootstrap_and_incremental_sync() {
        let (node, mut subscriber, mut store) = setup_node("node-inc");
        let report = subscriber.sync(0).unwrap();
        assert!(report.report.snapshot_applied);
        assert_eq!(subscriber.store().len(), 1);
        assert!(
            subscriber.stream.is_some(),
            "keep-alive stream cached after a successful poll"
        );

        let fp = *store.iter().next().unwrap().0;
        store.distrust(fp, "incident");
        node.publisher()
            .lock()
            .unwrap()
            .publish(&store, 100)
            .unwrap();
        let report = subscriber.sync(10).unwrap();
        assert_eq!(report.report.deltas_applied, 1);
        assert_eq!(subscriber.store().status(&fp), TrustStatus::Distrusted);

        // Idle re-polls ride the cached stream and qualify for inline
        // service: the subscriber is current and the checkpoint was
        // signed (and cached) answering the previous poll.
        for now in [20, 30, 40] {
            let report = subscriber.sync(now).unwrap();
            assert_eq!(report.report.deltas_applied, 0);
        }
        let inline: u64 = (0..8)
            .map(|i| {
                node.registry()
                    .counter_with(
                        "nrslb_reactor_inline_total",
                        &[("loop", &i.to_string())],
                        "requests served inline on the event loop (cost-guard hits)",
                    )
                    .get()
            })
            .sum();
        assert!(inline >= 3, "idle re-polls served inline, got {inline}");
    }

    /// Keep-alive against the one-shot thread server degrades
    /// gracefully: the reused stream fails, the fallback connection
    /// answers, and the poll still succeeds.
    #[test]
    fn keep_alive_falls_back_against_one_shot_server() {
        let (_server, mut subscriber, _store) = setup("ka-fallback");
        assert!(subscriber.sync(0).unwrap().report.snapshot_applied);
        for now in [10, 20] {
            let report = subscriber.sync(now).unwrap();
            assert_eq!(report.report.deltas_applied, 0);
        }
    }

    #[test]
    fn wrong_coordinator_rejected_over_socket() {
        let (server, _subscriber, _store) = setup("forge");
        let other = CoordinatorKey::from_seed([9; 32], 4).unwrap();
        // A virtual clock turns the retry backoff into instant,
        // deterministic time-advancement: no real sleeping in the test.
        let clock = crate::clock::VirtualClock::shared(0);
        let mut victim = Subscriber::builder("victim", FeedTrust::single(other.public()))
            .policy(crate::sync::SyncPolicy {
                base_backoff_ms: 1_000,
                max_backoff_ms: 2_000,
                max_attempts: 3,
                ..Default::default()
            })
            .clock(clock.clone())
            .connect(server.socket_path());
        let err = victim.sync_now();
        assert!(matches!(err, Err(RsfError::Exhausted { .. })));
        assert!(victim.store().is_empty());
        assert!(
            clock.now_millis() >= 1_000,
            "backoff must have been slept on the virtual clock"
        );
    }

    #[test]
    fn wrong_coordinator_rejected_over_node() {
        let (node, _subscriber, _store) = setup_node("node-forge");
        let other = CoordinatorKey::from_seed([9; 32], 4).unwrap();
        let clock = crate::clock::VirtualClock::shared(0);
        let mut victim = Subscriber::builder("victim", FeedTrust::single(other.public()))
            .policy(crate::sync::SyncPolicy {
                base_backoff_ms: 1_000,
                max_backoff_ms: 2_000,
                max_attempts: 3,
                ..Default::default()
            })
            .clock(clock.clone())
            .connect(node.socket_path());
        let err = victim.sync_now();
        assert!(matches!(err, Err(RsfError::Exhausted { .. })));
        assert!(victim.store().is_empty());
    }

    #[test]
    fn server_socket_cleanup_on_drop() {
        let (server, _s, _st) = setup("cleanup");
        let path = server.socket_path().to_path_buf();
        assert!(path.exists());
        drop(server);
        assert!(!path.exists());
    }

    #[test]
    fn node_socket_cleanup_on_drop() {
        let (node, mut subscriber, _store) = setup_node("node-cleanup");
        // Drop with a live kept-alive connection: the engine must
        // still unwind (close the connection, join loops and workers).
        assert!(subscriber.sync(0).is_ok());
        let path = node.socket_path().to_path_buf();
        assert!(path.exists());
        drop(node);
        assert!(!path.exists());
    }

    /// The shutdown satellite: a connection that never completes a
    /// request must not wedge the thread server's Drop.
    #[test]
    fn server_drop_joins_stalled_connections() {
        let (publisher, _trust, _store) = fresh_publisher("stall");
        let server = FeedSocketServer::spawn(publisher, socket_path("stall")).unwrap();
        // Half a request header, then silence.
        let mut stalled = UnixStream::connect(server.socket_path()).unwrap();
        stalled.write_all(b"RSF").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let start = std::time::Instant::now();
        drop(server);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "drop must join serve threads promptly, took {:?}",
            start.elapsed()
        );
        drop(stalled);
    }
}
