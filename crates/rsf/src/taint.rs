//! Taint sets: the precise blast radius of a feed update.
//!
//! A root-store delta touches a handful of roots; re-deriving every
//! cached verdict after each one is the batch-recomputation cliff the
//! incremental pipeline removes. [`TaintSet::of_delta`] computes, from
//! a [`Delta`] and the store state *before* it is
//! applied, every identity a downstream verdict could depend on:
//!
//! * **root fingerprints** — upserted, removed, or distrusted roots
//!   (old and new state both matter, so the pre-image store is
//!   consulted for entries the delta replaces);
//! * **GCC source hashes** — the content-addressed policy identities
//!   attached before or after the delta, matching
//!   `VerdictKey.gcc` / [`Gcc::source_hash`](nrslb_rootstore::Gcc);
//! * **issuer SPKI fingerprints** — the keys whose signature
//!   memoizations and chain verdicts a root swap invalidates.
//!
//! Snapshot fallback produces [`TaintSet::full`]: a snapshot replaces
//! the whole store, so everything is tainted — but it flows through the
//! *same* invalidation code path as a precise delta, keeping one
//! mechanism for both ingest paths.

use crate::feed::Delta;
use nrslb_crypto::sha256::{sha256, Digest};
use nrslb_rootstore::RootStore;
use std::collections::BTreeSet;

/// The set of trust identities a feed update may have changed.
///
/// Either `full` (snapshot semantics: everything is suspect) or three
/// sets of digests keyed the way verdict caches index their entries.
/// Empty means the update provably changed nothing a cached verdict
/// depends on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaintSet {
    full: bool,
    roots: BTreeSet<Digest>,
    gcc_sources: BTreeSet<Digest>,
    issuer_spkis: BTreeSet<Digest>,
}

impl TaintSet {
    /// Nothing tainted.
    pub fn empty() -> TaintSet {
        TaintSet::default()
    }

    /// Everything tainted — the snapshot-fallback taint.
    pub fn full() -> TaintSet {
        TaintSet {
            full: true,
            ..TaintSet::default()
        }
    }

    /// Does this taint cover the whole store?
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Is nothing tainted at all?
    pub fn is_empty(&self) -> bool {
        !self.full
            && self.roots.is_empty()
            && self.gcc_sources.is_empty()
            && self.issuer_spkis.is_empty()
    }

    /// Tainted root certificate fingerprints.
    pub fn roots(&self) -> &BTreeSet<Digest> {
        &self.roots
    }

    /// Tainted GCC source hashes (the content-addressed policy ids).
    pub fn gcc_sources(&self) -> &BTreeSet<Digest> {
        &self.gcc_sources
    }

    /// Tainted issuer SPKI fingerprints.
    pub fn issuer_spkis(&self) -> &BTreeSet<Digest> {
        &self.issuer_spkis
    }

    /// Mark a root fingerprint tainted.
    pub fn taint_root(&mut self, fp: Digest) {
        self.roots.insert(fp);
    }

    /// Mark a GCC source hash tainted.
    pub fn taint_gcc_source(&mut self, hash: Digest) {
        self.gcc_sources.insert(hash);
    }

    /// Mark an issuer SPKI fingerprint tainted.
    pub fn taint_issuer_spki(&mut self, fp: Digest) {
        self.issuer_spkis.insert(fp);
    }

    /// Every tainted digest regardless of kind — the flat view cache
    /// invalidation indexes by.
    pub fn digests(&self) -> impl Iterator<Item = Digest> + '_ {
        self.roots
            .iter()
            .chain(&self.gcc_sources)
            .chain(&self.issuer_spkis)
            .copied()
    }

    /// Does the flat digest view contain `d`? Full taint matches
    /// everything.
    pub fn contains(&self, d: &Digest) -> bool {
        self.full
            || self.roots.contains(d)
            || self.gcc_sources.contains(d)
            || self.issuer_spkis.contains(d)
    }

    /// Absorb another taint set (e.g. accumulate across the updates of
    /// one poll batch). Full taint is absorbing.
    pub fn merge(&mut self, other: &TaintSet) {
        if other.full {
            *self = TaintSet::full();
            return;
        }
        if self.full {
            return;
        }
        self.roots.extend(&other.roots);
        self.gcc_sources.extend(&other.gcc_sources);
        self.issuer_spkis.extend(&other.issuer_spkis);
    }

    /// The precise taint of applying `delta` to `store_before` (the
    /// store state *before* [`Delta::apply`] runs, so replaced entries'
    /// old GCC attachments and keys are captured too).
    pub fn of_delta(delta: &Delta, store_before: &RootStore) -> TaintSet {
        let mut taint = TaintSet::empty();
        for entry in &delta.upserted {
            let fp = entry.cert.fingerprint();
            taint.taint_root(fp);
            taint.taint_issuer_spki(entry.cert.public_key().fingerprint());
            for gcc in &entry.gccs {
                taint.taint_gcc_source(sha256(gcc.source.as_bytes()));
            }
            taint.absorb_old_record(store_before, &fp);
        }
        for fp in delta
            .removed
            .iter()
            .chain(delta.distrusted.iter().map(|(fp, _)| fp))
        {
            taint.taint_root(*fp);
            taint.absorb_old_record(store_before, fp);
        }
        taint
    }

    /// Taint whatever the pre-image store currently attaches to `fp`.
    fn absorb_old_record(&mut self, store: &RootStore, fp: &Digest) {
        if let Some(record) = store.record(fp) {
            self.taint_issuer_spki(record.cert.public_key().fingerprint());
            for gcc in &record.gccs {
                self.taint_gcc_source(gcc.source_hash());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u8) -> Digest {
        Digest([n; 32])
    }

    #[test]
    fn empty_and_full_semantics() {
        let empty = TaintSet::empty();
        assert!(empty.is_empty());
        assert!(!empty.is_full());
        assert!(!empty.contains(&d(1)));

        let full = TaintSet::full();
        assert!(full.is_full());
        assert!(!full.is_empty());
        assert!(full.contains(&d(1)));
        assert_eq!(full.digests().count(), 0, "full taint has no finite view");
    }

    #[test]
    fn merge_accumulates_and_full_absorbs() {
        let mut a = TaintSet::empty();
        a.taint_root(d(1));
        let mut b = TaintSet::empty();
        b.taint_gcc_source(d(2));
        b.taint_issuer_spki(d(3));
        a.merge(&b);
        assert!(a.contains(&d(1)));
        assert!(a.contains(&d(2)));
        assert!(a.contains(&d(3)));
        assert_eq!(a.digests().count(), 3);

        a.merge(&TaintSet::full());
        assert!(a.is_full());
        let mut c = TaintSet::full();
        c.merge(&TaintSet::empty());
        assert!(c.is_full(), "full taint is sticky");
    }
}
