//! The derivative-strategy matrix (§2.3): for each incident, what happens
//! to clients whose root store (a) keeps the affected root with full
//! trust, (b) removes it entirely, or (c) applies the primary's GCC?
//!
//! Binary derivatives must pick (a) — staying vulnerable to the incident's
//! mis-issued chains — or (b) — breaking every legitimate chain under the
//! root (Debian's Symantec experience). Only (c) matches the primary.

use crate::pki::IncidentScenario;
use nrslb_core::{ValidationMode, Validator};
use nrslb_rootstore::RootStore;

/// How a derivative store mirrors the primary's response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DerivativeStrategy {
    /// Keep the root, no policy (what an out-of-date or
    /// can't-express-policy derivative does).
    BinaryKeep,
    /// Remove the root entirely (what Debian did for Symantec).
    BinaryRemove,
    /// Apply the primary's GCC (the paper's proposal).
    Gcc,
}

impl std::fmt::Display for DerivativeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DerivativeStrategy::BinaryKeep => "binary-keep",
            DerivativeStrategy::BinaryRemove => "binary-remove",
            DerivativeStrategy::Gcc => "gcc",
        })
    }
}

/// Outcome counts for one (scenario, strategy) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScenarioStats {
    /// Legitimate chains accepted.
    pub legitimate_accepted: usize,
    /// Total legitimate chains.
    pub legitimate_total: usize,
    /// Attack chains accepted (each one is a live vulnerability).
    pub attacks_accepted: usize,
    /// Total attack chains.
    pub attacks_total: usize,
}

impl ScenarioStats {
    /// Any attack chain accepted?
    pub fn vulnerable(&self) -> bool {
        self.attacks_accepted > 0
    }

    /// Any legitimate chain rejected (collateral denial of service)?
    pub fn denial_of_service(&self) -> bool {
        self.legitimate_accepted < self.legitimate_total
    }

    /// Matches the primary exactly: no vulnerability and no DoS.
    pub fn matches_primary(&self) -> bool {
        !self.vulnerable() && !self.denial_of_service()
    }
}

/// Derive the store a strategy produces from the scenario's primary.
pub fn derivative_store(scenario: &IncidentScenario, strategy: DerivativeStrategy) -> RootStore {
    match strategy {
        DerivativeStrategy::Gcc => scenario.store.clone(),
        DerivativeStrategy::BinaryKeep => {
            // A plain certificate collection: the certificates, nothing
            // else — no GCCs, no systematic constraints.
            let mut store = RootStore::new("derivative-keep");
            for (_, rec) in scenario.store.iter() {
                store.add_trusted(rec.cert.clone()).expect("roots are CAs");
            }
            store
        }
        DerivativeStrategy::BinaryRemove => {
            let mut store = RootStore::new("derivative-remove");
            for (_, rec) in scenario.store.iter() {
                store.add_trusted(rec.cert.clone()).expect("roots are CAs");
            }
            store.distrust(scenario.affected_root.fingerprint(), "mirrored removal");
            store
        }
    }
}

/// Run every labeled chain of `scenario` against the strategy's store.
pub fn evaluate_scenario(
    scenario: &IncidentScenario,
    strategy: DerivativeStrategy,
) -> ScenarioStats {
    let store = derivative_store(scenario, strategy);
    let validator = Validator::new(store, ValidationMode::UserAgent);
    let mut stats = ScenarioStats {
        legitimate_total: scenario.legitimate.len(),
        attacks_total: scenario.attacks.len(),
        ..Default::default()
    };
    for case in &scenario.legitimate {
        let outcome = validator
            .validate(&case.leaf, &case.intermediates, case.usage, case.at)
            .expect("validation machinery");
        if outcome.accepted() {
            stats.legitimate_accepted += 1;
        }
    }
    for case in &scenario.attacks {
        let outcome = validator
            .validate(&case.leaf, &case.intermediates, case.usage, case.at)
            .expect("validation machinery");
        if outcome.accepted() {
            stats.attacks_accepted += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::all_incidents;

    #[test]
    fn binary_keep_is_vulnerable_everywhere() {
        for spec in all_incidents() {
            let scenario = (spec.build)();
            let stats = evaluate_scenario(&scenario, DerivativeStrategy::BinaryKeep);
            assert!(stats.vulnerable(), "{}: keep should be vulnerable", spec.id);
            assert!(
                !stats.denial_of_service(),
                "{}: keep should not break legitimate chains",
                spec.id
            );
        }
    }

    #[test]
    fn binary_remove_causes_dos_everywhere() {
        for spec in all_incidents() {
            let scenario = (spec.build)();
            let stats = evaluate_scenario(&scenario, DerivativeStrategy::BinaryRemove);
            assert!(
                stats.denial_of_service(),
                "{}: remove should break legitimate chains",
                spec.id
            );
            assert!(
                !stats.vulnerable(),
                "{}: remove should block attacks",
                spec.id
            );
        }
    }

    #[test]
    fn gcc_matches_primary_everywhere() {
        for spec in all_incidents() {
            let scenario = (spec.build)();
            let stats = evaluate_scenario(&scenario, DerivativeStrategy::Gcc);
            assert!(
                stats.matches_primary(),
                "{}: GCC strategy should match the primary exactly ({stats:?})",
                spec.id
            );
        }
    }

    #[test]
    fn strategies_are_distinct() {
        // Sanity: the three strategies produce three different stores for
        // at least the Symantec scenario.
        let scenario = (all_incidents()[5].build)();
        let keep = derivative_store(&scenario, DerivativeStrategy::BinaryKeep);
        let remove = derivative_store(&scenario, DerivativeStrategy::BinaryRemove);
        let gcc = derivative_store(&scenario, DerivativeStrategy::Gcc);
        let fp = scenario.affected_root.fingerprint();
        assert!(keep.gccs_for(&fp).is_empty());
        assert!(!gcc.gccs_for(&fp).is_empty());
        assert_eq!(remove.status(&fp), nrslb_rootstore::TrustStatus::Distrusted);
    }
}
