//! Scenario scaffolding: small signed PKIs with labeled good/attack
//! chains.

use nrslb_rootstore::{RootStore, Usage};
use nrslb_x509::builder::{CaKey, CertificateBuilder};
use nrslb_x509::extensions::{ExtendedKeyUsage, KeyUsage};
use nrslb_x509::{Certificate, DistinguishedName};

/// One labeled validation case within a scenario.
#[derive(Clone, Debug)]
pub struct TestChain {
    /// Human-readable label ("google.com via rogue intermediate").
    pub label: String,
    /// The leaf to validate.
    pub leaf: Certificate,
    /// The intermediate pool available to the validator.
    pub intermediates: Vec<Certificate>,
    /// Validation time.
    pub at: i64,
    /// Requested usage.
    pub usage: Usage,
}

/// A complete incident scenario.
pub struct IncidentScenario {
    /// The primary's store *after* its response (GCC attached and/or
    /// systematic constraints set).
    pub store: RootStore,
    /// The affected root certificate.
    pub affected_root: Certificate,
    /// Chains that must remain accepted (collateral if rejected).
    pub legitimate: Vec<TestChain>,
    /// Chains that must be rejected (vulnerability if accepted).
    pub attacks: Vec<TestChain>,
}

/// Mid-2015 reference timestamp used as "now" in most scenarios.
pub const NOW_2015: i64 = 1_430_000_000;
/// Mid-2017 reference.
pub const NOW_2017: i64 = 1_500_000_000;
/// Mid-2022 reference.
pub const NOW_2022: i64 = 1_655_000_000;

/// A CA signing key + its certificate.
pub struct Ca {
    /// Signing key.
    pub key: CaKey,
    /// Certificate (self-signed for roots).
    pub cert: Certificate,
}

/// Build a self-signed root CA valid across all scenario times.
pub fn root_ca(cn: &str, tag: u8) -> Ca {
    let key = CaKey::generate_for_tests(cn, tag);
    let cert = CertificateBuilder::new()
        .validity_window(0, 4_000_000_000)
        .ca(None)
        .key_usage(KeyUsage::KEY_CERT_SIGN.union(KeyUsage::CRL_SIGN))
        .build_self_signed(&key)
        .expect("root construction");
    Ca { key, cert }
}

/// Build an intermediate CA under `parent`.
pub fn intermediate_ca(cn: &str, tag: u8, parent: &Ca) -> Ca {
    let key = CaKey::generate_for_tests(cn, tag);
    let cert = CertificateBuilder::new()
        .subject(key.name().clone())
        .subject_key(key.public())
        .validity_window(0, 4_000_000_000)
        .ca(Some(0))
        .key_usage(KeyUsage::KEY_CERT_SIGN.union(KeyUsage::CRL_SIGN))
        .build_signed_by(&parent.key)
        .expect("intermediate construction");
    Ca { key, cert }
}

/// Issue a TLS server leaf for `host` under `issuer`.
pub fn leaf(host: &str, issuer: &Ca, not_before: i64, not_after: i64) -> Certificate {
    leaf_opts(host, issuer, not_before, not_after, false)
}

/// Issue a leaf, optionally asserting the EV policy.
pub fn leaf_opts(
    host: &str,
    issuer: &Ca,
    not_before: i64,
    not_after: i64,
    ev: bool,
) -> Certificate {
    let mut b = CertificateBuilder::new()
        .subject(DistinguishedName::common_name(host))
        .dns_names(&[host])
        .validity_window(not_before, not_after)
        .key_usage(KeyUsage::DIGITAL_SIGNATURE)
        .extended_key_usage(ExtendedKeyUsage::server_auth());
    if ev {
        b = b.ev();
    }
    b.build_signed_by(&issuer.key).expect("leaf construction")
}

impl TestChain {
    /// Convenience constructor.
    pub fn new(
        label: &str,
        leaf: Certificate,
        intermediates: Vec<Certificate>,
        at: i64,
        usage: Usage,
    ) -> TestChain {
        TestChain {
            label: label.to_string(),
            leaf,
            intermediates,
            at,
            usage,
        }
    }
}
