//! # `nrslb-incidents` — the paper's seven root-CA incidents, executable
//!
//! Section 2.2 of the paper reviews a decade of CA incidents and the
//! ad-hoc partial distrust each provoked. This crate encodes every one
//! of them as a **General Certificate Constraint** plus a synthetic
//! scenario (a signed mini-PKI with chains that must stay accepted and
//! attack chains that must be rejected):
//!
//! | module | incident | year | primary response modeled |
//! |---|---|---|---|
//! | [`catalog::turktrust`] | TURKTRUST mis-issued intermediates | 2013 | EV disallowed; TUBITAK-style constraint to Turkish TLD |
//! | [`catalog::anssi`] | ANSSI MITM intermediate | 2013 | name-constrained to French TLDs |
//! | [`catalog::india_cca`] | India CCA mis-issuance | 2014 | name-constrained to Indian TLDs |
//! | [`catalog::cnnic`] | MCS/CNNIC MITM | 2015 | allowlist of exempt subordinates |
//! | [`catalog::wosign`] | WoSign backdating / StartCom | 2016 | distrust leaves issued after cutoff |
//! | [`catalog::symantec`] | Symantec gradual distrust | 2018 | Listing 2: date cutoff + exempt intermediates |
//! | [`catalog::trustcor`] | TrustCor removal | 2022 | Listing 1: date/usage pairs + EV bit |
//!
//! [`matrix`] evaluates each scenario under three derivative-store
//! strategies — keep the root (binary trust), remove the root (binary
//! distrust), or apply the GCC — quantifying the paper's §2.3 argument
//! that binary derivatives must choose between vulnerability and denial
//! of service.

#![warn(missing_docs)]

pub mod catalog;
pub mod matrix;
pub mod pki;

pub use catalog::{all_incidents, IncidentSpec};
pub use matrix::{evaluate_scenario, DerivativeStrategy, ScenarioStats};
pub use pki::{IncidentScenario, TestChain};
