//! The seven incidents, each as a GCC-bearing scenario.

use crate::pki::{
    intermediate_ca, leaf, leaf_opts, root_ca, IncidentScenario, TestChain, NOW_2015, NOW_2017,
};
use nrslb_rootstore::{Gcc, GccMetadata, RootStore, Usage};

/// June 1st 2016, the Symantec distrust cutoff (paper Listing 2).
pub const JUNE_1ST_2016: i64 = 1_464_753_600;
/// November 30th 2022, the TrustCor cutoff (paper Listing 1).
pub const NOV_30TH_2022: i64 = 1_669_784_400;
/// October 21st 2016, the WoSign/StartCom new-certificate cutoff.
pub const OCT_21ST_2016: i64 = 1_477_008_000;

/// A named incident with its scenario builder.
pub struct IncidentSpec {
    /// Short identifier (`"symantec"`...).
    pub id: &'static str,
    /// Year of the incident.
    pub year: u16,
    /// One-line description of what happened.
    pub description: &'static str,
    /// One-line description of the primary's response being modeled.
    pub response: &'static str,
    /// Scenario builder.
    pub build: fn() -> IncidentScenario,
}

/// All seven incidents from the paper's §2.2, in chronological order.
pub fn all_incidents() -> Vec<IncidentSpec> {
    vec![
        IncidentSpec {
            id: "turktrust",
            year: 2013,
            description: "TURKTRUST mis-issued intermediates; one issued *.google.com",
            response: "EV disallowed; TUBITAK-style constraint to the .tr TLD",
            build: turktrust::scenario,
        },
        IncidentSpec {
            id: "anssi",
            year: 2013,
            description: "ANSSI intermediate used to MITM Google domains",
            response: "root name-constrained to French TLDs",
            build: anssi::scenario,
        },
        IncidentSpec {
            id: "india-cca",
            year: 2014,
            description: "India CCA intermediates mis-issued Google/Yahoo leaves",
            response: "root constrained to Indian TLDs",
            build: india_cca::scenario,
        },
        IncidentSpec {
            id: "cnnic",
            year: 2015,
            description: "MCS Holdings intermediate under CNNIC used for MITM",
            response: "allowlist of exempt subordinate CAs",
            build: cnnic::scenario,
        },
        IncidentSpec {
            id: "wosign",
            year: 2016,
            description: "WoSign backdated SHA-1 certs; covert StartCom acquisition",
            response: "distrust all newly issued leaves; keep existing ones",
            build: wosign::scenario,
        },
        IncidentSpec {
            id: "symantec",
            year: 2018,
            description: "systemic Symantec compliance failures",
            response: "Listing 2: leaves before 2016-06-01 or exempt intermediates",
            build: symantec::scenario,
        },
        IncidentSpec {
            id: "trustcor",
            year: 2022,
            description: "TrustCor ties to surveillance contractor",
            response: "Listing 1: date/usage cutoffs, EV excluded for TLS",
            build: trustcor::scenario,
        },
    ]
}

fn meta(justification: &str, url: &str, at: i64) -> GccMetadata {
    GccMetadata {
        justification: justification.to_string(),
        discussion_url: url.to_string(),
        created_at: at,
    }
}

/// A GCC constraining every leaf SAN to one TLD (the shape Mozilla
/// hard-coded for TUBITAK, ANSSI and — in Chrome — India CCA).
fn tld_gcc(name: &str, target: nrslb_crypto::sha256::Digest, tld: &str, m: GccMetadata) -> Gcc {
    let src = format!(
        r#"bad(Chain) :- leaf(Chain, C), sanTld(C, T), T != "{tld}".
valid(Chain, "TLS") :- chain(Chain), \+bad(Chain).
valid(Chain, "S/MIME") :- chain(Chain), \+bad(Chain)."#
    );
    Gcc::parse(name, target, &src, m).expect("tld GCC well-formed")
}

/// Comodo (2011) — the paper's §2.1 background incident: a registration
/// authority compromise led to nine fraudulent leaves for high-value
/// domains (google.com, addons.mozilla.com...). The response was
/// *revocation* of the individual leaves, not a constraint — so this
/// scenario exercises the `nrslb-revocation` layer rather than a GCC,
/// and is not part of [`all_incidents`]'s GCC matrix.
pub mod comodo {
    use super::*;
    use nrslb_x509::Certificate;

    /// The Comodo scenario: the affected store plus the fraudulent and
    /// legitimate leaves (the caller builds the OneCRL from
    /// `fraudulent`).
    pub struct ComodoScenario {
        /// Store trusting the (not-removed) Comodo root.
        pub store: RootStore,
        /// The intermediate both leaf sets chain through.
        pub intermediate: Certificate,
        /// The nine fraudulent leaves.
        pub fraudulent: Vec<Certificate>,
        /// Legitimate leaves that must keep validating.
        pub legitimate: Vec<Certificate>,
        /// Validation time.
        pub at: i64,
    }

    /// Build the scenario.
    pub fn scenario() -> ComodoScenario {
        let root = root_ca("Comodo CA Root", 0x2a);
        let int = intermediate_ca("Comodo RA Issuing", 0x2b, &root);
        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        let at = 1_301_000_000; // late March 2011
        let targets = [
            "mail.google.com",
            "www.google.com",
            "login.yahoo.com",
            "login.skype.com",
            "addons.mozilla.org",
            "login.live.com",
            "global.trustee.example",
            "www.google.com",
            "login.yahoo.com",
        ];
        let fraudulent: Vec<Certificate> = targets
            .iter()
            .map(|host| leaf(host, &int, at - 1_000_000, 4_000_000_000))
            .collect();
        let legitimate = vec![
            leaf("shop.legit.example", &int, at - 50_000_000, 4_000_000_000),
            leaf("mail.legit.example", &int, at - 50_000_000, 4_000_000_000),
        ];
        ComodoScenario {
            store,
            intermediate: int.cert.clone(),
            fraudulent,
            legitimate,
            at,
        }
    }
}

/// TURKTRUST (2013).
pub mod turktrust {
    use super::*;

    /// Build the scenario.
    pub fn scenario() -> IncidentScenario {
        let root = root_ca("TURKTRUST Root CA", 0x30);
        let legit_int = intermediate_ca("TURKTRUST Issuing CA", 0x31, &root);
        let rogue_int = intermediate_ca("EGO Rogue CA", 0x32, &root);

        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        let fp = root.cert.fingerprint();
        // Response 1: EV no longer accepted from this root.
        store.record_mut(&fp).unwrap().ev_allowed = false;
        // Response 2 (TUBITAK-style): constrain to the Turkish TLD.
        store
            .attach_gcc(tld_gcc(
                "turktrust-tr-only",
                fp,
                "tr",
                meta(
                    "Restrict to Turkish domains after *.google.com mis-issuance",
                    "https://bugzilla.mozilla.org/show_bug.cgi?id=1262809",
                    NOW_2015,
                ),
            ))
            .unwrap();

        let legit = leaf(
            "eokul.meb.gov.tr",
            &legit_int,
            NOW_2015 - 10_000_000,
            4_000_000_000,
        );
        let attack = leaf(
            "accounts.google.com",
            &rogue_int,
            NOW_2015 - 5_000_000,
            4_000_000_000,
        );
        IncidentScenario {
            store,
            affected_root: root.cert.clone(),
            legitimate: vec![TestChain::new(
                "Turkish government site",
                legit,
                vec![legit_int.cert.clone()],
                NOW_2015,
                Usage::Tls,
            )],
            attacks: vec![TestChain::new(
                "google.com via mis-issued intermediate",
                attack,
                vec![rogue_int.cert.clone()],
                NOW_2015,
                Usage::Tls,
            )],
        }
    }
}

/// ANSSI (2013).
pub mod anssi {
    use super::*;

    /// Build the scenario.
    pub fn scenario() -> IncidentScenario {
        let root = root_ca("ANSSI IGC/A", 0x34);
        let gov_int = intermediate_ca("ANSSI Gov CA", 0x35, &root);
        let mitm_int = intermediate_ca("DCSSI MITM Appliance", 0x36, &root);

        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        store
            .attach_gcc(tld_gcc(
                "anssi-fr-only",
                root.cert.fingerprint(),
                "fr",
                meta(
                    "Hard code ANSSI (DCISS) to French government DNS space",
                    "https://bugzilla.mozilla.org/show_bug.cgi?id=952572",
                    NOW_2015,
                ),
            ))
            .unwrap();

        let legit = leaf(
            "impots.gouv.fr",
            &gov_int,
            NOW_2015 - 10_000_000,
            4_000_000_000,
        );
        let attack = leaf(
            "mail.google.com",
            &mitm_int,
            NOW_2015 - 5_000_000,
            4_000_000_000,
        );
        IncidentScenario {
            store,
            affected_root: root.cert.clone(),
            legitimate: vec![TestChain::new(
                "French government site",
                legit,
                vec![gov_int.cert.clone()],
                NOW_2015,
                Usage::Tls,
            )],
            attacks: vec![TestChain::new(
                "google.com via MITM intermediate",
                attack,
                vec![mitm_int.cert.clone()],
                NOW_2015,
                Usage::Tls,
            )],
        }
    }
}

/// India CCA (2014).
pub mod india_cca {
    use super::*;

    /// Build the scenario.
    pub fn scenario() -> IncidentScenario {
        let root = root_ca("India CCA Root", 0x38);
        let nic = intermediate_ca("NIC Certifying Authority", 0x39, &root);

        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        store
            .attach_gcc(tld_gcc(
                "india-cca-in-only",
                root.cert.fingerprint(),
                "in",
                meta(
                    "Chrome constrained India CCA to Indian TLDs",
                    "https://security.googleblog.com/2014/07/maintaining-digital-certificate-security.html",
                    NOW_2015,
                ),
            ))
            .unwrap();

        let legit = leaf("portal.nic.in", &nic, NOW_2015 - 10_000_000, 4_000_000_000);
        let attack_google = leaf("www.google.com", &nic, NOW_2015 - 5_000_000, 4_000_000_000);
        let attack_yahoo = leaf("login.yahoo.com", &nic, NOW_2015 - 5_000_000, 4_000_000_000);
        IncidentScenario {
            store,
            affected_root: root.cert.clone(),
            legitimate: vec![TestChain::new(
                "Indian government portal",
                legit,
                vec![nic.cert.clone()],
                NOW_2015,
                Usage::Tls,
            )],
            attacks: vec![
                TestChain::new(
                    "mis-issued google.com",
                    attack_google,
                    vec![nic.cert.clone()],
                    NOW_2015,
                    Usage::Tls,
                ),
                TestChain::new(
                    "mis-issued yahoo.com",
                    attack_yahoo,
                    vec![nic.cert.clone()],
                    NOW_2015,
                    Usage::Tls,
                ),
            ],
        }
    }
}

/// MCS/CNNIC (2015).
pub mod cnnic {
    use super::*;

    /// Build the scenario.
    pub fn scenario() -> IncidentScenario {
        let root = root_ca("CNNIC ROOT", 0x3c);
        let exempt_int = intermediate_ca("CNNIC SSL", 0x3d, &root);
        let mcs_int = intermediate_ca("MCS Holdings", 0x3e, &root);

        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        // "They partially distrusted the CNNIC root with an allowlist of
        // exempted subordinate certificates."
        let src = format!(
            r#"exempt("{exempt}").
intOk(Chain) :- root(Chain, R), signs(R, I), hash(I, H), exempt(H).
valid(Chain, "TLS") :- chain(Chain), intOk(Chain).
valid(Chain, "S/MIME") :- chain(Chain), intOk(Chain)."#,
            exempt = exempt_int.cert.fingerprint().to_hex()
        );
        let gcc = Gcc::parse(
            "cnnic-allowlist",
            root.cert.fingerprint(),
            &src,
            meta(
                "Allowlist of exempted CNNIC subordinates after the MCS MITM",
                "https://blog.mozilla.org/security/2015/03/23/revoking-trust-in-one-cnnic-intermediate-certificate/",
                NOW_2015,
            ),
        )
        .expect("cnnic GCC well-formed");
        store.attach_gcc(gcc).unwrap();

        let legit = leaf(
            "www.cnnic.cn",
            &exempt_int,
            NOW_2015 - 10_000_000,
            4_000_000_000,
        );
        let attack = leaf(
            "www.google.com",
            &mcs_int,
            NOW_2015 - 1_000_000,
            4_000_000_000,
        );
        IncidentScenario {
            store,
            affected_root: root.cert.clone(),
            legitimate: vec![TestChain::new(
                "existing CNNIC subscriber via exempt intermediate",
                legit,
                vec![exempt_int.cert.clone()],
                NOW_2015,
                Usage::Tls,
            )],
            attacks: vec![TestChain::new(
                "MITM leaf via MCS intermediate",
                attack,
                vec![mcs_int.cert.clone()],
                NOW_2015,
                Usage::Tls,
            )],
        }
    }
}

/// WoSign/StartCom (2016).
pub mod wosign {
    use super::*;

    /// Build the scenario.
    pub fn scenario() -> IncidentScenario {
        let root = root_ca("WoSign CA Free SSL G2", 0x40);
        let int = intermediate_ca("WoSign Class 1", 0x41, &root);

        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        // "Mozilla distrusted all *new* leaf certificates chaining up to
        // the offending roots (maintaining existing leaves)."
        let src = format!(
            r#"cutoff({OCT_21ST_2016}).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff(T), NB < T."#
        );
        let gcc = Gcc::parse(
            "wosign-no-new-certs",
            root.cert.fingerprint(),
            &src,
            meta(
                "Distrust new WoSign/StartCom certificates",
                "https://blog.mozilla.org/security/2016/10/24/distrusting-new-wosign-and-startcom-certificates/",
                OCT_21ST_2016,
            ),
        )
        .expect("wosign GCC well-formed");
        store.attach_gcc(gcc).unwrap();

        let existing = leaf(
            "blog.example.cn",
            &int,
            OCT_21ST_2016 - 30_000_000,
            4_000_000_000,
        );
        let new_cert = leaf(
            "shop.example.cn",
            &int,
            OCT_21ST_2016 + 1_000_000,
            4_000_000_000,
        );
        IncidentScenario {
            store,
            affected_root: root.cert.clone(),
            legitimate: vec![TestChain::new(
                "existing subscriber (issued before cutoff)",
                existing,
                vec![int.cert.clone()],
                NOW_2017,
                Usage::Tls,
            )],
            attacks: vec![TestChain::new(
                "newly issued certificate after distrust",
                new_cert,
                vec![int.cert.clone()],
                NOW_2017,
                Usage::Tls,
            )],
        }
    }
}

/// Symantec (2018) — the paper's Listing 2, verbatim modulo the exempt
/// hash values.
pub mod symantec {
    use super::*;

    /// The Listing 2 source with `{exempt}` substituted.
    pub fn listing_2_source(exempt_hash: &str) -> String {
        format!(
            r#"june1st2016({JUNE_1ST_2016}). % Unix timestamp
exempt("{exempt_hash}").
valid(Chain, _) :-
  leaf(Chain, Cert), % Get the chain's leaf
  notBefore(Cert, NB), % Get the leaf's notBefore date
  june1st2016(T), % Get June 1st, 2016 date
  NB < T. % Holds if notBefore date is before June 1st, 2016
valid(Chain, _) :-
  root(Chain, Root), % Get the chain's root
  signs(Root, Int), % Get the intermediate signed by root
  hash(Int, H), % Get the intermediate's SHA-256 hash
  exempt(H). % Holds if hash is one of exempt hashes"#
        )
    }

    /// Build the scenario with the default (one chain per class) sizing.
    pub fn scenario() -> IncidentScenario {
        scenario_sized(1, 1, 1)
    }

    /// Build the Symantec scenario with a population of chains:
    /// `n_old` pre-cutoff leaves and `n_exempt` leaves via the exempt
    /// intermediate (both legitimate), plus `n_new` post-cutoff leaves
    /// via ordinary intermediates (what the May-2018 policy rejects).
    /// Used by the E4 partial-distrust-fidelity experiment.
    ///
    /// Requires `n_old + n_exempt + n_new <= 900` (one-time signing keys).
    pub fn scenario_sized(n_old: usize, n_exempt: usize, n_new: usize) -> IncidentScenario {
        assert!(
            n_old + n_exempt + n_new <= 900,
            "population exceeds key budget"
        );
        let sized = n_old + n_exempt + n_new > 3;
        let height = if sized { 10 } else { 6 };
        let root = {
            let key = nrslb_x509::builder::CaKey::from_seed(
                nrslb_x509::DistinguishedName::common_name("VeriSign Class 3 Public Primary G5"),
                [0x44; 32],
                height,
            )
            .unwrap();
            let cert = nrslb_x509::CertificateBuilder::new()
                .validity_window(0, 4_000_000_000)
                .ca(None)
                .build_self_signed(&key)
                .unwrap();
            crate::pki::Ca { key, cert }
        };
        let mk_int = |cn: &str, tag: u8| {
            let key = nrslb_x509::builder::CaKey::from_seed(
                nrslb_x509::DistinguishedName::common_name(cn),
                [tag; 32],
                height,
            )
            .unwrap();
            let cert = nrslb_x509::CertificateBuilder::new()
                .subject(key.name().clone())
                .subject_key(key.public())
                .validity_window(0, 4_000_000_000)
                .ca(Some(0))
                .build_signed_by(&root.key)
                .unwrap();
            crate::pki::Ca { key, cert }
        };
        let normal_int = mk_int("Symantec Class 3 EV SSL", 0x45);
        // "a few allowlisted intermediate CA certificates issued by
        // Symantec roots but controlled by Apple and Google"
        let apple_int = mk_int("Apple IST CA 2", 0x46);

        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        let gcc = Gcc::parse(
            "symantec-may-2018",
            root.cert.fingerprint(),
            &listing_2_source(&apple_int.cert.fingerprint().to_hex()),
            meta(
                "NSS constraints on Symantec roots as of May 2018",
                "https://blog.mozilla.org/security/2018/03/12/distrust-symantec-tls-certificates/",
                NOW_2017,
            ),
        )
        .expect("Listing 2 is well-formed");
        store.attach_gcc(gcc).unwrap();

        let at = NOW_2017 + 50_000_000;
        let mut legitimate = Vec::new();
        let mut attacks = Vec::new();
        for i in 0..n_old {
            let l = leaf(
                &format!("old{i}.example.com"),
                &normal_int,
                JUNE_1ST_2016 - 40_000_000 - (i as i64) * 86_400,
                4_000_000_000,
            );
            legitimate.push(TestChain::new(
                "leaf issued before 2016-06-01",
                l,
                vec![normal_int.cert.clone()],
                at,
                Usage::Tls,
            ));
        }
        for i in 0..n_exempt {
            let l = leaf(
                &format!("svc{i}.apple.com"),
                &apple_int,
                NOW_2017 + (i as i64) * 86_400,
                4_000_000_000,
            );
            legitimate.push(TestChain::new(
                "new leaf via exempt Apple intermediate",
                l,
                vec![apple_int.cert.clone()],
                at,
                Usage::Tls,
            ));
        }
        for i in 0..n_new {
            let l = leaf(
                &format!("new{i}.example.com"),
                &normal_int,
                NOW_2017 + (i as i64) * 86_400,
                4_000_000_000,
            );
            attacks.push(TestChain::new(
                "new leaf via ordinary Symantec intermediate",
                l,
                vec![normal_int.cert.clone()],
                at,
                Usage::Tls,
            ));
        }
        IncidentScenario {
            store,
            affected_root: root.cert.clone(),
            legitimate,
            attacks,
        }
    }
}

/// TrustCor (2022) — the paper's Listing 1, verbatim.
pub mod trustcor {
    use super::*;

    /// The Listing 1 source.
    pub const LISTING_1_SOURCE: &str = r#"nov30th2022(1669784400). % Unix timestamp
valid(Chain, "S/MIME") :- % Valid rule for S/MIME usage
  leaf(Chain, Cert), % Get the chain's leaf certificate
  nov30th2022(T), % Get November 30th, 2022
  notBefore(Cert, NB), % Get the leaf's notBefore date
  NB < T. % Holds if notBefore before November 30th, 2022
valid(Chain, "TLS") :- % Valid rule for TLS usage
  leaf(Chain, Cert), % Get the chain's leaf certificate
  \+EV(Cert), % Assert that leaf is not EV
  nov30th2022(T), % Get November 30th, 2022
  notBefore(Cert, NB), % Get the leaf's notBefore date
  NB < T. % Holds if notBefore before November 30th, 2022"#;

    /// Build the scenario.
    pub fn scenario() -> IncidentScenario {
        let root = root_ca("TrustCor RootCert CA-1", 0x48);
        let int = intermediate_ca("TrustCor Issuing CA", 0x49, &root);

        let mut store = RootStore::new("primary");
        store.add_trusted(root.cert.clone()).unwrap();
        let gcc = Gcc::parse(
            "trustcor-date-usage",
            root.cert.fingerprint(),
            LISTING_1_SOURCE,
            meta(
                "TrustCor date/usage constraints as found in NSS",
                "https://groups.google.com/a/mozilla.org/g/dev-security-policy/c/oxX69KFvsm4",
                NOV_30TH_2022,
            ),
        )
        .expect("Listing 1 is well-formed");
        store.attach_gcc(gcc).unwrap();

        let before = NOV_30TH_2022 - 10_000_000;
        let after = NOV_30TH_2022 + 1_000_000;
        let old_tls = leaf("site.example", &int, before, 4_000_000_000);
        let old_ev = leaf_opts("ev.example", &int, before, 4_000_000_000, true);
        let new_tls = leaf("late.example", &int, after, 4_000_000_000);
        IncidentScenario {
            store,
            affected_root: root.cert.clone(),
            legitimate: vec![TestChain::new(
                "pre-cutoff non-EV TLS leaf",
                old_tls.clone(),
                vec![int.cert.clone()],
                after + 1_000_000,
                Usage::Tls,
            )],
            attacks: vec![
                TestChain::new(
                    "post-cutoff TLS leaf",
                    new_tls,
                    vec![int.cert.clone()],
                    after + 2_000_000,
                    Usage::Tls,
                ),
                TestChain::new(
                    "pre-cutoff EV leaf for TLS (EV excluded)",
                    old_ev,
                    vec![int.cert.clone()],
                    after + 1_000_000,
                    Usage::Tls,
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{evaluate_scenario, DerivativeStrategy};

    #[test]
    fn all_seven_incidents_enumerate() {
        let incidents = all_incidents();
        assert_eq!(incidents.len(), 7);
        let years: Vec<u16> = incidents.iter().map(|i| i.year).collect();
        let mut sorted = years.clone();
        sorted.sort_unstable();
        assert_eq!(years, sorted, "chronological order");
    }

    #[test]
    fn every_gcc_blocks_attacks_and_admits_legitimate() {
        for spec in all_incidents() {
            let scenario = (spec.build)();
            let stats = evaluate_scenario(&scenario, DerivativeStrategy::Gcc);
            assert_eq!(
                stats.attacks_accepted, 0,
                "{}: attack accepted under GCC",
                spec.id
            );
            assert_eq!(
                stats.legitimate_accepted, stats.legitimate_total,
                "{}: legitimate chain rejected under GCC",
                spec.id
            );
        }
    }
}
