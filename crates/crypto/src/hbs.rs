//! Stateful hash-based signatures: Winternitz one-time signatures (WOTS,
//! `w = 16`) under a complete Merkle tree, in the style of XMSS.
//!
//! This is the workspace's public-key signature scheme, substituting for
//! RSA/ECDSA in certificates and root-store-feed signing (see DESIGN.md §2:
//! the paper's contribution is trust *policy*; all that matters here is a
//! genuinely asymmetric scheme — public verification, tamper detection —
//! built from our own primitives).
//!
//! A [`Keypair`] of height `h` can produce `2^h` signatures; signing is
//! stateful (each signature consumes one Merkle leaf) and returns
//! [`CryptoError::KeyExhausted`] afterwards. Verification needs only the
//! 32-byte [`PublicKey`] (the Merkle root plus the tree height).
//!
//! Parameters: `n = 32` bytes, `w = 16` (4 bits per chain), 64 message
//! chains + 3 checksum chains = 67 chains per one-time key.

use crate::hmac::prf;
use crate::merkle::{fold_auth_path, node_hash};
use crate::sha256::{sha256, sha256_concat, Digest};
use crate::CryptoError;

/// Winternitz parameter: digits are base-16.
const W: u32 = 16;
/// Number of base-`W` digits covering a 256-bit message digest.
const LEN1: usize = 64;
/// Number of checksum digits (max checksum 64 × 15 = 960 < 16³).
const LEN2: usize = 3;
/// Total chains per one-time key.
const LEN: usize = LEN1 + LEN2;
/// Domain-separation tag for the chain function.
const CHAIN_TAG: u8 = 0x02;
/// Domain-separation tag for compressing a WOTS public key into a leaf.
const LEAF_TAG: u8 = 0x03;

/// Maximum supported tree height (2^20 signatures; keygen cost grows as
/// `2^h`, so large heights are for corpus generation in release builds).
pub const MAX_HEIGHT: u8 = 20;

/// One application of the hash chain: `H(0x02 || x)`.
fn chain_step(x: &Digest) -> Digest {
    sha256_concat(&[&[CHAIN_TAG], x.as_bytes()])
}

/// Apply `steps` chain steps to `x`.
fn chain(mut x: Digest, steps: u32) -> Digest {
    for _ in 0..steps {
        x = chain_step(&x);
    }
    x
}

/// Split a digest into 64 base-16 digits followed by 3 checksum digits.
fn digits(msg_digest: &Digest) -> [u32; LEN] {
    let mut out = [0u32; LEN];
    for (i, byte) in msg_digest.as_bytes().iter().enumerate() {
        out[2 * i] = (byte >> 4) as u32;
        out[2 * i + 1] = (byte & 0x0f) as u32;
    }
    let checksum: u32 = out[..LEN1].iter().map(|d| (W - 1) - d).sum();
    // Encode the checksum (max 960 < 4096) as 3 base-16 digits, big-endian.
    out[LEN1] = (checksum >> 8) & 0xf;
    out[LEN1 + 1] = (checksum >> 4) & 0xf;
    out[LEN1 + 2] = checksum & 0xf;
    out
}

/// Derive the j-th one-time secret for leaf `leaf` from `seed`.
fn wots_secret(seed: &[u8; 32], leaf: u64, j: usize) -> Digest {
    prf(
        seed,
        &[b"wots-sk", &leaf.to_be_bytes(), &(j as u32).to_be_bytes()],
    )
}

/// Compute the WOTS public leaf digest for `leaf`.
fn wots_leaf(seed: &[u8; 32], leaf: u64) -> Digest {
    let mut h = crate::sha256::Sha256::new();
    h.update([LEAF_TAG]);
    for j in 0..LEN {
        let top = chain(wots_secret(seed, leaf, j), W - 1);
        h.update(top.as_bytes());
    }
    h.finalize()
}

/// Public verification key: Merkle root over all one-time public keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Merkle root of the one-time public keys.
    pub root: Digest,
    /// Tree height; the key supports `2^height` signatures.
    pub height: u8,
}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey(h={}, {})", self.height, self.root.short())
    }
}

impl PublicKey {
    /// Serialize to `1 + 32` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        out.push(self.height);
        out.extend_from_slice(self.root.as_bytes());
        out
    }

    /// Parse from the output of [`PublicKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<PublicKey, CryptoError> {
        if bytes.len() != 33 {
            return Err(CryptoError::Malformed("public key length"));
        }
        let height = bytes[0];
        if height > MAX_HEIGHT {
            return Err(CryptoError::Malformed("public key height"));
        }
        let mut root = [0u8; 32];
        root.copy_from_slice(&bytes[1..]);
        Ok(PublicKey {
            root: Digest(root),
            height,
        })
    }

    /// A stable fingerprint of the key (hash of its serialization).
    pub fn fingerprint(&self) -> Digest {
        sha256(self.to_bytes())
    }
}

/// A signature: the consumed leaf index, the WOTS chain values, and the
/// Merkle authentication path.
#[derive(Clone, PartialEq, Eq)]
pub struct Signature {
    /// Which one-time key was used.
    pub leaf_index: u64,
    /// 67 chain values.
    pub wots: Vec<Digest>,
    /// `height` sibling digests from leaf to root.
    pub auth_path: Vec<Digest>,
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Signature(leaf={}, h={})",
            self.leaf_index,
            self.auth_path.len()
        )
    }
}

impl Signature {
    /// Serialize: `u64` index, 67 chain digests, then the auth path.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 * (self.wots.len() + self.auth_path.len()) + 1);
        out.extend_from_slice(&self.leaf_index.to_be_bytes());
        out.push(self.auth_path.len() as u8);
        for d in &self.wots {
            out.extend_from_slice(d.as_bytes());
        }
        for d in &self.auth_path {
            out.extend_from_slice(d.as_bytes());
        }
        out
    }

    /// Parse from the output of [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Signature, CryptoError> {
        if bytes.len() < 9 {
            return Err(CryptoError::Malformed("signature header"));
        }
        let mut idx = [0u8; 8];
        idx.copy_from_slice(&bytes[..8]);
        let leaf_index = u64::from_be_bytes(idx);
        let height = bytes[8] as usize;
        if height > MAX_HEIGHT as usize {
            return Err(CryptoError::Malformed("signature height"));
        }
        let body = &bytes[9..];
        let expected = 32 * (LEN + height);
        if body.len() != expected {
            return Err(CryptoError::Malformed("signature length"));
        }
        let read = |i: usize| -> Digest {
            let mut d = [0u8; 32];
            d.copy_from_slice(&body[i * 32..(i + 1) * 32]);
            Digest(d)
        };
        let wots = (0..LEN).map(read).collect();
        let auth_path = (LEN..LEN + height).map(read).collect();
        Ok(Signature {
            leaf_index,
            wots,
            auth_path,
        })
    }
}

/// A stateful hash-based signing key.
///
/// Cloning a signing key and using both copies is a classic one-time-key
/// hazard; `Keypair` therefore does not implement `Clone`.
pub struct Keypair {
    seed: [u8; 32],
    height: u8,
    /// Next unused leaf; `2^height` means exhausted.
    next_leaf: u64,
    /// Tree node layers, bottom-up; `layers[0]` is the one-time-key leaf layer.
    layers: Vec<Vec<Digest>>,
    public: PublicKey,
}

impl std::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Keypair(h={}, used={}/{}, {})",
            self.height,
            self.next_leaf,
            1u64 << self.height,
            self.public.root.short()
        )
    }
}

impl Keypair {
    /// Deterministically generate a keypair of `height` from a 32-byte seed.
    ///
    /// Keygen computes all `2^height` one-time public keys; cost grows as
    /// `2^height`, so keep heights small (≤ 10) in debug/test builds.
    pub fn from_seed(seed: [u8; 32], height: u8) -> Result<Keypair, CryptoError> {
        if height == 0 || height > MAX_HEIGHT {
            return Err(CryptoError::Malformed("keypair height"));
        }
        let n = 1u64 << height;
        let leaves: Vec<Digest> = (0..n).map(|i| wots_leaf(&seed, i)).collect();
        let mut layers = vec![leaves];
        while layers.last().unwrap().len() > 1 {
            let prev = layers.last().unwrap();
            let next: Vec<Digest> = prev
                .chunks_exact(2)
                .map(|pair| node_hash(&pair[0], &pair[1]))
                .collect();
            layers.push(next);
        }
        let root = layers.last().unwrap()[0];
        Ok(Keypair {
            seed,
            height,
            next_leaf: 0,
            layers,
            public: PublicKey { root, height },
        })
    }

    /// Generate a keypair from an RNG-style entropy function.
    pub fn generate(height: u8, mut fill: impl FnMut(&mut [u8])) -> Result<Keypair, CryptoError> {
        let mut seed = [0u8; 32];
        fill(&mut seed);
        Keypair::from_seed(seed, height)
    }

    /// The public verification key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signatures remaining before exhaustion.
    pub fn remaining(&self) -> u64 {
        (1u64 << self.height) - self.next_leaf
    }

    /// Sign `message`, consuming one leaf.
    pub fn sign(&mut self, message: &[u8]) -> Result<Signature, CryptoError> {
        let leaf = self.next_leaf;
        if leaf >= 1u64 << self.height {
            return Err(CryptoError::KeyExhausted);
        }
        self.next_leaf += 1;
        let msg_digest = sha256(message);
        let ds = digits(&msg_digest);
        let wots = (0..LEN)
            .map(|j| chain(wots_secret(&self.seed, leaf, j), ds[j]))
            .collect();
        let mut auth_path = Vec::with_capacity(self.height as usize);
        let mut index = leaf as usize;
        for layer in &self.layers[..self.height as usize] {
            auth_path.push(layer[index ^ 1]);
            index /= 2;
        }
        Ok(Signature {
            leaf_index: leaf,
            wots,
            auth_path,
        })
    }
}

/// Verify `signature` over `message` under `public`.
pub fn verify(
    public: &PublicKey,
    message: &[u8],
    signature: &Signature,
) -> Result<(), CryptoError> {
    if signature.wots.len() != LEN
        || signature.auth_path.len() != public.height as usize
        || signature.leaf_index >= 1u64 << public.height
    {
        return Err(CryptoError::BadSignature);
    }
    let msg_digest = sha256(message);
    let ds = digits(&msg_digest);
    let mut h = crate::sha256::Sha256::new();
    h.update([LEAF_TAG]);
    for (sig_chain, &digit) in signature.wots.iter().zip(ds.iter()) {
        let top = chain(*sig_chain, (W - 1) - digit);
        h.update(top.as_bytes());
    }
    let leaf = h.finalize();
    let root = fold_auth_path(&leaf, signature.leaf_index, &signature.auth_path);
    if root == public.root {
        Ok(())
    } else {
        Err(CryptoError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(h: u8, tag: u8) -> Keypair {
        let mut seed = [tag; 32];
        seed[0] = h;
        Keypair::from_seed(seed, h).unwrap()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut kp = keypair(4, 1);
        let pk = kp.public();
        for i in 0..5 {
            let msg = format!("message {i}");
            let sig = kp.sign(msg.as_bytes()).unwrap();
            verify(&pk, msg.as_bytes(), &sig).unwrap();
        }
    }

    #[test]
    fn rejects_tampered_message() {
        let mut kp = keypair(3, 2);
        let sig = kp.sign(b"original").unwrap();
        assert_eq!(
            verify(&kp.public(), b"tampered", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn rejects_wrong_key() {
        let mut kp1 = keypair(3, 3);
        let kp2 = keypair(3, 4);
        let sig = kp1.sign(b"msg").unwrap();
        assert_eq!(
            verify(&kp2.public(), b"msg", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn rejects_tampered_signature() {
        let mut kp = keypair(3, 5);
        let mut sig = kp.sign(b"msg").unwrap();
        sig.wots[10] = sha256(b"garbage");
        assert_eq!(
            verify(&kp.public(), b"msg", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn exhaustion() {
        let mut kp = keypair(1, 6); // 2 signatures
        assert_eq!(kp.remaining(), 2);
        kp.sign(b"a").unwrap();
        kp.sign(b"b").unwrap();
        assert_eq!(kp.remaining(), 0);
        assert_eq!(kp.sign(b"c"), Err(CryptoError::KeyExhausted));
    }

    #[test]
    fn each_signature_uses_fresh_leaf() {
        let mut kp = keypair(3, 7);
        let s1 = kp.sign(b"m").unwrap();
        let s2 = kp.sign(b"m").unwrap();
        assert_ne!(s1.leaf_index, s2.leaf_index);
        // Both still verify.
        verify(&kp.public(), b"m", &s1).unwrap();
        verify(&kp.public(), b"m", &s2).unwrap();
    }

    #[test]
    fn serialization_roundtrip() {
        let mut kp = keypair(4, 8);
        let sig = kp.sign(b"serialize me").unwrap();
        let sig2 = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(sig, sig2);
        verify(&kp.public(), b"serialize me", &sig2).unwrap();

        let pk2 = PublicKey::from_bytes(&kp.public().to_bytes()).unwrap();
        assert_eq!(pk2, kp.public());
    }

    #[test]
    fn serialization_rejects_garbage() {
        assert!(Signature::from_bytes(&[0u8; 4]).is_err());
        assert!(Signature::from_bytes(&[0u8; 100]).is_err());
        assert!(PublicKey::from_bytes(&[0u8; 3]).is_err());
        let mut bad_height = [0u8; 33];
        bad_height[0] = 99;
        assert!(PublicKey::from_bytes(&bad_height).is_err());
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Keypair::from_seed([9u8; 32], 3).unwrap();
        let b = Keypair::from_seed([9u8; 32], 3).unwrap();
        assert_eq!(a.public(), b.public());
        let c = Keypair::from_seed([10u8; 32], 3).unwrap();
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn digit_checksum_covers_full_range() {
        // All-zero digest: 64 zero digits, checksum = 64*15 = 960 = 0x3c0.
        let ds = digits(&Digest::ZERO);
        assert_eq!(&ds[LEN1..], &[0x3, 0xc, 0x0]);
        // All-0xff digest: checksum 0.
        let ds = digits(&Digest([0xff; 32]));
        assert_eq!(&ds[LEN1..], &[0, 0, 0]);
        assert!(ds[..LEN1].iter().all(|&d| d == 15));
    }

    #[test]
    fn invalid_heights_rejected() {
        assert!(Keypair::from_seed([0; 32], 0).is_err());
        assert!(Keypair::from_seed([0; 32], MAX_HEIGHT + 1).is_err());
    }
}
