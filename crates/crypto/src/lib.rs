//! # `nrslb-crypto` — cryptographic substrate for the nrslb workspace
//!
//! Everything here is implemented from scratch (no external crypto crates):
//!
//! * [`mod@sha256`] — SHA-256 per FIPS 180-4, the hash used for certificate
//!   fingerprints (the paper attaches GCCs to roots by SHA-256 hash),
//!   Merkle trees and signatures.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), used as the PRF inside the
//!   hash-based signature scheme.
//! * [`merkle`] — an RFC 6962-style Merkle tree with inclusion and
//!   consistency proofs, used by the simulated Certificate Transparency
//!   log (`nrslb-ctlog`) and the hash-based signature scheme.
//! * [`hbs`] — a stateful hash-based signature scheme (Winternitz one-time
//!   signatures under a Merkle tree, XMSS-style). This replaces RSA/ECDSA:
//!   the paper's contribution is trust *policy*, not cryptography, and a
//!   hash-based scheme gives genuinely asymmetric sign/verify with only
//!   the primitives above (see DESIGN.md §2 for the substitution note).
//! * [`shamir`] — Shamir secret sharing over GF(256) (constant-table
//!   log/exp arithmetic, polynomial split, Lagrange recovery), the
//!   substrate for the k-of-n coordinating-body quorum in `nrslb-rsf`.
//! * [`hex`] / [`base64`] — encodings for fingerprints and PEM armor.
//!
//! All types are `Send + Sync` and the crate performs no I/O.

#![warn(missing_docs)]

pub mod base64;
pub mod hbs;
pub mod hex;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod shamir;

pub use hbs::{Keypair, PublicKey, Signature};
pub use sha256::{sha256, Digest, Sha256};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed to verify against the given public key.
    BadSignature,
    /// A one-time key was reused or the keypair ran out of one-time leaves.
    KeyExhausted,
    /// A serialized object could not be decoded.
    Malformed(&'static str),
    /// A Merkle proof did not verify.
    BadProof,
    /// Hex input was not valid.
    BadHex,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::KeyExhausted => write!(f, "hash-based keypair exhausted"),
            CryptoError::Malformed(what) => write!(f, "malformed {what}"),
            CryptoError::BadProof => write!(f, "merkle proof verification failed"),
            CryptoError::BadHex => write!(f, "invalid hex input"),
        }
    }
}

impl std::error::Error for CryptoError {}
