//! Standard (RFC 4648) base64 encoding/decoding, for PEM armor.

use crate::CryptoError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode `data` as standard base64 with padding.
pub fn encode(data: impl AsRef<[u8]>) -> String {
    let data = data.as_ref();
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn value(c: u8) -> Result<u32, CryptoError> {
    match c {
        b'A'..=b'Z' => Ok((c - b'A') as u32),
        b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
        b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(CryptoError::Malformed("base64 character")),
    }
}

/// Decode standard base64; whitespace is tolerated (PEM wraps lines),
/// padding is required to align to 4.
pub fn decode(input: &str) -> Result<Vec<u8>, CryptoError> {
    let cleaned: Vec<u8> = input.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !cleaned.len().is_multiple_of(4) {
        return Err(CryptoError::Malformed("base64 length"));
    }
    let mut out = Vec::with_capacity(cleaned.len() / 4 * 3);
    for chunk in cleaned.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return Err(CryptoError::Malformed("base64 padding"));
        }
        let mut n: u32 = 0;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad == 0 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode(raw), enc);
            assert_eq!(decode(enc).unwrap(), raw);
        }
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\nYmFy\n").unwrap(), b"foobar");
        assert_eq!(decode("Z m 9 v").unwrap(), b"foo");
    }

    #[test]
    fn binary_roundtrip() {
        let mut state = 7u64;
        for len in 0..80usize {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(3037000493);
                    (state >> 33) as u8
                })
                .collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("Zg=").is_err()); // bad length
        assert!(decode("Z===").is_err()); // over-padding
        assert!(decode("Zm=v").is_err()); // padding inside
        assert!(decode("Zm9$").is_err()); // bad character
    }
}
