//! Lowercase hex encoding and decoding.

use crate::CryptoError;

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encode `data` as lowercase hex.
pub fn encode(data: impl AsRef<[u8]>) -> String {
    let data = data.as_ref();
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode a hex string (upper- or lowercase). Fails on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::BadHex);
    }
    let nibble = |c: u8| -> Result<u8, CryptoError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CryptoError::BadHex),
        }
    };
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00u8, 0x01, 0xab, 0xff, 0x10];
        assert_eq!(encode(data), "0001abff10");
        assert_eq!(decode("0001abff10").unwrap(), data);
        assert_eq!(decode("0001ABFF10").unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), Err(CryptoError::BadHex));
        assert_eq!(decode("zz"), Err(CryptoError::BadHex));
        assert_eq!(decode("0g"), Err(CryptoError::BadHex));
    }

    #[test]
    fn empty() {
        assert_eq!(encode([]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
