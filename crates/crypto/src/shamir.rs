//! Shamir secret sharing over GF(256).
//!
//! The coordinating body behind a root-store feed must not be a single
//! point of compromise (the paper hands feed-key endorsement to "a
//! coordinating body like ICANN"; one leaked key would forge the feed
//! for every derivative store). This module provides the arithmetic
//! substrate for the k-of-n quorum in `nrslb-rsf`: the body's master
//! secret is split into `n` shares such that any `k` recover it
//! byte-exactly and any `k-1` learn nothing.
//!
//! Everything is built from scratch, like the rest of this crate:
//!
//! * GF(256) under the AES reduction polynomial `x⁸+x⁴+x³+x+1`
//!   (0x11b), with constant log/exp tables built at compile time over
//!   generator `0x03` — multiplication is two table lookups and a
//!   modular add, division a lookup subtraction.
//! * Polynomial splitting: per secret byte, a random polynomial of
//!   degree `k-1` with the secret as the constant term, evaluated at
//!   the share indices `x = 1..=n` (Horner form).
//! * Lagrange recovery at `x = 0` from any `k` distinct shares.
//!
//! Shares carry a short integrity checksum so accidental corruption is
//! caught before interpolation silently yields garbage; all failure
//! modes are typed ([`ShamirError`]).

use crate::sha256::sha256_concat;
use std::fmt;

/// Compile-time exp/log tables for GF(256) over generator `0x03`.
///
/// `exp[i] = 3^i` for `i in 0..255` (the generator has order 255);
/// `log[exp[i]] = i`, with `log[0]` unused (zero has no logarithm).
const fn build_tables() -> ([u8; 256], [u8; 256]) {
    let mut exp = [0u8; 256];
    let mut log = [0u8; 256];
    let mut x: u8 = 1;
    let mut i = 0usize;
    while i < 255 {
        exp[i] = x;
        log[x as usize] = i as u8;
        // x *= 3 in GF(256): x ⊕ xtime(x), reducing by 0x11b.
        let mut doubled = x << 1;
        if x & 0x80 != 0 {
            doubled ^= 0x1b;
        }
        x ^= doubled;
        i += 1;
    }
    // exp[255] mirrors exp[0] so `exp[(log a + log b) % 255]` never
    // needs a second reduction.
    exp[255] = exp[0];
    (exp, log)
}

const TABLES: ([u8; 256], [u8; 256]) = build_tables();

/// `GF_EXP[i] = 3^i` in GF(256) (index 255 wraps to 1).
pub const GF_EXP: [u8; 256] = TABLES.0;

/// `GF_LOG[x]` = the discrete log of `x` base 3 (`GF_LOG[0]` is
/// meaningless; zero has no logarithm).
pub const GF_LOG: [u8; 256] = TABLES.1;

/// Addition in GF(256) (= subtraction): XOR.
#[inline]
pub fn gf_add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(256) via the log/exp tables.
#[inline]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let sum = GF_LOG[a as usize] as usize + GF_LOG[b as usize] as usize;
    GF_EXP[sum % 255]
}

/// Multiplicative inverse. Panics on zero (which has no inverse) —
/// callers in this module guard against zero denominators by
/// construction (share indices are distinct and nonzero).
#[inline]
pub fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    GF_EXP[(255 - GF_LOG[a as usize] as usize) % 255]
}

/// Division `a / b` in GF(256). Panics when `b == 0`.
#[inline]
pub fn gf_div(a: u8, b: u8) -> u8 {
    gf_mul(a, gf_inv(b))
}

/// Typed failures of the sharing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShamirError {
    /// `k` or `n` out of range (need `1 <= k <= n <= 255`).
    BadParameters {
        /// Requested threshold.
        k: u8,
        /// Requested share count.
        n: u8,
    },
    /// Recovery was attempted with fewer shares than the threshold.
    TooFewShares {
        /// The threshold `k`.
        need: u8,
        /// Shares actually supplied.
        got: usize,
    },
    /// Two supplied shares carry the same index.
    DuplicateShare(u8),
    /// A share's integrity checksum does not match its body.
    CorruptShare(u8),
    /// Shares of different lengths cannot belong to one split.
    LengthMismatch,
    /// A share carries the reserved index 0 (the secret's coordinate).
    BadIndex,
}

impl fmt::Display for ShamirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShamirError::BadParameters { k, n } => {
                write!(f, "bad shamir parameters: k={k}, n={n}")
            }
            ShamirError::TooFewShares { need, got } => {
                write!(f, "threshold not met: need {need} shares, got {got}")
            }
            ShamirError::DuplicateShare(i) => write!(f, "duplicate share index {i}"),
            ShamirError::CorruptShare(i) => write!(f, "share {i} failed its checksum"),
            ShamirError::LengthMismatch => write!(f, "shares have mismatched lengths"),
            ShamirError::BadIndex => write!(f, "share index 0 is reserved"),
        }
    }
}

impl std::error::Error for ShamirError {}

/// Domain-separation prefix for share checksums.
const SHARE_TAG: &[u8] = b"nrslb-shamir-share-v1:";

fn share_checksum(index: u8, body: &[u8]) -> [u8; 4] {
    let digest = sha256_concat(&[SHARE_TAG, &[index], body]);
    digest.as_bytes()[..4].try_into().unwrap()
}

/// One share of a split secret: the evaluation of the sharing
/// polynomials at `x = index`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Share {
    /// The x-coordinate, `1..=n` (0 is the secret itself and reserved).
    pub index: u8,
    /// One polynomial evaluation per secret byte.
    pub body: Vec<u8>,
    /// Truncated-SHA-256 integrity checksum over `(index, body)`.
    pub checksum: [u8; 4],
}

impl Share {
    /// Assemble a share, computing its checksum.
    pub fn new(index: u8, body: Vec<u8>) -> Share {
        let checksum = share_checksum(index, &body);
        Share {
            index,
            body,
            checksum,
        }
    }

    /// Validate the integrity checksum.
    pub fn verify_checksum(&self) -> Result<(), ShamirError> {
        if self.index == 0 {
            return Err(ShamirError::BadIndex);
        }
        if share_checksum(self.index, &self.body) != self.checksum {
            return Err(ShamirError::CorruptShare(self.index));
        }
        Ok(())
    }
}

/// Split `secret` into `n` shares with threshold `k`.
///
/// `fill` supplies the random polynomial coefficients (the same
/// injection point as [`crate::hbs::Keypair::generate`]): it is called
/// once per polynomial degree with a buffer one byte per secret byte.
/// A deterministic `fill` (e.g. a PRF counter stream) makes the split
/// reproducible, which the quorum layer uses for seeded ceremonies.
pub fn split(
    secret: &[u8],
    k: u8,
    n: u8,
    mut fill: impl FnMut(&mut [u8]),
) -> Result<Vec<Share>, ShamirError> {
    if k == 0 || n == 0 || k > n {
        return Err(ShamirError::BadParameters { k, n });
    }
    // Coefficients c_1..c_{k-1}, each a vector over the secret bytes;
    // c_0 is the secret itself.
    let mut coeffs: Vec<Vec<u8>> = Vec::with_capacity(k as usize - 1);
    for _ in 1..k {
        let mut c = vec![0u8; secret.len()];
        fill(&mut c);
        coeffs.push(c);
    }
    let mut shares = Vec::with_capacity(n as usize);
    for x in 1..=n {
        let mut body = Vec::with_capacity(secret.len());
        for (pos, &s) in secret.iter().enumerate() {
            // Horner evaluation from the top coefficient down to c_0 = s.
            let mut acc = 0u8;
            for c in coeffs.iter().rev() {
                acc = gf_add(gf_mul(acc, x), c[pos]);
            }
            body.push(gf_add(gf_mul(acc, x), s));
        }
        shares.push(Share::new(x, body));
    }
    Ok(shares)
}

/// Recover the secret from at least `k` distinct shares (Lagrange
/// interpolation at `x = 0`; only the first `k` valid shares are
/// used).
///
/// Every share is checksum-verified and the set is checked for
/// duplicates and length mismatches first, so corruption surfaces as a
/// typed error instead of silently interpolating garbage.
pub fn recover(shares: &[Share], k: u8) -> Result<Vec<u8>, ShamirError> {
    if k == 0 {
        return Err(ShamirError::BadParameters { k, n: k });
    }
    if shares.len() < k as usize {
        return Err(ShamirError::TooFewShares {
            need: k,
            got: shares.len(),
        });
    }
    let used = &shares[..k as usize];
    let mut seen = [false; 256];
    let len = used[0].body.len();
    for share in used {
        share.verify_checksum()?;
        if share.body.len() != len {
            return Err(ShamirError::LengthMismatch);
        }
        if seen[share.index as usize] {
            return Err(ShamirError::DuplicateShare(share.index));
        }
        seen[share.index as usize] = true;
    }
    // Lagrange basis at x = 0: L_i(0) = Π_{j≠i} x_j / (x_j ⊕ x_i).
    let mut secret = vec![0u8; len];
    for (i, share_i) in used.iter().enumerate() {
        let mut basis = 1u8;
        for (j, share_j) in used.iter().enumerate() {
            if i == j {
                continue;
            }
            basis = gf_mul(
                basis,
                gf_div(share_j.index, gf_add(share_j.index, share_i.index)),
            );
        }
        for (pos, &b) in share_i.body.iter().enumerate() {
            secret[pos] = gf_add(secret[pos], gf_mul(basis, b));
        }
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_fill() -> impl FnMut(&mut [u8]) {
        let mut state = 0x5eedu32;
        move |buf: &mut [u8]| {
            for b in buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 16) as u8;
            }
        }
    }

    #[test]
    fn fips197_multiplication_example() {
        // FIPS-197 §4.2: {57} • {83} = {c1}, and {57} • {13} = {fe}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn split_recover_roundtrip() {
        let secret = b"the coordinating body's master key".to_vec();
        let shares = split(&secret, 3, 5, counter_fill()).unwrap();
        assert_eq!(shares.len(), 5);
        // Any 3 recover; use a non-prefix subset.
        let subset = vec![shares[4].clone(), shares[1].clone(), shares[3].clone()];
        assert_eq!(recover(&subset, 3).unwrap(), secret);
    }

    #[test]
    fn threshold_enforced() {
        let shares = split(b"secret", 3, 5, counter_fill()).unwrap();
        let err = recover(&shares[..2], 3);
        assert_eq!(err, Err(ShamirError::TooFewShares { need: 3, got: 2 }));
    }

    #[test]
    fn duplicate_and_corrupt_rejected() {
        let shares = split(b"secret", 2, 3, counter_fill()).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert_eq!(recover(&dup, 2), Err(ShamirError::DuplicateShare(1)));
        let mut bad = shares.clone();
        bad[1].body[0] ^= 0x40;
        assert_eq!(
            recover(&bad[..2], 2),
            Err(ShamirError::CorruptShare(bad[1].index))
        );
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(split(b"s", 0, 3, counter_fill()).is_err());
        assert!(split(b"s", 4, 3, counter_fill()).is_err());
        assert!(recover(&[], 0).is_err());
    }
}
