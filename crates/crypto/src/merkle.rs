//! RFC 6962-style Merkle trees with inclusion and consistency proofs.
//!
//! Leaf hashes are domain-separated from interior node hashes (`0x00` /
//! `0x01` prefixes) exactly as in Certificate Transparency, so the
//! simulated CT log in `nrslb-ctlog` has the same proof semantics as a
//! real log. The hash-based signature scheme reuses [`fold_auth_path`].

use crate::sha256::{sha256_concat, Digest};
use crate::CryptoError;

/// Hash of a leaf entry: `SHA-256(0x00 || data)`.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_concat(&[&[0x00], data])
}

/// Hash of an interior node: `SHA-256(0x01 || left || right)`.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[&[0x01], left.as_bytes(), right.as_bytes()])
}

/// An append-only Merkle tree over opaque leaf hashes.
///
/// The tree follows RFC 6962: for `n > 1` leaves, the split point is the
/// largest power of two strictly less than `n`. The empty tree's root is
/// `SHA-256("")`, matching CT.
#[derive(Clone, Debug, Default)]
pub struct MerkleTree {
    leaves: Vec<Digest>,
}

/// An inclusion (audit) proof for one leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InclusionProof {
    /// Index of the proven leaf.
    pub leaf_index: u64,
    /// Tree size the proof was generated against.
    pub tree_size: u64,
    /// Sibling hashes from the leaf toward the root.
    pub path: Vec<Digest>,
}

/// A consistency proof between two tree sizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyProof {
    /// The older tree size.
    pub old_size: u64,
    /// The newer tree size.
    pub new_size: u64,
    /// Proof nodes per RFC 6962 §2.1.2.
    pub path: Vec<Digest>,
}

impl MerkleTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        MerkleTree { leaves: Vec::new() }
    }

    /// Number of leaves.
    pub fn len(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Append a raw entry; returns its leaf index.
    pub fn push(&mut self, data: &[u8]) -> u64 {
        self.push_leaf_hash(leaf_hash(data))
    }

    /// Append a precomputed leaf hash; returns its leaf index.
    pub fn push_leaf_hash(&mut self, h: Digest) -> u64 {
        self.leaves.push(h);
        self.leaves.len() as u64 - 1
    }

    /// Root hash of the whole tree.
    pub fn root(&self) -> Digest {
        subtree_root(&self.leaves)
    }

    /// Root hash of the whole tree, computed with up to
    /// `available_parallelism` scoped worker threads over RFC 6962
    /// subtree ranges. Bit-identical to [`MerkleTree::root`] by
    /// construction: the split points and hash order are the same, only
    /// *who* computes each subtree differs. RSF snapshot ingest and
    /// checkpoint publishing use this path (trees there run to millions
    /// of leaves).
    pub fn root_parallel(&self) -> Digest {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        subtree_root_parallel(&self.leaves, threads)
    }

    /// Root of the first `size` leaves (historical tree head).
    pub fn root_at(&self, size: u64) -> Option<Digest> {
        let size = size as usize;
        if size > self.leaves.len() {
            return None;
        }
        Some(subtree_root(&self.leaves[..size]))
    }

    /// Inclusion proof for `leaf_index` in the tree of `tree_size` leaves.
    pub fn prove_inclusion(&self, leaf_index: u64, tree_size: u64) -> Option<InclusionProof> {
        if leaf_index >= tree_size || tree_size > self.len() {
            return None;
        }
        let mut path = Vec::new();
        self.inclusion_path(
            leaf_index as usize,
            &self.leaves[..tree_size as usize],
            &mut path,
        );
        Some(InclusionProof {
            leaf_index,
            tree_size,
            path,
        })
    }

    fn inclusion_path(&self, index: usize, leaves: &[Digest], out: &mut Vec<Digest>) {
        if leaves.len() <= 1 {
            return;
        }
        let k = largest_power_of_two_below(leaves.len() as u64) as usize;
        if index < k {
            self.inclusion_path(index, &leaves[..k], out);
            out.push(subtree_root(&leaves[k..]));
        } else {
            self.inclusion_path(index - k, &leaves[k..], out);
            out.push(subtree_root(&leaves[..k]));
        }
    }

    /// Consistency proof between `old_size` and `new_size` (RFC 6962 §2.1.2).
    pub fn prove_consistency(&self, old_size: u64, new_size: u64) -> Option<ConsistencyProof> {
        if old_size > new_size || new_size > self.len() || old_size == 0 {
            return None;
        }
        let mut path = Vec::new();
        if old_size != new_size {
            self.consistency_path(
                old_size as usize,
                &self.leaves[..new_size as usize],
                true,
                &mut path,
            );
        }
        Some(ConsistencyProof {
            old_size,
            new_size,
            path,
        })
    }

    fn consistency_path(&self, m: usize, leaves: &[Digest], complete: bool, out: &mut Vec<Digest>) {
        let n = leaves.len();
        debug_assert!(m <= n);
        if m == n {
            if !complete {
                out.push(subtree_root(leaves));
            }
            return;
        }
        let k = largest_power_of_two_below(n as u64) as usize;
        if m <= k {
            self.consistency_path(m, &leaves[..k], complete, out);
            out.push(subtree_root(&leaves[k..]));
        } else {
            self.consistency_path(m - k, &leaves[k..], false, out);
            out.push(subtree_root(&leaves[..k]));
        }
    }
}

/// RFC 6962 subtree root: empty → `SHA-256("")`, one leaf → the leaf,
/// else split at the largest power of two strictly below `n`.
fn subtree_root(leaves: &[Digest]) -> Digest {
    match leaves.len() {
        0 => crate::sha256::sha256(b""),
        1 => leaves[0],
        n => {
            let k = largest_power_of_two_below(n as u64) as usize;
            node_hash(&subtree_root(&leaves[..k]), &subtree_root(&leaves[k..]))
        }
    }
}

/// Below this many leaves a subtree is hashed inline: forking a thread
/// costs more than ~1k SHA-256 compressions buy back.
const PARALLEL_MIN_LEAVES: usize = 1024;

/// The RFC 6962 subtree root over `leaves`, computed by up to
/// `threads` scoped worker threads.
///
/// The recursion splits at the same RFC 6962 point as the sequential
/// path and combines with the same interior-node hash order, so the
/// result is bit-identical; the thread budget halves at each fork
/// (left half to a spawned worker, right half inline) and small
/// subtrees fall back to the sequential code.
pub fn subtree_root_parallel(leaves: &[Digest], threads: usize) -> Digest {
    if threads <= 1 || leaves.len() < PARALLEL_MIN_LEAVES {
        return subtree_root(leaves);
    }
    let k = largest_power_of_two_below(leaves.len() as u64) as usize;
    let (left_leaves, right_leaves) = leaves.split_at(k);
    let half = threads / 2;
    crossbeam::thread::scope(|s| {
        let left = s.spawn(move |_| subtree_root_parallel(left_leaves, half));
        let right = subtree_root_parallel(right_leaves, threads - half);
        let left = left.join().expect("merkle worker panicked");
        node_hash(&left, &right)
    })
    .expect("merkle scope failed")
}

/// Verify an inclusion proof: does `leaf` live at `proof.leaf_index` in the
/// tree whose root (at `proof.tree_size`) is `root`?
pub fn verify_inclusion(
    leaf: &Digest,
    proof: &InclusionProof,
    root: &Digest,
) -> Result<(), CryptoError> {
    // Bottom-up verification per RFC 9162 §2.1.3.2.
    if proof.leaf_index >= proof.tree_size {
        return Err(CryptoError::BadProof);
    }
    let mut fnode = proof.leaf_index;
    let mut snode = proof.tree_size - 1;
    let mut hash = *leaf;
    for sibling in &proof.path {
        if snode == 0 {
            return Err(CryptoError::BadProof);
        }
        if fnode % 2 == 1 || fnode == snode {
            hash = node_hash(sibling, &hash);
            if fnode.is_multiple_of(2) {
                while fnode.is_multiple_of(2) && fnode != 0 {
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            hash = node_hash(&hash, sibling);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    if snode != 0 {
        return Err(CryptoError::BadProof);
    }
    if hash == *root {
        Ok(())
    } else {
        Err(CryptoError::BadProof)
    }
}

/// Verify a consistency proof between `old_root` and `new_root`.
pub fn verify_consistency(
    proof: &ConsistencyProof,
    old_root: &Digest,
    new_root: &Digest,
) -> Result<(), CryptoError> {
    let (m, n) = (proof.old_size, proof.new_size);
    if m == 0 || m > n {
        return Err(CryptoError::BadProof);
    }
    if m == n {
        return if old_root == new_root && proof.path.is_empty() {
            Ok(())
        } else {
            Err(CryptoError::BadProof)
        };
    }
    // Walk the proof in reverse of generation order, rebuilding both the
    // old and the new root (RFC 6962 §2.1.4 verification algorithm).
    let mut node = m - 1;
    let mut last_node = n - 1;
    while node % 2 == 1 {
        node /= 2;
        last_node /= 2;
    }
    let mut path = proof.path.iter();
    let (mut old_hash, mut new_hash) = if node != 0 {
        let first = path.next().ok_or(CryptoError::BadProof)?;
        (*first, *first)
    } else {
        (*old_root, *old_root)
    };
    while node != 0 || last_node != 0 {
        if node % 2 == 1 {
            let p = path.next().ok_or(CryptoError::BadProof)?;
            old_hash = node_hash(p, &old_hash);
            new_hash = node_hash(p, &new_hash);
        } else if node < last_node {
            let p = path.next().ok_or(CryptoError::BadProof)?;
            new_hash = node_hash(&new_hash, p);
        }
        node /= 2;
        last_node /= 2;
    }
    if path.next().is_some() {
        return Err(CryptoError::BadProof);
    }
    if old_hash == *old_root && new_hash == *new_root {
        Ok(())
    } else {
        Err(CryptoError::BadProof)
    }
}

/// Fold an authentication path from a leaf up to a root, given the leaf
/// index. Used by the hash-based signature scheme where trees are complete
/// (size `2^h`).
pub fn fold_auth_path(leaf: &Digest, mut index: u64, path: &[Digest]) -> Digest {
    let mut hash = *leaf;
    for sibling in path {
        hash = if index.is_multiple_of(2) {
            node_hash(&hash, sibling)
        } else {
            node_hash(sibling, &hash)
        };
        index /= 2;
    }
    hash
}

fn largest_power_of_two_below(n: u64) -> u64 {
    debug_assert!(n > 1);
    let mut k = 1u64;
    while k * 2 < n {
        k *= 2;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn build(n: usize) -> (MerkleTree, Vec<Digest>) {
        let mut tree = MerkleTree::new();
        let mut leaves = Vec::new();
        for i in 0..n {
            let data = format!("entry-{i}");
            leaves.push(leaf_hash(data.as_bytes()));
            tree.push(data.as_bytes());
        }
        (tree, leaves)
    }

    #[test]
    fn empty_root_matches_ct() {
        // RFC 6962: the hash of an empty tree is SHA-256 of the empty string.
        assert_eq!(MerkleTree::new().root(), sha256(b""));
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let (tree, leaves) = build(1);
        assert_eq!(tree.root(), leaves[0]);
    }

    #[test]
    fn inclusion_proofs_verify_for_all_sizes() {
        for n in 1..=33u64 {
            let (tree, leaves) = build(n as usize);
            let root = tree.root();
            for i in 0..n {
                let proof = tree.prove_inclusion(i, n).unwrap();
                verify_inclusion(&leaves[i as usize], &proof, &root)
                    .unwrap_or_else(|_| panic!("n={n} i={i}"));
            }
        }
    }

    #[test]
    fn inclusion_proof_rejects_wrong_leaf() {
        let (tree, leaves) = build(8);
        let proof = tree.prove_inclusion(3, 8).unwrap();
        let root = tree.root();
        assert!(verify_inclusion(&leaves[4], &proof, &root).is_err());
    }

    #[test]
    fn inclusion_proof_rejects_wrong_root() {
        let (tree, leaves) = build(8);
        let proof = tree.prove_inclusion(3, 8).unwrap();
        assert!(verify_inclusion(&leaves[3], &proof, &sha256(b"bogus")).is_err());
    }

    #[test]
    fn inclusion_proof_rejects_truncated_path() {
        let (tree, leaves) = build(8);
        let mut proof = tree.prove_inclusion(3, 8).unwrap();
        proof.path.pop();
        assert!(verify_inclusion(&leaves[3], &proof, &tree.root()).is_err());
    }

    #[test]
    fn historical_roots() {
        let (tree, _) = build(20);
        let (tree13, _) = build(13);
        assert_eq!(tree.root_at(13).unwrap(), tree13.root());
        assert!(tree.root_at(21).is_none());
    }

    #[test]
    fn consistency_proofs_verify_for_all_size_pairs() {
        let (tree, _) = build(32);
        for old in 1..=32u64 {
            for new in old..=32u64 {
                let proof = tree.prove_consistency(old, new).unwrap();
                let old_root = tree.root_at(old).unwrap();
                let new_root = tree.root_at(new).unwrap();
                verify_consistency(&proof, &old_root, &new_root)
                    .unwrap_or_else(|_| panic!("old={old} new={new}"));
            }
        }
    }

    #[test]
    fn consistency_proof_rejects_forked_tree() {
        let (tree, _) = build(16);
        let proof = tree.prove_consistency(7, 16).unwrap();
        let old_root = tree.root_at(7).unwrap();
        // A fork: different history of the same size.
        let mut forked = MerkleTree::new();
        for i in 0..16 {
            forked.push(format!("fork-{i}").as_bytes());
        }
        assert!(verify_consistency(&proof, &old_root, &forked.root()).is_err());
    }

    #[test]
    fn fold_auth_path_matches_tree_root_for_complete_trees() {
        let (tree, leaves) = build(16);
        let root = tree.root();
        for i in 0..16u64 {
            let proof = tree.prove_inclusion(i, 16).unwrap();
            assert_eq!(fold_auth_path(&leaves[i as usize], i, &proof.path), root);
        }
    }
}
