//! HMAC-SHA256 per RFC 2104 / FIPS 198-1.
//!
//! Used as the pseudo-random function inside the hash-based signature
//! scheme ([`crate::hbs`]) to derive one-time secret keys from a seed.

use crate::sha256::{sha256, Digest, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(sha256(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(ipad).update(message);
    let inner = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(opad).update(inner.as_bytes());
    outer.finalize()
}

/// A keyed PRF built on HMAC-SHA256: `prf(key, parts...)`.
///
/// Deterministically derives subkeys; every distinct sequence of `parts`
/// yields an independent 32-byte value.
pub fn prf(key: &[u8], parts: &[&[u8]]) -> Digest {
    let mut msg = Vec::new();
    for p in parts {
        // Length-prefix each part so (a,bc) and (ab,c) differ.
        msg.extend_from_slice(&(p.len() as u32).to_be_bytes());
        msg.extend_from_slice(p);
    }
    hmac_sha256(key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_tc1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            out.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2.
    #[test]
    fn rfc4231_tc2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            out.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_tc3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let out = hmac_sha256(&key, &data);
        assert_eq!(
            out.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // Keys longer than the block size must be hashed first; check the
        // result differs from the truncated-key interpretation and is stable.
        let long_key = vec![0x42u8; 100];
        let a = hmac_sha256(&long_key, b"msg");
        let b = hmac_sha256(&long_key[..64], b"msg");
        assert_ne!(a, b);
        assert_eq!(a, hmac_sha256(&long_key, b"msg"));
    }

    #[test]
    fn prf_domain_separation() {
        let key = b"seed";
        assert_ne!(prf(key, &[b"a", b"bc"]), prf(key, &[b"ab", b"c"]));
        assert_ne!(prf(key, &[b"a"]), prf(key, &[b"a", b""]));
        assert_eq!(prf(key, &[b"x", b"y"]), prf(key, &[b"x", b"y"]));
    }
}
