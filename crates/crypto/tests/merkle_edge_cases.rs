//! Merkle proof edge cases (RFC 6962 / RFC 9162 boundaries): identical
//! sizes, size zero, single-leaf trees, non-power-of-two sizes, and
//! out-of-range inclusion indices. These are exactly the inputs a
//! transparency-log verifier meets on its first and last syncs.

use nrslb_crypto::merkle::{
    leaf_hash, verify_consistency, verify_inclusion, ConsistencyProof, MerkleTree,
};

fn tree_of(n: u64) -> MerkleTree {
    let mut tree = MerkleTree::new();
    for i in 0..n {
        tree.push(format!("leaf-{i}").as_bytes());
    }
    tree
}

#[test]
fn consistency_old_equals_new_is_the_empty_proof() {
    for n in [1u64, 2, 3, 7, 8] {
        let tree = tree_of(n);
        let proof = tree.prove_consistency(n, n).expect("same-size proof");
        assert!(proof.path.is_empty(), "old == new needs no path (n={n})");
        let root = tree.root();
        verify_consistency(&proof, &root, &root).expect("same root verifies");
        // The same-size proof must not accept a different root pair.
        let other = tree_of(n + 1).root();
        assert!(verify_consistency(&proof, &root, &other).is_err());
    }
}

#[test]
fn consistency_from_size_zero_is_refused() {
    let tree = tree_of(4);
    assert!(
        tree.prove_consistency(0, 4).is_none(),
        "RFC 6962 defines no proof from the empty tree"
    );
    // A hand-built zero-size proof must be rejected by the verifier too.
    let forged = ConsistencyProof {
        old_size: 0,
        new_size: 4,
        path: Vec::new(),
    };
    let root = tree.root();
    assert!(verify_consistency(&forged, &root, &root).is_err());
}

#[test]
fn consistency_beyond_the_tree_is_refused() {
    let tree = tree_of(4);
    assert!(tree.prove_consistency(3, 5).is_none(), "new_size > len");
    assert!(tree.prove_consistency(4, 3).is_none(), "old > new");
}

#[test]
fn single_leaf_tree_proofs() {
    let tree = tree_of(1);
    // Inclusion of the only leaf: empty path, root == leaf hash.
    let proof = tree.prove_inclusion(0, 1).expect("inclusion in size 1");
    assert!(proof.path.is_empty());
    let leaf = leaf_hash(b"leaf-0");
    assert_eq!(tree.root(), leaf);
    verify_inclusion(&leaf, &proof, &tree.root()).expect("single leaf verifies");
    // Consistency 1 -> n for every later size.
    let grown = tree_of(5);
    let proof = grown.prove_consistency(1, 5).expect("1 -> 5");
    verify_consistency(&proof, &tree.root(), &grown.root()).expect("grown from one leaf");
}

#[test]
fn non_power_of_two_sizes_round_trip() {
    // Every (old, new) pair up to 11 leaves — covers unbalanced right
    // spines, e.g. 6 -> 11 where neither side is a complete tree.
    let tree = tree_of(11);
    for new in 1..=11u64 {
        let new_root = tree.root_at(new).expect("root_at new");
        for old in 1..=new {
            let old_root = tree.root_at(old).expect("root_at old");
            let proof = tree
                .prove_consistency(old, new)
                .unwrap_or_else(|| panic!("proof {old} -> {new}"));
            verify_consistency(&proof, &old_root, &new_root)
                .unwrap_or_else(|e| panic!("verify {old} -> {new}: {e:?}"));
        }
        for index in 0..new {
            let proof = tree
                .prove_inclusion(index, new)
                .unwrap_or_else(|| panic!("inclusion {index} in {new}"));
            let leaf = leaf_hash(format!("leaf-{index}").as_bytes());
            verify_inclusion(&leaf, &proof, &new_root)
                .unwrap_or_else(|e| panic!("verify leaf {index} in {new}: {e:?}"));
        }
    }
}

#[test]
fn inclusion_index_out_of_range_is_refused() {
    let tree = tree_of(5);
    assert!(tree.prove_inclusion(5, 5).is_none(), "index == size");
    assert!(tree.prove_inclusion(7, 5).is_none(), "index > size");
    assert!(tree.prove_inclusion(0, 6).is_none(), "tree_size > len");
    // A proof whose index was tampered past the size must not verify.
    let mut proof = tree.prove_inclusion(2, 5).expect("valid proof");
    proof.leaf_index = 5;
    let leaf = leaf_hash(b"leaf-2");
    assert!(verify_inclusion(&leaf, &proof, &tree.root()).is_err());
}

#[test]
fn inclusion_proof_rejects_wrong_leaf_and_wrong_root() {
    let tree = tree_of(6);
    let proof = tree.prove_inclusion(3, 6).expect("valid proof");
    let right = leaf_hash(b"leaf-3");
    verify_inclusion(&right, &proof, &tree.root()).expect("correct leaf verifies");
    let wrong = leaf_hash(b"leaf-4");
    assert!(verify_inclusion(&wrong, &proof, &tree.root()).is_err());
    let wrong_root = tree_of(7).root();
    assert!(verify_inclusion(&right, &proof, &wrong_root).is_err());
}
