//! Shamir split/recover round-trip properties: exhaustive threshold
//! coverage for all `1 <= k <= n <= 16`, randomized share subsets, and
//! typed rejection of under-threshold, duplicate and tampered shares.

use nrslb_crypto::shamir::{recover, split, ShamirError, Share};
use proptest::prelude::*;

/// A cheap deterministic coefficient stream (xorshift) so every test
/// split is reproducible from its label.
fn stream(mut state: u64) -> impl FnMut(&mut [u8]) {
    move |buf: &mut [u8]| {
        for byte in buf {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *byte = state as u8;
        }
    }
}

/// Every `(k, n)` with `1 <= k <= n <= 16`, every cyclic `k`-subset of
/// the shares: recovery is byte-exact, and `k-1` shares are refused
/// with the typed threshold error.
#[test]
fn all_thresholds_up_to_16_roundtrip() {
    let secret: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(37) ^ 0x5a).collect();
    for n in 1u8..=16 {
        for k in 1u8..=n {
            let shares = split(&secret, k, n, stream(((k as u64) << 8) | n as u64)).unwrap();
            assert_eq!(shares.len(), n as usize);
            for offset in 0..n as usize {
                let subset: Vec<Share> = (0..k as usize)
                    .map(|i| shares[(offset + i) % n as usize].clone())
                    .collect();
                assert_eq!(
                    recover(&subset, k).unwrap(),
                    secret,
                    "k={k} n={n} offset={offset}"
                );
                assert_eq!(
                    recover(&subset[..k as usize - 1], k),
                    Err(ShamirError::TooFewShares {
                        need: k,
                        got: k as usize - 1
                    }),
                    "k={k} n={n} offset={offset}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any (not just cyclic) k-subset, over random secrets and sizes.
    #[test]
    fn random_subset_recovers_byte_exactly(
        secret in proptest::collection::vec(any::<u8>(), 1..64),
        k in 1u8..17,
        extra in 0u8..9,
        pick_seed in any::<u64>(),
    ) {
        let n = k + extra.min(16 - k);
        let shares = split(&secret, k, n, stream(pick_seed | 1)).unwrap();
        // Fisher-Yates over the share indices, driven by the seed.
        let mut order: Vec<usize> = (0..n as usize).collect();
        let mut state = pick_seed | 1;
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let subset: Vec<Share> = order[..k as usize].iter().map(|&i| shares[i].clone()).collect();
        prop_assert_eq!(recover(&subset, k).unwrap(), secret);
    }

    // Interpolating below the threshold (an attacker pretending the
    // scheme was `k-1`-of-`n`) never reproduces the secret.
    #[test]
    fn under_threshold_interpolation_mismatches(
        secret in proptest::collection::vec(any::<u8>(), 8..64),
        k in 2u8..17,
        fill_seed in any::<u64>(),
    ) {
        let n = k;
        let shares = split(&secret, k, n, stream(fill_seed | 1)).unwrap();
        // With >= 8 secret bytes the per-byte collision chance is
        // <= 2^-64: a match here means the threshold leaked.
        if let Ok(wrong) = recover(&shares[..k as usize - 1], k - 1) {
            prop_assert_ne!(wrong, secret);
        }
    }

    // A duplicated share index is a typed error, not a silent
    // interpolation of a degenerate basis.
    #[test]
    fn duplicate_share_rejected(
        secret in proptest::collection::vec(any::<u8>(), 1..32),
        k in 2u8..9,
    ) {
        let shares = split(&secret, k, k + 1, stream(7)).unwrap();
        let mut dup = shares[..k as usize].to_vec();
        dup[1] = dup[0].clone();
        prop_assert_eq!(
            recover(&dup, k),
            Err(ShamirError::DuplicateShare(dup[0].index))
        );
    }

    // Any single-byte body tamper trips the share checksum.
    #[test]
    fn tampered_share_rejected(
        secret in proptest::collection::vec(any::<u8>(), 1..32),
        k in 1u8..9,
        victim_seed in any::<u64>(),
        byte_seed in any::<u64>(),
        flip in any::<u8>(),
    ) {
        prop_assume!(flip != 0);
        let shares = split(&secret, k, k, stream(11)).unwrap();
        let mut tampered = shares.clone();
        let v = (victim_seed % tampered.len() as u64) as usize;
        let b = (byte_seed % tampered[v].body.len() as u64) as usize;
        tampered[v].body[b] ^= flip;
        let index = tampered[v].index;
        prop_assert_eq!(recover(&tampered, k), Err(ShamirError::CorruptShare(index)));
    }
}

/// The remaining typed rejections: reserved index 0, checksum-valid
/// shares of different lengths, and out-of-range parameters.
#[test]
fn structural_rejections_are_typed() {
    let secret = b"root-store quorum master secret!";
    let shares = split(secret, 3, 5, stream(13)).unwrap();

    let mut zeroed = shares[..3].to_vec();
    zeroed[2] = Share::new(0, zeroed[2].body.clone());
    assert_eq!(recover(&zeroed, 3), Err(ShamirError::BadIndex));

    let mut short = shares[..3].to_vec();
    let mut body = short[1].body.clone();
    body.pop();
    short[1] = Share::new(short[1].index, body);
    assert_eq!(recover(&short, 3), Err(ShamirError::LengthMismatch));

    assert_eq!(
        split(secret, 0, 5, stream(17)),
        Err(ShamirError::BadParameters { k: 0, n: 5 })
    );
    assert_eq!(
        split(secret, 6, 5, stream(17)),
        Err(ShamirError::BadParameters { k: 6, n: 5 })
    );
    assert_eq!(
        recover(&shares, 0),
        Err(ShamirError::BadParameters { k: 0, n: 0 })
    );
}
