//! The parallel Merkle builder must be bit-identical to the sequential
//! reference for every tree shape — empty, singleton, powers of two,
//! non-powers, and a 10k-leaf tree large enough to actually fan out
//! across worker threads — and proofs generated against either root
//! must verify interchangeably.

use nrslb_crypto::merkle::{
    leaf_hash, subtree_root_parallel, verify_consistency, verify_inclusion, MerkleTree,
};
use nrslb_crypto::sha256::Digest;

fn build(n: usize) -> (MerkleTree, Vec<Digest>) {
    let mut tree = MerkleTree::new();
    let mut leaves = Vec::new();
    for i in 0..n {
        let data = format!("parallel-entry-{i}");
        leaves.push(leaf_hash(data.as_bytes()));
        tree.push(data.as_bytes());
    }
    (tree, leaves)
}

#[test]
fn parallel_root_matches_sequential_for_edge_sizes() {
    // 0, 1, powers of two, and every flavor of non-power shape.
    for n in [0usize, 1, 2, 3, 5, 7, 8, 9, 31, 33, 100, 1023, 1025] {
        let (tree, _) = build(n);
        assert_eq!(tree.root_parallel(), tree.root(), "n={n}");
    }
}

#[test]
fn parallel_root_matches_sequential_for_10k_leaves() {
    let (tree, leaves) = build(10_000);
    let sequential = tree.root();
    assert_eq!(tree.root_parallel(), sequential);
    // Identical regardless of the thread budget, including budgets that
    // don't divide the tree evenly.
    for threads in [1, 2, 3, 4, 7, 16] {
        assert_eq!(
            subtree_root_parallel(&leaves, threads),
            sequential,
            "threads={threads}"
        );
    }
}

#[test]
fn proofs_verify_against_the_parallel_root() {
    let (tree, leaves) = build(10_000);
    let root = tree.root_parallel();
    for i in [0u64, 1, 4097, 9_999] {
        let proof = tree.prove_inclusion(i, 10_000).unwrap();
        verify_inclusion(&leaves[i as usize], &proof, &root).unwrap();
    }
    let consistency = tree.prove_consistency(6_000, 10_000).unwrap();
    let old_root = tree.root_at(6_000).unwrap();
    verify_consistency(&consistency, &old_root, &root).unwrap();
}
