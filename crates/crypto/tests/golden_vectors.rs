//! Golden test vectors for the from-scratch hash primitives: SHA-256
//! against NIST FIPS 180-4 (the ones every implementation publishes),
//! HMAC-SHA256 against RFC 4231 test cases 1–7. The rest of the
//! workspace — Merkle trees, hash-based signatures, content addressing
//! — is only as correct as these two functions.

use nrslb_crypto::hmac::hmac_sha256;
use nrslb_crypto::sha256::{sha256, Digest, Sha256};

fn digest(hex: &str) -> Digest {
    Digest::from_hex(hex).expect("valid hex digest")
}

#[test]
fn sha256_fips_180_4_one_block() {
    // "abc" — FIPS 180-4 / SHA256ShortMsg.
    assert_eq!(
        sha256(b"abc"),
        digest("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
    );
}

#[test]
fn sha256_empty_message() {
    assert_eq!(
        sha256(b""),
        digest("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
    );
}

#[test]
fn sha256_fips_180_4_two_block() {
    // 448-bit message spanning the one-block padding boundary.
    assert_eq!(
        sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        digest("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
    );
}

#[test]
fn sha256_fips_180_4_four_block() {
    // 896-bit message (the "abcdefgh..." cascade from FIPS 180-4).
    let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
    assert_eq!(
        sha256(&msg[..]),
        digest("cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1")
    );
}

#[test]
fn sha256_one_million_a() {
    // 1,000,000 x 'a', fed through the streaming interface in uneven
    // chunks so the buffer-boundary logic is exercised too.
    let mut hasher = Sha256::new();
    let chunk = [b'a'; 997];
    let mut remaining = 1_000_000usize;
    while remaining > 0 {
        let n = remaining.min(chunk.len());
        hasher.update(&chunk[..n]);
        remaining -= n;
    }
    assert_eq!(
        hasher.finalize(),
        digest("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
    );
}

#[test]
fn sha256_streaming_matches_one_shot() {
    let msg = b"The quick brown fox jumps over the lazy dog";
    for split in 0..msg.len() {
        let mut hasher = Sha256::new();
        hasher.update(&msg[..split]);
        hasher.update(&msg[split..]);
        assert_eq!(hasher.finalize(), sha256(&msg[..]), "split at {split}");
    }
}

#[test]
fn hmac_rfc4231_case_1() {
    let key = [0x0b; 20];
    assert_eq!(
        hmac_sha256(&key, b"Hi There"),
        digest("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
    );
}

#[test]
fn hmac_rfc4231_case_2() {
    // A key shorter than the hash output.
    assert_eq!(
        hmac_sha256(b"Jefe", b"what do ya want for nothing?"),
        digest("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
    );
}

#[test]
fn hmac_rfc4231_case_3() {
    let key = [0xaa; 20];
    let msg = [0xdd; 50];
    assert_eq!(
        hmac_sha256(&key, &msg),
        digest("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
    );
}

#[test]
fn hmac_rfc4231_case_4() {
    let key: Vec<u8> = (0x01..=0x19).collect();
    let msg = [0xcd; 50];
    assert_eq!(
        hmac_sha256(&key, &msg),
        digest("82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b")
    );
}

#[test]
fn hmac_rfc4231_case_5() {
    // Truncated-output case: compare the first 128 bits.
    let key = [0x0c; 20];
    let mac = hmac_sha256(&key, b"Test With Truncation");
    assert_eq!(
        mac.as_bytes()[..16],
        Digest::from_hex("a3b6167473100ee06e0c796c2955552b00000000000000000000000000000000")
            .unwrap()
            .as_bytes()[..16]
    );
}

#[test]
fn hmac_rfc4231_case_6() {
    // A key larger than one SHA-256 block: hashed before use.
    let key = [0xaa; 131];
    assert_eq!(
        hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First"
        ),
        digest("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
    );
}

#[test]
fn hmac_rfc4231_case_7() {
    let key = [0xaa; 131];
    let msg = b"This is a test using a larger than block-size key and a larger \
than block-size data. The key needs to be hashed before being used by the HMAC \
algorithm.";
    assert_eq!(
        hmac_sha256(&key, &msg[..]),
        digest("9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2")
    );
}
