//! GF(256) field-axiom property tests and golden vectors for the
//! Shamir layer's arithmetic (the AES field, polynomial `0x11b`).
//!
//! The sharing scheme's soundness rests entirely on these axioms: if
//! the field is wrong, split/recover still "round-trips" for the
//! degenerate cases while silently corrupting thresholds. So the field
//! is pinned independently of the scheme, against both the algebra
//! (proptests over all axioms) and FIPS-197 worked examples (golden
//! vectors).

use nrslb_crypto::shamir::{gf_add, gf_div, gf_inv, gf_mul, GF_EXP, GF_LOG};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn addition_is_xor_and_self_inverse(a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(gf_add(a, b), a ^ b);
        prop_assert_eq!(gf_add(a, b), gf_add(b, a));
        prop_assert_eq!(gf_add(a, 0), a);
        prop_assert_eq!(gf_add(a, a), 0);
    }

    #[test]
    fn addition_associates(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf_add(gf_add(a, b), c), gf_add(a, gf_add(b, c)));
    }

    #[test]
    fn multiplication_commutes_with_identity_and_zero(a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(gf_mul(a, b), gf_mul(b, a));
        prop_assert_eq!(gf_mul(a, 1), a);
        prop_assert_eq!(gf_mul(a, 0), 0);
    }

    #[test]
    fn multiplication_associates(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
    }

    #[test]
    fn multiplication_distributes_over_addition(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf_mul(a, gf_add(b, c)), gf_add(gf_mul(a, b), gf_mul(a, c)));
    }

    #[test]
    fn nonzero_elements_invert(a in any::<u8>()) {
        prop_assume!(a != 0);
        prop_assert_eq!(gf_mul(a, gf_inv(a)), 1);
        prop_assert_eq!(gf_inv(gf_inv(a)), a);
    }

    #[test]
    fn division_inverts_multiplication(a in any::<u8>(), b in any::<u8>()) {
        prop_assume!(b != 0);
        prop_assert_eq!(gf_mul(gf_div(a, b), b), a);
        prop_assert_eq!(gf_div(gf_mul(a, b), b), a);
    }

    #[test]
    fn no_zero_divisors(a in any::<u8>(), b in any::<u8>()) {
        prop_assume!(a != 0 && b != 0);
        prop_assert_ne!(gf_mul(a, b), 0);
    }

    #[test]
    fn log_exp_tables_are_inverse(a in any::<u8>()) {
        prop_assume!(a != 0);
        prop_assert_eq!(GF_EXP[GF_LOG[a as usize] as usize], a);
    }
}

/// The generator 0x03 cycles through every nonzero element exactly
/// once before returning to 1 (the exp table's defining property).
#[test]
fn generator_has_full_order() {
    let mut seen = [false; 256];
    let mut x = 1u8;
    for _ in 0..255 {
        assert!(!seen[x as usize], "generator cycle shorter than 255");
        seen[x as usize] = true;
        x = gf_mul(x, 0x03);
    }
    assert_eq!(x, 1, "generator order is not 255");
    assert!(!seen[0], "generator reached zero");
}

/// Worked examples from FIPS-197 §4.2 and the AES S-box derivation:
/// any sign error in the reduction polynomial breaks these.
#[test]
fn golden_vectors() {
    // FIPS-197 §4.2: {57} • {83} = {c1}.
    assert_eq!(gf_mul(0x57, 0x83), 0xc1);
    // FIPS-197 §4.2.1: {57} • {13} = {fe}.
    assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    // xtime chain: {57}•{02}={ae}, {57}•{04}={47}, {57}•{08}={8e}.
    assert_eq!(gf_mul(0x57, 0x02), 0xae);
    assert_eq!(gf_mul(0x57, 0x04), 0x47);
    assert_eq!(gf_mul(0x57, 0x08), 0x8e);
    // The canonical inverse pair from the S-box construction.
    assert_eq!(gf_mul(0x53, 0xca), 0x01);
    assert_eq!(gf_inv(0x53), 0xca);
    assert_eq!(gf_inv(0xca), 0x53);
    // Inverse of the xtime element.
    assert_eq!(gf_inv(0x02), 0x8d);
    assert_eq!(gf_inv(0x01), 0x01);
    // Reduction wraps: {80} • {02} overflows into 0x11b.
    assert_eq!(gf_mul(0x80, 0x02), 0x1b);
    assert_eq!(gf_mul(0xff, 0xff), 0x13);
}
