//! # `nrslb-ctlog` — a simulated Certificate Transparency log and the
//! calibrated issuance corpus
//!
//! The paper's pre-emptive-constraint proposal (§5) leans on Certificate
//! Transparency: "operators can more easily examine scopes of issuance
//! because all certificates must be publicly logged". This crate provides:
//!
//! * [`log`] — an append-only Merkle log in the RFC 6962 mold: signed
//!   tree heads, inclusion and consistency proofs (via `nrslb-crypto`'s
//!   Merkle tree), and an entry-iteration API for monitors.
//! * [`corpus`] — the synthetic Web-PKI issuance corpus, calibrated to
//!   the paper's July/August 2022 measurement (§5.1): 140 roots (0
//!   name-constrained, 5 path-length-constrained), 776 intermediates
//!   (701 path-length, 31 name-constrained), 6 roots appearing in a
//!   chain with a name-constrained intermediate, and per-CA TLD scopes
//!   sized so ~90% of CAs issue for ≤ 10 TLDs (the CAge observation,
//!   §5.2). The *analysis* code in `nrslb-preemptive` re-derives all of
//!   those numbers by scanning the generated certificates.

#![warn(missing_docs)]

pub mod corpus;
pub mod log;

pub use corpus::{Corpus, CorpusConfig};
pub use log::{CtLog, SignedTreeHead};
