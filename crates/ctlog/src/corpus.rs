//! Synthetic Web-PKI issuance corpus, calibrated to the paper's §5.1
//! measurement of the NSS root store and four CT logs (July/August 2022).
//!
//! The calibration sets the *marginals* (how many CAs carry which
//! constraints, how TLD scopes are sized); all downstream numbers —
//! the constraint-prevalence table (E2), the CAge CDF (E3) — are
//! re-derived by scanning the generated certificates with the analysis
//! code in `nrslb-preemptive`, exactly as a measurement over real CT
//! data would.
//!
//! Corpus certificates carry **dummy signatures**
//! ([`nrslb_x509::CertificateBuilder::build_unsigned`]): the scanning and
//! conversion experiments never verify signatures, and skipping the
//! hash-based signing makes 100 000-leaf corpora cheap to build. The
//! small-scale incident/lag simulations (`nrslb-sim`) build real signed
//! PKIs instead.

use crate::log::CtLog;
use nrslb_x509::builder::CaKey;
use nrslb_x509::extensions::{BasicConstraints, ExtendedKeyUsage, KeyUsage, NameConstraints};
use nrslb_x509::{oids, Certificate, CertificateBuilder, DistinguishedName};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Corpus shape parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// RNG seed; corpora are deterministic given the config.
    pub seed: u64,
    /// Number of root certificates (paper: 140).
    pub n_roots: usize,
    /// Number of intermediate CA certificates (paper: 776).
    pub n_intermediates: usize,
    /// Number of leaf certificates to issue.
    pub n_leaves: usize,
    /// Roots carrying a path-length constraint (paper: 5).
    pub roots_with_path_len: usize,
    /// Roots carrying name constraints (paper: 0).
    pub roots_with_name_constraints: usize,
    /// Intermediates carrying a path-length constraint (paper: 701).
    pub ints_with_path_len: usize,
    /// Intermediates carrying name constraints (paper: 31).
    pub ints_with_name_constraints: usize,
    /// Distinct roots that should appear in at least one chain with a
    /// name-constrained intermediate (paper: 6).
    pub roots_with_nc_chain: usize,
    /// Size of the TLD universe.
    pub n_tlds: usize,
    /// Per-CA TLD-scope geometric parameter; 0.206 gives
    /// P(scope ≤ 10) ≈ 0.9, the CAge observation.
    pub scope_geometric_p: f64,
    /// Leaf issuance window (Unix seconds).
    pub issuance_window: (i64, i64),
    /// Fraction of EV leaves.
    pub ev_fraction: f64,
    /// Sign certificates with real hash-based keys (slower; default
    /// false — scanning/conversion experiments never verify signatures).
    /// Signed corpora allow full validator runs over corpus chains; keep
    /// leaf counts moderate (every leaf consumes a one-time signature
    /// from its issuing CA's 2^9-leaf key).
    pub signed: bool,
}

/// Roughly 2021-08-01.
const WINDOW_START: i64 = 1_627_776_000;
/// Roughly 2022-08-01.
const WINDOW_END: i64 = 1_659_312_000;

impl CorpusConfig {
    /// The paper-calibrated configuration with a chosen leaf count.
    pub fn paper_2022(n_leaves: usize) -> CorpusConfig {
        CorpusConfig {
            seed: 0x0051_2022,
            n_roots: 140,
            n_intermediates: 776,
            n_leaves,
            roots_with_path_len: 5,
            roots_with_name_constraints: 0,
            ints_with_path_len: 701,
            ints_with_name_constraints: 31,
            roots_with_nc_chain: 6,
            n_tlds: 120,
            scope_geometric_p: 0.206,
            issuance_window: (WINDOW_START, WINDOW_END),
            ev_fraction: 0.05,
            signed: false,
        }
    }

    /// A small configuration for unit tests.
    pub fn small(seed: u64) -> CorpusConfig {
        CorpusConfig {
            seed,
            n_roots: 12,
            n_intermediates: 40,
            n_leaves: 400,
            roots_with_path_len: 2,
            roots_with_name_constraints: 0,
            ints_with_path_len: 35,
            ints_with_name_constraints: 4,
            roots_with_nc_chain: 3,
            n_tlds: 30,
            scope_geometric_p: 0.206,
            issuance_window: (WINDOW_START, WINDOW_END),
            ev_fraction: 0.05,
            signed: false,
        }
    }

    /// Enable real signing (see the `signed` field).
    pub fn signed(mut self) -> CorpusConfig {
        self.signed = true;
        self
    }
}

/// The generated corpus: certificates plus the ground-truth structure
/// (who issued what, which TLDs each CA legitimately serves).
pub struct Corpus {
    /// Configuration used.
    pub config: CorpusConfig,
    /// Self-issued root certificates.
    pub roots: Vec<Certificate>,
    /// Intermediate CA certificates.
    pub intermediates: Vec<Certificate>,
    /// For each intermediate, the index of its issuing root.
    pub int_issuer: Vec<usize>,
    /// Leaf certificates.
    pub leaves: Vec<Certificate>,
    /// For each leaf, the index of its issuing intermediate.
    pub leaf_issuer: Vec<usize>,
    /// The TLD universe.
    pub tlds: Vec<String>,
    /// Ground-truth TLD scope (indices into `tlds`) per intermediate.
    pub int_scopes: Vec<Vec<usize>>,
}

impl Corpus {
    /// Generate a corpus from `config`.
    pub fn generate(config: CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);

        // TLD universe: a few real ones for flavor plus synthetic ones,
        // Zipf-weighted by rank.
        let real = [
            "com", "net", "org", "de", "fr", "uk", "cn", "jp", "br", "tr",
        ];
        let tlds: Vec<String> = (0..config.n_tlds)
            .map(|i| {
                real.get(i)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("tld{i:03}"))
            })
            .collect();
        let tld_weight = |i: usize| 1.0 / (i as f64 + 1.5);

        // --- Roots ---
        let mut roots = Vec::with_capacity(config.n_roots);
        let mut root_keys: Vec<CaKey> = Vec::new();
        for i in 0..config.n_roots {
            let name = DistinguishedName::ca(
                &format!("Synthetic Root CA R{i:03}"),
                &format!("Trust Services {i:03}"),
                "US",
            );
            let mut b = CertificateBuilder::new()
                .subject(name.clone())
                .validity_window(
                    WINDOW_START - 15 * 365 * 86_400,
                    WINDOW_END + 15 * 365 * 86_400,
                )
                .key_usage(KeyUsage::KEY_CERT_SIGN.union(KeyUsage::CRL_SIGN))
                .serial(1_000_000 + i as i128);
            let path_len = if i < config.roots_with_path_len {
                Some(1 + (i as u32 % 3))
            } else {
                None
            };
            b = b.basic_constraints(BasicConstraints { ca: true, path_len });
            if i < config.roots_with_name_constraints {
                b = b.name_constraints(NameConstraints::permit(&["gov"]));
            }
            if config.signed {
                let mut seed = [0u8; 32];
                rng.fill(&mut seed);
                let key = CaKey::from_seed(name, seed, 8).expect("root key");
                let cert = b
                    .subject_key(key.public())
                    .build_self_signed(&key)
                    .expect("root construction");
                roots.push(cert);
                root_keys.push(key);
            } else {
                roots.push(b.build_unsigned(name).expect("root construction"));
            }
        }

        // --- Intermediates ---
        // Name-constrained intermediates hang off exactly
        // `roots_with_nc_chain` distinct roots.
        let nc_root_pool: Vec<usize> =
            (0..config.roots_with_nc_chain.min(config.n_roots)).collect();
        // Scope sizes are geometric (most CAs serve few TLDs; ~10% serve
        // more than 10) and assigned in descending order of issuance
        // volume — large CAs serve broad scopes, as in the real PKI.
        let mut scope_sizes: Vec<usize> = (0..config.n_intermediates)
            .map(|_| {
                let mut k = 1usize;
                while rng.gen::<f64>() > config.scope_geometric_p && k < config.n_tlds {
                    k += 1;
                }
                k
            })
            .collect();
        scope_sizes.sort_unstable_by(|a, b| b.cmp(a));
        let mut intermediates = Vec::with_capacity(config.n_intermediates);
        let mut int_issuer = Vec::with_capacity(config.n_intermediates);
        let mut int_scopes = Vec::with_capacity(config.n_intermediates);
        let mut int_keys: Vec<CaKey> = Vec::new();
        for i in 0..config.n_intermediates {
            // Name-constrained CAs are the low-volume tail (gov-style).
            let name_constrained = i >= config.n_intermediates - config.ints_with_name_constraints;
            let mut k = scope_sizes[i];
            if name_constrained {
                k = k.min(3); // constrained CAs are narrow (gov-style)
            }
            // Zipf-weighted sample without replacement.
            let mut scope: Vec<usize> = Vec::with_capacity(k);
            while scope.len() < k {
                let pick = weighted_pick(&mut rng, config.n_tlds, tld_weight);
                if !scope.contains(&pick) {
                    scope.push(pick);
                }
            }
            scope.sort_unstable();

            let issuer_idx = if name_constrained {
                nc_root_pool[i % nc_root_pool.len()]
            } else {
                rng.gen_range(0..config.n_roots)
            };
            let name = DistinguishedName::ca(
                &format!("Synthetic Issuing CA I{i:04}"),
                &format!("Trust Services {issuer_idx:03}"),
                "US",
            );
            let mut b = CertificateBuilder::new()
                .subject(name.clone())
                .validity_window(
                    WINDOW_START - 8 * 365 * 86_400,
                    WINDOW_END + 8 * 365 * 86_400,
                )
                .key_usage(KeyUsage::KEY_CERT_SIGN.union(KeyUsage::CRL_SIGN))
                .serial(2_000_000 + i as i128);
            let path_len = if i >= config.n_intermediates - config.ints_with_path_len {
                Some(0)
            } else {
                None
            };
            b = b.basic_constraints(BasicConstraints { ca: true, path_len });
            if name_constrained {
                let bases: Vec<String> = scope.iter().map(|&t| tlds[t].clone()).collect();
                let base_refs: Vec<&str> = bases.iter().map(|s| s.as_str()).collect();
                b = b.name_constraints(NameConstraints::permit(&base_refs));
            }
            let cert = if config.signed {
                let mut seed = [0u8; 32];
                rng.fill(&mut seed);
                let key = CaKey::from_seed(name, seed, 9).expect("intermediate key");
                let cert = b
                    .subject_key(key.public())
                    .build_signed_by(&root_keys[issuer_idx])
                    .expect("intermediate construction");
                int_keys.push(key);
                cert
            } else {
                b.build_unsigned(roots[issuer_idx].subject().clone())
                    .expect("intermediate construction")
            };
            intermediates.push(cert);
            int_issuer.push(issuer_idx);
            int_scopes.push(scope);
        }

        // --- Leaves ---
        // Issuance volume is skewed: a few big CAs issue most leaves.
        let int_weight = |i: usize| 1.0 / (i as f64 + 2.0);
        let mut leaves = Vec::with_capacity(config.n_leaves);
        let mut leaf_issuer = Vec::with_capacity(config.n_leaves);
        let (win_start, win_end) = config.issuance_window;
        for i in 0..config.n_leaves {
            let ca = weighted_pick(&mut rng, config.n_intermediates, int_weight);
            let scope = &int_scopes[ca];
            let tld_idx = scope[weighted_pick(&mut rng, scope.len(), |j| 1.0 / (j as f64 + 1.0))];
            let domain = format!("host{:05}.{}", rng.gen_range(0..100_000), tlds[tld_idx]);
            let not_before = rng.gen_range(win_start..win_end);
            let lifetime: i64 = match rng.gen_range(0..10) {
                0..=5 => 90 * 86_400,
                6..=8 => 365 * 86_400,
                _ => 398 * 86_400,
            };
            let mut san: Vec<String> = vec![domain.clone()];
            if rng.gen_bool(0.3) {
                san.push(format!("www.{domain}"));
            }
            if rng.gen_bool(0.1) {
                san.push(format!("*.{domain}"));
            }
            let san_refs: Vec<&str> = san.iter().map(|s| s.as_str()).collect();
            let mut eku = vec![oids::kp_server_auth()];
            if rng.gen_bool(0.4) {
                eku.push(oids::kp_client_auth());
            }
            let mut b = CertificateBuilder::new()
                .subject(DistinguishedName::common_name(&domain))
                .dns_names(&san_refs)
                .validity_window(not_before, not_before + lifetime)
                .key_usage(KeyUsage::DIGITAL_SIGNATURE.union(KeyUsage::KEY_ENCIPHERMENT))
                .extended_key_usage(ExtendedKeyUsage(eku))
                .serial(10_000_000 + i as i128);
            if rng.gen_bool(config.ev_fraction) {
                b = b.ev();
            }
            let cert = if config.signed {
                b.build_signed_by(&int_keys[ca])
                    .expect("leaf construction (issuing key exhausted? lower n_leaves)")
            } else {
                b.build_unsigned(intermediates[ca].subject().clone())
                    .expect("leaf construction")
            };
            leaves.push(cert);
            leaf_issuer.push(ca);
        }

        Corpus {
            config,
            roots,
            intermediates,
            int_issuer,
            leaves,
            leaf_issuer,
            tlds,
            int_scopes,
        }
    }

    /// The full chain (leaf, intermediate, root) for leaf `i`.
    pub fn chain_for_leaf(&self, i: usize) -> Vec<Certificate> {
        let int = self.leaf_issuer[i];
        let root = self.int_issuer[int];
        vec![
            self.leaves[i].clone(),
            self.intermediates[int].clone(),
            self.roots[root].clone(),
        ]
    }

    /// Build a CT log over all leaves (entry index = leaf index).
    pub fn to_log(&self) -> CtLog {
        let mut log = CtLog::new([0x1c; 32], 4).expect("log key");
        for leaf in &self.leaves {
            log.append(leaf.clone());
        }
        log
    }
}

/// Pick an index in `0..n` with probability proportional to `weight`.
fn weighted_pick(rng: &mut StdRng, n: usize, weight: impl Fn(usize) -> f64) -> usize {
    let total: f64 = (0..n).map(&weight).sum();
    let mut target = rng.gen::<f64>() * total;
    for i in 0..n {
        target -= weight(i);
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Corpus::generate(CorpusConfig::small(1));
        let b = Corpus::generate(CorpusConfig::small(1));
        assert_eq!(a.leaves[0].fingerprint(), b.leaves[0].fingerprint());
        let c = Corpus::generate(CorpusConfig::small(2));
        assert_ne!(a.leaves[0].fingerprint(), c.leaves[0].fingerprint());
    }

    #[test]
    fn counts_match_config() {
        let config = CorpusConfig::small(3);
        let corpus = Corpus::generate(config.clone());
        assert_eq!(corpus.roots.len(), config.n_roots);
        assert_eq!(corpus.intermediates.len(), config.n_intermediates);
        assert_eq!(corpus.leaves.len(), config.n_leaves);

        let nc_ints = corpus
            .intermediates
            .iter()
            .filter(|c| c.extensions().name_constraints.is_some())
            .count();
        assert_eq!(nc_ints, config.ints_with_name_constraints);
        let pl_ints = corpus
            .intermediates
            .iter()
            .filter(|c| c.path_len().is_some())
            .count();
        assert_eq!(pl_ints, config.ints_with_path_len);
        let pl_roots = corpus
            .roots
            .iter()
            .filter(|c| c.path_len().is_some())
            .count();
        assert_eq!(pl_roots, config.roots_with_path_len);
        assert!(corpus.roots.iter().all(|c| c.is_ca()));
        assert!(corpus.leaves.iter().all(|c| !c.is_ca()));
    }

    #[test]
    fn nc_chains_touch_configured_root_count() {
        let config = CorpusConfig::small(4);
        let corpus = Corpus::generate(config.clone());
        let mut nc_roots: Vec<usize> = corpus
            .intermediates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.extensions().name_constraints.is_some())
            .map(|(i, _)| corpus.int_issuer[i])
            .collect();
        nc_roots.sort_unstable();
        nc_roots.dedup();
        assert_eq!(nc_roots.len(), config.roots_with_nc_chain);
    }

    #[test]
    fn leaves_respect_issuer_scope() {
        let corpus = Corpus::generate(CorpusConfig::small(5));
        for (i, leaf) in corpus.leaves.iter().enumerate() {
            let scope = &corpus.int_scopes[corpus.leaf_issuer[i]];
            for san in leaf.dns_names() {
                let tld = nrslb_x509::name::tld(san).unwrap();
                assert!(
                    scope.iter().any(|&t| corpus.tlds[t] == tld),
                    "leaf {i} SAN {san} outside issuer scope"
                );
            }
        }
    }

    #[test]
    fn chains_are_name_consistent() {
        let corpus = Corpus::generate(CorpusConfig::small(6));
        for i in (0..corpus.leaves.len()).step_by(37) {
            let chain = corpus.chain_for_leaf(i);
            assert_eq!(chain[0].issuer(), chain[1].subject());
            assert_eq!(chain[1].issuer(), chain[2].subject());
            assert_eq!(chain[2].issuer(), chain[2].subject()); // self-issued root
        }
    }

    #[test]
    fn log_contains_all_leaves() {
        let corpus = Corpus::generate(CorpusConfig::small(7));
        let log = corpus.to_log();
        assert_eq!(log.len(), corpus.leaves.len() as u64);
        assert_eq!(log.get(0).unwrap(), &corpus.leaves[0]);
    }

    #[test]
    fn issuance_window_respected() {
        let config = CorpusConfig::small(8);
        let corpus = Corpus::generate(config.clone());
        for leaf in &corpus.leaves {
            let nb = leaf.validity().not_before;
            assert!(nb >= config.issuance_window.0 && nb < config.issuance_window.1);
        }
    }
}
