//! The append-only certificate log: Merkle tree + signed tree heads.

use nrslb_crypto::hbs::{self, Keypair, PublicKey, Signature};
use nrslb_crypto::merkle::{
    leaf_hash, verify_consistency, verify_inclusion, ConsistencyProof, InclusionProof, MerkleTree,
};
use nrslb_crypto::sha256::Digest;
use nrslb_crypto::CryptoError;
use nrslb_x509::Certificate;
use std::sync::Mutex;

/// A signed tree head: the log's commitment to its first `size` entries.
#[derive(Clone, Debug)]
pub struct SignedTreeHead {
    /// Number of committed entries.
    pub size: u64,
    /// Merkle root over those entries.
    pub root: Digest,
    /// Issuance timestamp (Unix seconds).
    pub timestamp: i64,
    /// Log signature over `(size, root, timestamp)`.
    pub signature: Signature,
}

fn sth_bytes(size: u64, root: &Digest, timestamp: i64) -> Vec<u8> {
    let mut out = b"nrslb-ct-sth-v1:".to_vec();
    out.extend_from_slice(&size.to_be_bytes());
    out.extend_from_slice(root.as_bytes());
    out.extend_from_slice(&timestamp.to_be_bytes());
    out
}

impl SignedTreeHead {
    /// Verify under the log's public key.
    pub fn verify(&self, log_key: &PublicKey) -> Result<(), CryptoError> {
        hbs::verify(
            log_key,
            &sth_bytes(self.size, &self.root, self.timestamp),
            &self.signature,
        )
    }
}

/// A simulated CT log over certificates.
pub struct CtLog {
    tree: MerkleTree,
    entries: Vec<Certificate>,
    key: Mutex<Keypair>,
    public: PublicKey,
}

impl CtLog {
    /// Create a log with a deterministic key. `height` bounds the number
    /// of STHs the log can sign.
    pub fn new(seed: [u8; 32], height: u8) -> Result<CtLog, CryptoError> {
        let key = Keypair::from_seed(seed, height)?;
        let public = key.public();
        Ok(CtLog {
            tree: MerkleTree::new(),
            entries: Vec::new(),
            key: Mutex::new(key),
            public,
        })
    }

    /// The log's public verification key.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Number of logged certificates.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Append a certificate; returns its entry index.
    pub fn append(&mut self, cert: Certificate) -> u64 {
        let idx = self.tree.push(cert.to_der());
        self.entries.push(cert);
        idx
    }

    /// The certificate at `index`.
    pub fn get(&self, index: u64) -> Option<&Certificate> {
        self.entries.get(index as usize)
    }

    /// Iterate all logged certificates (what a monitor consumes).
    pub fn iter(&self) -> impl Iterator<Item = &Certificate> {
        self.entries.iter()
    }

    /// Sign the current tree head.
    pub fn sign_tree_head(&self, timestamp: i64) -> Result<SignedTreeHead, CryptoError> {
        let size = self.tree.len();
        let root = self.tree.root();
        let signature = self
            .key
            .lock()
            .unwrap()
            .sign(&sth_bytes(size, &root, timestamp))?;
        Ok(SignedTreeHead {
            size,
            root,
            timestamp,
            signature,
        })
    }

    /// Inclusion proof for entry `index` against tree size `size`.
    pub fn prove_inclusion(&self, index: u64, size: u64) -> Option<InclusionProof> {
        self.tree.prove_inclusion(index, size)
    }

    /// Consistency proof between two tree sizes.
    pub fn prove_consistency(&self, old: u64, new: u64) -> Option<ConsistencyProof> {
        self.tree.prove_consistency(old, new)
    }
}

/// Verify a certificate's inclusion proof against a signed tree head.
pub fn verify_cert_inclusion(
    cert: &Certificate,
    proof: &InclusionProof,
    sth: &SignedTreeHead,
    log_key: &PublicKey,
) -> Result<(), CryptoError> {
    sth.verify(log_key)?;
    if proof.tree_size != sth.size {
        return Err(CryptoError::BadProof);
    }
    verify_inclusion(&leaf_hash(cert.to_der()), proof, &sth.root)
}

/// Verify log append-only-ness between two signed tree heads.
pub fn verify_log_consistency(
    proof: &ConsistencyProof,
    old: &SignedTreeHead,
    new: &SignedTreeHead,
    log_key: &PublicKey,
) -> Result<(), CryptoError> {
    old.verify(log_key)?;
    new.verify(log_key)?;
    if proof.old_size != old.size || proof.new_size != new.size {
        return Err(CryptoError::BadProof);
    }
    verify_consistency(proof, &old.root, &new.root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::testutil::simple_chain;

    fn log_with(n: usize) -> (CtLog, Vec<Certificate>) {
        let mut log = CtLog::new([0x11; 32], 6).unwrap();
        let mut certs = Vec::new();
        for i in 0..n {
            let pki = simple_chain(&format!("log{i}.example"));
            log.append(pki.leaf.clone());
            certs.push(pki.leaf);
        }
        (log, certs)
    }

    #[test]
    fn inclusion_proofs_against_sth() {
        let (log, certs) = log_with(5);
        let sth = log.sign_tree_head(1_000).unwrap();
        for (i, cert) in certs.iter().enumerate() {
            let proof = log.prove_inclusion(i as u64, sth.size).unwrap();
            verify_cert_inclusion(cert, &proof, &sth, &log.public_key()).unwrap();
        }
    }

    #[test]
    fn wrong_cert_fails_inclusion() {
        let (log, _) = log_with(4);
        let sth = log.sign_tree_head(0).unwrap();
        let proof = log.prove_inclusion(0, sth.size).unwrap();
        let other = simple_chain("other.example").leaf;
        assert!(verify_cert_inclusion(&other, &proof, &sth, &log.public_key()).is_err());
    }

    #[test]
    fn consistency_between_sths() {
        let (mut log, _) = log_with(3);
        let old = log.sign_tree_head(10).unwrap();
        let pki = simple_chain("later.example");
        log.append(pki.leaf);
        log.append(pki.intermediate);
        let new = log.sign_tree_head(20).unwrap();
        let proof = log.prove_consistency(old.size, new.size).unwrap();
        verify_log_consistency(&proof, &old, &new, &log.public_key()).unwrap();
    }

    #[test]
    fn forged_sth_rejected() {
        let (log, _) = log_with(2);
        let mut sth = log.sign_tree_head(0).unwrap();
        sth.size += 1; // tamper
        assert!(sth.verify(&log.public_key()).is_err());
    }

    #[test]
    fn monitor_iteration() {
        let (log, certs) = log_with(3);
        let seen: Vec<_> = log.iter().collect();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[1], &certs[1]);
        assert_eq!(log.get(2), Some(&certs[2]));
        assert_eq!(log.get(3), None);
    }
}
