//! E6 (criterion) — GCC execution cost per validation and the overhead
//! of the three deployment modes (paper §3.1).
//!
//! Axes:
//! * number of GCCs attached to the candidate root (0, 1, 4, 8);
//! * deployment mode: user-agent (in-process), platform (Unix-socket
//!   trust daemon), Hammurabi (whole policy as one Datalog program);
//! * execution model: shared frozen fact base (compile-once /
//!   evaluate-many) vs the legacy clone-of-the-`Database`-per-GCC path,
//!   with and without the verdict cache.

use criterion::{criterion_group, criterion_main, Criterion};
use nrslb_core::daemon::{ephemeral_socket_path, TrustDaemon};
use nrslb_core::gcc_eval::evaluate_gcc_on_db_cloning;
use nrslb_core::{
    chain_facts, chain_id, Usage, ValidationMode, ValidationSession, Validator, VerdictCache,
};
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::testutil::simple_chain;
use std::hint::black_box;
use std::sync::Arc;

fn store_with_gccs(
    n_gccs: usize,
) -> (
    RootStore,
    nrslb_x509::Certificate,
    Vec<nrslb_x509::Certificate>,
    i64,
) {
    let pki = simple_chain("bench.example");
    let mut store = RootStore::new("bench");
    store.add_trusted(pki.root.clone()).unwrap();
    for i in 0..n_gccs {
        let src = format!(
            r#"cutoff{i}(4000000000).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{i}(T), NB < T."#
        );
        let gcc = Gcc::parse(
            &format!("bench-gcc-{i}"),
            pki.root.fingerprint(),
            &src,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
    }
    (store, pki.leaf, vec![pki.intermediate], pki.now)
}

fn bench_gcc_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_gcc_count");
    group.sample_size(40);
    for n_gccs in [0usize, 1, 4, 8] {
        let (store, leaf, pool, now) = store_with_gccs(n_gccs);
        let validator = Validator::new(store, ValidationMode::UserAgent);
        group.bench_function(format!("user_agent_{n_gccs}_gccs"), |b| {
            b.iter(|| {
                let out = validator.validate(&leaf, &pool, Usage::Tls, now).unwrap();
                assert!(out.accepted());
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_deployment_mode");
    group.sample_size(40);
    let (store, leaf, pool, now) = store_with_gccs(2);

    let ua = Validator::new(store.clone(), ValidationMode::UserAgent);
    group.bench_function("user_agent", |b| {
        b.iter(|| black_box(ua.validate(&leaf, &pool, Usage::Tls, now).unwrap()))
    });

    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path("bench"))
        .spawn(store.clone())
        .unwrap();
    let platform = Validator::new(
        store.clone(),
        ValidationMode::Platform(Arc::new(daemon.client())),
    );
    group.bench_function("platform_daemon_ipc", |b| {
        b.iter(|| black_box(platform.validate(&leaf, &pool, Usage::Tls, now).unwrap()))
    });

    let ham = Validator::new(store, ValidationMode::Hammurabi);
    group.bench_function("hammurabi_full_datalog", |b| {
        b.iter(|| black_box(ham.validate(&leaf, &pool, Usage::Tls, now).unwrap()))
    });
    group.finish();
}

fn bench_shared_edb_vs_clone(c: &mut Criterion) {
    // The compile-once / evaluate-many execution model against the
    // legacy path: N GCCs over one 3-cert chain, sharing the frozen
    // fact base vs cloning the full Database per GCC. Both variants
    // include the one-time chain conversion, so the delta is purely the
    // execution model.
    let mut group = c.benchmark_group("e6_shared_edb_vs_clone");
    group.sample_size(40);
    let pki = simple_chain("sharededb.example");
    let chain = vec![pki.leaf, pki.intermediate, pki.root];
    for n_gccs in [1usize, 4, 8, 16] {
        let gccs: Vec<Gcc> = (0..n_gccs)
            .map(|i| {
                let src = format!(
                    r#"cutoff{i}(4000000000).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{i}(T), NB < T."#
                );
                Gcc::parse(
                    &format!("shared-bench-{i}"),
                    chain.last().unwrap().fingerprint(),
                    &src,
                    GccMetadata::default(),
                )
                .unwrap()
            })
            .collect();

        group.bench_function(format!("shared_edb_{n_gccs}_gccs"), |b| {
            b.iter(|| {
                let session = ValidationSession::new(&chain);
                let verdicts = session.evaluate_gccs(&gccs, Usage::Tls).unwrap();
                assert!(verdicts.iter().all(|v| v.accepted));
                black_box(verdicts)
            })
        });

        group.bench_function(format!("clone_per_gcc_{n_gccs}_gccs"), |b| {
            b.iter(|| {
                let db = chain_facts(&chain);
                let handle = chain_id(&chain);
                let verdicts: Vec<bool> = gccs
                    .iter()
                    .map(|gcc| evaluate_gcc_on_db_cloning(gcc, &db, &handle, Usage::Tls).unwrap())
                    .collect();
                assert!(verdicts.iter().all(|&v| v));
                black_box(verdicts)
            })
        });

        // And the ceiling: a warm verdict cache turns re-validation of
        // a known chain into 2N hash lookups plus the conversion.
        let cache = VerdictCache::new(64);
        ValidationSession::new(&chain)
            .evaluate_gccs_cached(&gccs, Usage::Tls, Some(&cache))
            .unwrap();
        group.bench_function(format!("warm_verdict_cache_{n_gccs}_gccs"), |b| {
            b.iter(|| {
                let session = ValidationSession::new(&chain);
                let verdicts = session
                    .evaluate_gccs_cached(&gccs, Usage::Tls, Some(&cache))
                    .unwrap();
                black_box(verdicts)
            })
        });
    }
    group.finish();
}

fn bench_baseline_no_gcc_machinery(c: &mut Criterion) {
    // The floor: plain X.509 validation with an empty-GCC store, i.e.
    // what a validator without the paper's extension would cost.
    let mut group = c.benchmark_group("e6_baseline");
    group.sample_size(40);
    let (store, leaf, pool, now) = store_with_gccs(0);
    let validator = Validator::new(store, ValidationMode::UserAgent);
    group.bench_function("plain_x509_validation", |b| {
        b.iter(|| black_box(validator.validate(&leaf, &pool, Usage::Tls, now).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gcc_count,
    bench_modes,
    bench_shared_edb_vs_clone,
    bench_baseline_no_gcc_machinery
);
criterion_main!(benches);
