//! E1 (criterion) — per-chain certificate → Datalog conversion cost,
//! unoptimized (fact text + reparse) vs direct (in-memory facts).
//!
//! The paper reports ~2.4 ms mean unoptimized conversion (§3.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nrslb_core::facts::{chain_facts, chain_facts_unoptimized};
use nrslb_ctlog::{Corpus, CorpusConfig};
use std::hint::black_box;

fn bench_conversion(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::paper_2022(2_000));
    let chains: Vec<_> = (0..200).map(|i| corpus.chain_for_leaf(i * 7)).collect();

    let mut group = c.benchmark_group("e1_conversion");
    group.sample_size(30);
    let mut idx = 0usize;
    group.bench_function("unoptimized_text_reparse", |b| {
        b.iter_batched(
            || {
                idx = (idx + 1) % chains.len();
                chains[idx].clone()
            },
            |chain| black_box(chain_facts_unoptimized(&chain).unwrap()),
            BatchSize::SmallInput,
        )
    });
    let mut idx = 0usize;
    group.bench_function("direct_facts", |b| {
        b.iter_batched(
            || {
                idx = (idx + 1) % chains.len();
                chains[idx].clone()
            },
            |chain| black_box(chain_facts(&chain)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
