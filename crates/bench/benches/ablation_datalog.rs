//! Ablation — design choices called out in DESIGN.md §5:
//!
//! * semi-naive vs naive Datalog evaluation (recursive workloads);
//! * GCC evaluation cost as the chain's fact base grows;
//! * compile-once (pre-stratified program, shared fact base) vs the
//!   naive execution model that re-checks the program and clones the
//!   fact base on every run.

use criterion::{criterion_group, criterion_main, Criterion};
use nrslb_datalog::{CompiledProgram, Database, Engine, EvalMode, Program, Val};
use std::hint::black_box;
use std::sync::Arc;

fn chain_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n as i64 {
        db.add_fact("edge", vec![Val::int(i), Val::int(i + 1)]);
    }
    db
}

fn bench_semi_naive_vs_naive(c: &mut Criterion) {
    let program =
        Program::parse("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).").unwrap();
    let mut group = c.benchmark_group("ablation_evaluation_mode");
    group.sample_size(20);
    for n in [30usize, 60] {
        let db = chain_db(n);
        let semi = Engine::new(&program).unwrap();
        group.bench_function(format!("semi_naive_path_{n}"), |b| {
            b.iter(|| black_box(semi.run(db.clone()).unwrap()))
        });
        let naive = Engine::new(&program).unwrap().with_mode(EvalMode::Naive);
        group.bench_function(format!("naive_path_{n}"), |b| {
            b.iter(|| black_box(naive.run(db.clone()).unwrap()))
        });
    }
    group.finish();
}

fn bench_gcc_shapes(c: &mut Criterion) {
    // Listing-1-shaped program over fact bases of growing size
    // (simulating GCC evaluation over longer chains / richer facts).
    let program = Program::parse(
        r#"
        cutoff(1669784400).
        valid(Chain, "TLS") :- leaf(Chain, C), \+EV(C), cutoff(T), notBefore(C, NB), NB < T.
        "#,
    )
    .unwrap();
    let mut group = c.benchmark_group("ablation_gcc_eval");
    group.sample_size(40);
    for n_facts in [20usize, 200, 2000] {
        let mut db = Database::new();
        db.add_fact("leaf", vec![Val::str("chain"), Val::str("cert0")]);
        db.add_fact(
            "notBefore",
            vec![Val::str("cert0"), Val::int(1_600_000_000)],
        );
        // Padding facts (other predicates a conversion produces).
        for i in 0..n_facts as i64 {
            db.add_fact(
                "san",
                vec![Val::str(format!("c{i}")), Val::str("x.example")],
            );
        }
        let engine = Engine::new(&program).unwrap();
        group.bench_function(format!("listing1_{n_facts}_facts"), |b| {
            b.iter(|| black_box(engine.run(db.clone()).unwrap()))
        });
    }
    group.finish();
}

fn bench_compile_once_vs_per_run(c: &mut Criterion) {
    // What the CompiledProgram split buys: checking + stratification
    // happen once, and evaluation layers over a shared Arc'd base
    // instead of consuming a clone of it.
    let program = Program::parse(
        r#"
        cutoff(1669784400).
        valid(Chain, "TLS") :- leaf(Chain, C), \+EV(C), cutoff(T), notBefore(C, NB), NB < T.
        "#,
    )
    .unwrap();
    let mut db = Database::new();
    db.add_fact("leaf", vec![Val::str("chain"), Val::str("cert0")]);
    db.add_fact(
        "notBefore",
        vec![Val::str("cert0"), Val::int(1_600_000_000)],
    );
    for i in 0..500i64 {
        db.add_fact(
            "san",
            vec![Val::str(format!("c{i}")), Val::str("x.example")],
        );
    }
    let base = Arc::new(db);
    let compiled = CompiledProgram::compile(&program).unwrap();

    let mut group = c.benchmark_group("ablation_exec_model");
    group.sample_size(40);
    group.bench_function("compile_once_shared_base", |b| {
        b.iter(|| black_box(compiled.evaluate(Arc::clone(&base)).unwrap()))
    });
    group.bench_function("recheck_and_clone_per_run", |b| {
        b.iter(|| {
            let engine = Engine::new(&program).unwrap();
            black_box(engine.run((*base).clone()).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_semi_naive_vs_naive,
    bench_gcc_shapes,
    bench_compile_once_vs_per_run
);
criterion_main!(benches);
