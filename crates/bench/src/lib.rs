//! # `nrslb-bench` — the experiment harness
//!
//! One binary per experiment in DESIGN.md §4 (run with
//! `cargo run --release -p nrslb-bench --bin <name>`), plus Criterion
//! benches for the timing experiments (`cargo bench -p nrslb-bench`).
//!
//! Every binary prints a human-readable table and, when the
//! `NRSLB_JSON` environment variable is set, writes a JSON report to
//! that path so EXPERIMENTS.md numbers are reproducible artifacts.

#![warn(missing_docs)]

pub mod alloc;

use serde::Serialize;

/// Scale knob: most binaries honour `NRSLB_SCALE` (a leaf/chain count).
pub fn scale(default: usize) -> usize {
    std::env::var("NRSLB_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Emit a JSON report next to the printed table when `NRSLB_JSON` is set.
pub fn maybe_write_json<T: Serialize>(report: &T) {
    if let Ok(path) = std::env::var("NRSLB_JSON") {
        let json = serde_json::to_string_pretty(report).expect("report serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| eprintln!("write {path}: {e}"));
        eprintln!("json report written to {path}");
    }
}

/// Print a header for an experiment section.
pub fn header(id: &str, title: &str, anchor: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper anchor: {anchor}");
    println!("================================================================");
}

/// A simple monotonic timer for report binaries (criterion handles the
/// statistically careful timing).
pub struct Timer(std::time::Instant);

impl Timer {
    /// Start timing.
    pub fn start() -> Timer {
        Timer(std::time::Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Elapsed milliseconds.
    pub fn millis(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }
}
