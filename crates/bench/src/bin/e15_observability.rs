//! E15 — instrumentation overhead and exposition smoke test.
//!
//! The observability layer (DESIGN.md §6) promises that metric handles
//! are cheap enough to leave on in the serving path: pre-fetched Arc
//! handles, one atomic RMW per event, registry lock only at
//! registration. This binary measures that claim on the e6 shared-EDB
//! workload — N GCCs evaluated against one chain through a `Validator`
//! — instrumented vs uninstrumented (target: <3% overhead), and then
//! smoke-tests the text exposition end to end: spawn an observed trust
//! daemon, drive it, scrape it over the socket, and assert the required
//! metric families are present and every sample line parses.
//!
//! Also doubles as the CI exposition check (`ci.sh` runs it with a
//! small `NRSLB_SCALE`).

use nrslb_bench::{header, maybe_write_json, scale, Timer};
use nrslb_core::daemon::{ephemeral_socket_path, TrustDaemon};
use nrslb_core::{Usage, ValidationMode, Validator};
use nrslb_obs::Registry;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust, Subscriber};
use nrslb_x509::testutil::simple_chain;
use nrslb_x509::Certificate;
use serde::Serialize;
use std::hint::black_box;
use std::sync::{Arc, Mutex};

#[derive(Serialize)]
struct Report {
    batches: usize,
    validations_per_batch: usize,
    gccs: usize,
    uninstrumented_best_ms: f64,
    instrumented_best_ms: f64,
    overhead_pct: f64,
    overhead_target_pct: f64,
    counter_inc_ns: f64,
    histogram_observe_ns: f64,
    exposition_families: usize,
    exposition_samples: usize,
}

fn workload(n_gccs: usize) -> (RootStore, Certificate, Vec<Certificate>, i64) {
    let pki = simple_chain("e15.example");
    let mut store = RootStore::new("e15");
    store.add_trusted(pki.root.clone()).unwrap();
    for i in 0..n_gccs {
        let src = format!(
            r#"cutoff{i}(4000000000).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{i}(T), NB < T."#
        );
        let gcc = Gcc::parse(
            &format!("e15-gcc-{i}"),
            pki.root.fingerprint(),
            &src,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
    }
    (store, pki.leaf, vec![pki.intermediate], pki.now)
}

/// Best-of-`batches` time for `per_batch` validations through `v`.
fn best_batch_ms(
    v: &Validator,
    leaf: &Certificate,
    pool: &[Certificate],
    now: i64,
    batches: usize,
    per_batch: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t = Timer::start();
        for _ in 0..per_batch {
            let out = v.validate(leaf, pool, Usage::Tls, now).unwrap();
            debug_assert!(out.accepted());
            black_box(&out);
        }
        best = best.min(t.millis());
    }
    best
}

/// Assert the exposition text is structurally parseable and return
/// (family count, sample count).
fn check_exposition(text: &str, required: &[&str]) -> (usize, usize) {
    let mut families = 0usize;
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families += 1;
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown family kind in: {line}"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad family name in: {line}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<i64>().is_ok() || value.parse::<u64>().is_ok(),
            "unparseable sample value in: {line}"
        );
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "unclosed label set in: {line}");
            let labels = &series[open + 1..series.len() - 1];
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label k=v");
                assert!(!k.is_empty(), "empty label key in: {line}");
                assert!(
                    v.starts_with('"') && v.ends_with('"'),
                    "unquoted label value in: {line}"
                );
            }
        }
        samples += 1;
    }
    for family in required {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing required metric family {family} in exposition:\n{text}"
        );
    }
    (families, samples)
}

fn main() {
    header(
        "E15",
        "observability: instrumentation overhead + exposition smoke",
        "DESIGN.md §6 (tooling; no paper anchor)",
    );
    let per_batch = scale(300);
    let batches = 7usize;
    let n_gccs = 4usize;

    // --- Overhead on the e6 shared-EDB workload ---
    let (store, leaf, pool, now) = workload(n_gccs);
    let plain = Validator::new(store.clone(), ValidationMode::UserAgent);
    let registry = Arc::new(Registry::new());
    let observed =
        Validator::new(store.clone(), ValidationMode::UserAgent).with_registry(&registry);

    // Warm both paths (fact-base construction, compiled GCCs, lazily
    // created series) before timing.
    best_batch_ms(&plain, &leaf, &pool, now, 1, per_batch / 10 + 1);
    best_batch_ms(&observed, &leaf, &pool, now, 1, per_batch / 10 + 1);

    // Interleave the arms so drift hits both equally; best-of-batches
    // discards scheduling noise.
    let mut base_best = f64::INFINITY;
    let mut instr_best = f64::INFINITY;
    for _ in 0..batches {
        base_best = base_best.min(best_batch_ms(&plain, &leaf, &pool, now, 1, per_batch));
        instr_best = instr_best.min(best_batch_ms(&observed, &leaf, &pool, now, 1, per_batch));
    }
    let overhead_pct = (instr_best - base_best) / base_best * 100.0;

    println!("workload: {per_batch} validations x {batches} batches, {n_gccs} GCCs, shared EDB");
    println!("uninstrumented (best batch): {base_best:8.2} ms");
    println!("instrumented   (best batch): {instr_best:8.2} ms");
    println!("overhead: {overhead_pct:+.2}% (target < 3%)");
    if overhead_pct >= 3.0 {
        println!("WARNING: overhead above the 3% target on this machine/run");
    }

    // --- Primitive costs (per-op, amortized over a tight loop) ---
    let counter = registry.counter("nrslb_e15_spin_total", "primitive cost probe");
    let histogram = registry.histogram("nrslb_e15_spin_us", "primitive cost probe");
    const SPINS: usize = 2_000_000;
    let t = Timer::start();
    for _ in 0..SPINS {
        counter.inc();
    }
    let counter_inc_ns = t.secs() * 1e9 / SPINS as f64;
    let t = Timer::start();
    for i in 0..SPINS {
        histogram.observe(i as u64 & 0xfff);
    }
    let histogram_observe_ns = t.secs() * 1e9 / SPINS as f64;
    println!("counter.inc():       {counter_inc_ns:6.1} ns/op");
    println!("histogram.observe(): {histogram_observe_ns:6.1} ns/op");

    // --- Exposition smoke: observed daemon + feed, scraped over IPC ---
    let daemon_registry = Arc::new(Registry::new());
    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path("e15"))
        .workers(2)
        .registry(Arc::clone(&daemon_registry))
        .spawn(store.clone())
        .unwrap();
    let coordinator = CoordinatorKey::from_seed([0x15; 32], 4).unwrap();
    let feed_key = FeedKey::new([0x16; 32], 6, &coordinator).unwrap();
    let mut publisher = FeedPublisher::new("e15", feed_key, &store, 0).unwrap();
    let trust = FeedTrust::single(coordinator.public());
    let feed = Arc::new(Mutex::new(
        Subscriber::builder("e15", trust)
            .registry(Arc::clone(&daemon_registry))
            .build(),
    ));
    feed.lock().unwrap().sync(&mut publisher, now).unwrap();

    let scraping = Validator::new(store, ValidationMode::Platform(Arc::new(daemon.client())))
        .with_registry(&daemon_registry);
    for _ in 0..3 {
        assert!(scraping
            .validate(&leaf, &pool, Usage::Tls, now)
            .unwrap()
            .accepted());
    }
    let text = daemon.client().metrics_text().unwrap();
    let (families, samples) = check_exposition(
        &text,
        &[
            "nrslb_verdict_cache_hits_total",
            "nrslb_verdict_cache_misses_total",
            "nrslb_validation_latency_us",
            "nrslb_validations_total",
            "nrslb_datalog_eval_latency_us",
            "nrslb_daemon_requests_total",
            "nrslb_daemon_request_latency_us",
            "nrslb_daemon_queue_depth",
            "nrslb_rsf_subscriber_state",
            "nrslb_rsf_sync_attempts_total",
        ],
    );
    assert!(
        text.contains("nrslb_validation_latency_us{quantile=\"0.99\"}"),
        "latency quantiles missing from scrape"
    );
    println!("exposition: {families} families, {samples} samples — all parseable");
    println!("exposition smoke: OK");

    maybe_write_json(&Report {
        batches,
        validations_per_batch: per_batch,
        gccs: n_gccs,
        uninstrumented_best_ms: base_best,
        instrumented_best_ms: instr_best,
        overhead_pct,
        overhead_target_pct: 3.0,
        counter_inc_ns,
        histogram_observe_ns,
        exposition_families: families,
        exposition_samples: samples,
    });
}
