//! E4 — partial-distrust fidelity: the Debian/Symantec dilemma (paper
//! §2.3, Listing 2).
//!
//! Over a population of Symantec-era chains, a binary derivative must
//! either keep the root (accepting everything the primary rejects) or
//! remove it (rejecting everything the primary accepts — what forced
//! Debian to revert). A GCC-capable derivative matches the primary
//! exactly.

use nrslb_bench::{header, maybe_write_json, scale};
use nrslb_sim::{run_fidelity, FidelityConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    strategy: String,
    legitimate_accepted: usize,
    legitimate_total: usize,
    attacks_accepted: usize,
    attacks_total: usize,
    wrongly_rejected: f64,
    wrongly_accepted: f64,
    matches_primary: bool,
}

#[derive(Serialize)]
struct Report {
    rows: Vec<Row>,
}

fn main() {
    header(
        "E4",
        "partial-distrust fidelity across derivative strategies",
        "paper §2.3 (Debian's forced Symantec revert) + Listing 2",
    );
    let n = scale(240).min(800);
    let config = FidelityConfig {
        n_old_leaves: n / 2,
        n_exempt_leaves: n / 6,
        n_new_leaves: n / 3,
    };
    println!(
        "population: {} pre-cutoff, {} exempt, {} post-cutoff chains",
        config.n_old_leaves, config.n_exempt_leaves, config.n_new_leaves
    );
    let out = run_fidelity(config);
    println!(
        "\n{:<15} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "strategy", "legit ok", "attacks ok", "DoS rate", "vuln rate", "matches"
    );
    let mut rows = Vec::new();
    for s in &out.per_strategy {
        println!(
            "{:<15} {:>7}/{:<4} {:>7}/{:<4} {:>10.3} {:>10.3} {:>8}",
            s.strategy.to_string(),
            s.stats.legitimate_accepted,
            s.stats.legitimate_total,
            s.stats.attacks_accepted,
            s.stats.attacks_total,
            s.wrongly_rejected,
            s.wrongly_accepted,
            s.stats.matches_primary()
        );
        rows.push(Row {
            strategy: s.strategy.to_string(),
            legitimate_accepted: s.stats.legitimate_accepted,
            legitimate_total: s.stats.legitimate_total,
            attacks_accepted: s.stats.attacks_accepted,
            attacks_total: s.stats.attacks_total,
            wrongly_rejected: s.wrongly_rejected,
            wrongly_accepted: s.wrongly_accepted,
            matches_primary: s.stats.matches_primary(),
        });
    }
    println!("\npaper shape: binary-keep => vulnerable; binary-remove => DoS;");
    println!("gcc => matches the primary on every chain.");
    maybe_write_json(&Report { rows });
}
