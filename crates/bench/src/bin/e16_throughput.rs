//! E16 — trust-daemon throughput under concurrency.
//!
//! The platform-execution mode (§3.1) puts the daemon on every TLS
//! handshake on the machine, so daemon requests/sec under concurrent
//! clients *is* the deployability claim. This binary measures the
//! contention-free fast path end to end:
//!
//! 1. **Scaling**: daemon req/s at 1/2/4/8/16 keep-alive clients,
//!    cold (first sight of every chain, full Datalog evaluation) vs
//!    warm (verdict-cache hits).
//! 2. **Ablation**: the N-way sharded verdict cache vs the single-lock
//!    layout (`cache_shards = 1`), same workload. On a multi-core host
//!    the sharded cache must win at 8+ clients; on a single-core runner
//!    the two coincide within noise and the gate degrades to a
//!    no-regression check (the `cpus` field in the JSON says which
//!    machine produced the numbers).
//! 3. **Pipelining**: `OP_EVALUATE_BATCH` vs one request per chain on
//!    the same connection — how much round-trip amortization buys.
//! 4. **Signature memo**: repeated-chain validation with a cold vs warm
//!    HBS verification memo; warm must be ≥ 2× cold, because WOTS+/XMSS
//!    verification (thousands of SHA-256 compressions) dominates a
//!    cold validation.
//!
//! `NRSLB_E16_ASSERT=1` turns the acceptance thresholds into hard
//! failures (the CI smoke). The JSON report lands in `NRSLB_JSON`, or
//! `BENCH_e16.json` when unset, so the perf trajectory is tracked in
//! the repo from this PR on.

use nrslb_bench::{header, scale, Timer};
use nrslb_core::daemon::{ephemeral_socket_path, Engine, TrustDaemon};
use nrslb_core::{Usage, ValidationMode, Validator, DEFAULT_CACHE_SHARDS};
use nrslb_obs::Registry;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::testutil::simple_chain;
use nrslb_x509::Certificate;
use serde::Serialize;
use std::sync::Arc;

const CLIENT_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const WORKERS: usize = 8;
const GCCS_PER_ROOT: usize = 12;
const WARM_PASSES: usize = 6;
const TRIALS: usize = 3;
const BATCH_SIZE: usize = 32;

#[derive(Serialize)]
struct ScalingRow {
    clients: usize,
    cold_rps: f64,
    warm_rps: f64,
    single_lock_warm_rps: f64,
    sharded_vs_single_lock: f64,
}

#[derive(Serialize)]
struct Report {
    cpus: usize,
    workers: usize,
    chains: usize,
    gccs_per_root: usize,
    cache_shards: usize,
    scaling: Vec<ScalingRow>,
    batch_size: usize,
    single_request_rps: f64,
    batch_rps: f64,
    batch_vs_single: f64,
    sig_memo_cold_ms: f64,
    sig_memo_warm_ms: f64,
    sig_memo_speedup: f64,
}

/// A root store holding every chain's root, each with `GCCS_PER_ROOT`
/// distinct GCCs attached — so one warm request is one DER decode plus
/// `GCCS_PER_ROOT` verdict-cache lookups, the contended part of the
/// fast path.
fn build_workload(n_chains: usize) -> (RootStore, Vec<Vec<Certificate>>, i64) {
    let mut store = RootStore::new("e16");
    let mut chains = Vec::with_capacity(n_chains);
    let mut now = 0i64;
    for c in 0..n_chains {
        let pki = simple_chain(&format!("e16-{c}.example"));
        now = pki.now;
        store.add_trusted(pki.root.clone()).unwrap();
        for g in 0..GCCS_PER_ROOT {
            let src = format!(
                r#"cutoff{g}(4000000000).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{g}(T), NB < T."#
            );
            let gcc = Gcc::parse(
                &format!("e16-gcc-{g}"),
                pki.root.fingerprint(),
                &src,
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(gcc).unwrap();
        }
        chains.push(vec![pki.leaf, pki.intermediate, pki.root]);
    }
    (store, chains, now)
}

/// Drive `clients` keep-alive connections through `passes` full sweeps
/// of the chain set; returns requests/sec.
fn drive(daemon: &TrustDaemon, chains: &[Vec<Certificate>], clients: usize, passes: usize) -> f64 {
    let total = (clients * passes * chains.len()) as f64;
    let t = Timer::start();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let conn = daemon.keep_alive_client();
            scope.spawn(move || {
                for p in 0..passes {
                    // Stagger start offsets so clients collide on
                    // different keys, not in lockstep.
                    for i in 0..chains.len() {
                        let chain = &chains[(c * 7 + p + i) % chains.len()];
                        let verdicts = conn.evaluate(chain, Usage::Tls).unwrap();
                        assert_eq!(verdicts.len(), GCCS_PER_ROOT);
                    }
                }
            });
        }
    });
    total / t.secs()
}

/// One cold pass (chains partitioned across clients, every request a
/// full Datalog evaluation); returns requests/sec.
fn drive_cold(daemon: &TrustDaemon, chains: &[Vec<Certificate>], clients: usize) -> f64 {
    let t = Timer::start();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let conn = daemon.keep_alive_client();
            scope.spawn(move || {
                for chain in chains.iter().skip(c).step_by(clients) {
                    let verdicts = conn.evaluate(chain, Usage::Tls).unwrap();
                    assert_eq!(verdicts.len(), GCCS_PER_ROOT);
                }
            });
        }
    });
    chains.len() as f64 / t.secs()
}

// Pinned to the thread-pool engine: E16's trajectory (and the E17
// baseline read from its JSON) was measured on that engine, and the
// reactor-vs-thread-pool comparison lives in E18.
fn spawn(store: &RootStore, shards: usize, tag: &str) -> TrustDaemon {
    TrustDaemon::builder()
        .socket(ephemeral_socket_path(tag))
        .workers(WORKERS)
        .cache_shards(shards)
        .registry(Arc::new(Registry::new()))
        .engine(Engine::ThreadPool)
        .spawn(store.clone())
        .unwrap()
}

fn main() {
    header(
        "E16",
        "daemon throughput: scaling, shard ablation, pipelining, sig memo",
        "§3.1 platform execution (deployability under concurrency)",
    );
    let assert_mode = std::env::var("NRSLB_E16_ASSERT").is_ok_and(|v| v == "1");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n_chains = scale(32);
    let (store, chains, now) = build_workload(n_chains);
    println!(
        "workload: {n_chains} chains x {GCCS_PER_ROOT} GCCs, {WORKERS} workers, {cpus} CPUs, \
         best of {TRIALS} trials"
    );

    // --- Scaling + shard ablation ---
    let mut scaling = Vec::new();
    println!(
        "\n{:>8} {:>12} {:>12} {:>14} {:>8}",
        "clients", "cold r/s", "warm r/s", "1-shard r/s", "ratio"
    );
    for clients in CLIENT_COUNTS {
        // Cold: fresh daemon, every request misses. One pass is all the
        // cold data there is, so best-of-trials over fresh daemons.
        let mut cold_rps = 0f64;
        for t in 0..TRIALS {
            let daemon = spawn(&store, DEFAULT_CACHE_SHARDS, &format!("e16c{clients}-{t}"));
            cold_rps = cold_rps.max(drive_cold(&daemon, &chains, clients));
        }
        // Warm: interleave the sharded and single-lock arms trial by
        // trial so machine drift hits both equally.
        let mut warm_rps = 0f64;
        let mut single_rps = 0f64;
        let sharded = spawn(&store, DEFAULT_CACHE_SHARDS, &format!("e16s{clients}"));
        let single = spawn(&store, 1, &format!("e16u{clients}"));
        drive(&sharded, &chains, clients, 1); // fill both caches
        drive(&single, &chains, clients, 1);
        for _ in 0..TRIALS {
            warm_rps = warm_rps.max(drive(&sharded, &chains, clients, WARM_PASSES));
            single_rps = single_rps.max(drive(&single, &chains, clients, WARM_PASSES));
        }
        let ratio = warm_rps / single_rps;
        println!("{clients:>8} {cold_rps:>12.0} {warm_rps:>12.0} {single_rps:>14.0} {ratio:>8.2}");
        scaling.push(ScalingRow {
            clients,
            cold_rps,
            warm_rps,
            single_lock_warm_rps: single_rps,
            sharded_vs_single_lock: ratio,
        });
    }

    // --- Pipelining: batch vs single requests, one client, warm ---
    let daemon = spawn(&store, DEFAULT_CACHE_SHARDS, "e16b");
    drive(&daemon, &chains, 1, 1);
    let conn = daemon.keep_alive_client();
    let mut single_request_rps = 0f64;
    let mut batch_rps = 0f64;
    for _ in 0..TRIALS {
        let t = Timer::start();
        for _ in 0..WARM_PASSES {
            for chain in &chains {
                conn.evaluate(chain, Usage::Tls).unwrap();
            }
        }
        single_request_rps = single_request_rps.max((WARM_PASSES * n_chains) as f64 / t.secs());
        let t = Timer::start();
        for _ in 0..WARM_PASSES {
            for group in chains.chunks(BATCH_SIZE) {
                let items: Vec<(&[Certificate], Usage)> =
                    group.iter().map(|c| (c.as_slice(), Usage::Tls)).collect();
                let batches = conn.evaluate_batch(&items).unwrap();
                assert_eq!(batches.len(), group.len());
            }
        }
        batch_rps = batch_rps.max((WARM_PASSES * n_chains) as f64 / t.secs());
    }
    let batch_vs_single = batch_rps / single_request_rps;
    println!(
        "\npipelining: {single_request_rps:.0} chains/s single, {batch_rps:.0} chains/s batched \
         (x{BATCH_SIZE}) — {batch_vs_single:.2}x"
    );

    // --- Signature memo: repeated-chain validation, cold vs warm ---
    // Pre-warm the per-certificate fingerprint caches with a throwaway
    // validator so the arms isolate the HBS-verification memo alone.
    let throwaway = Validator::new(store.clone(), ValidationMode::UserAgent);
    let validate_all = |v: &Validator| {
        for chain in &chains {
            let out = v
                .validate(&chain[0], &chain[1..2], Usage::Tls, now)
                .unwrap();
            assert!(out.accepted());
        }
    };
    validate_all(&throwaway);
    let mut cold_ms = f64::INFINITY;
    let mut warm_ms = f64::INFINITY;
    for _ in 0..TRIALS {
        let v = Validator::new(store.clone(), ValidationMode::UserAgent);
        let t = Timer::start();
        validate_all(&v); // first sight of every (cert, issuer) edge
        cold_ms = cold_ms.min(t.millis());
        let t = Timer::start();
        validate_all(&v); // pure memo hits
        warm_ms = warm_ms.min(t.millis());
    }
    let sig_memo_speedup = cold_ms / warm_ms;
    println!(
        "sig memo: cold {cold_ms:.2} ms, warm {warm_ms:.2} ms — {sig_memo_speedup:.2}x \
         (target >= 2x)"
    );

    // --- Acceptance gates ---
    let at8 = scaling
        .iter()
        .find(|r| r.clients == 8)
        .expect("8-client row");
    // On one core the sharded and single-lock arms are the same
    // serialized machine; only require the sharding not to regress.
    let shard_floor = if cpus >= 2 { 1.0 } else { 0.85 };
    let shard_ok = at8.sharded_vs_single_lock >= shard_floor;
    let memo_ok = sig_memo_speedup >= 2.0;
    let batch_ok = batch_vs_single >= 1.0;
    println!(
        "gates: sharded/single-lock at 8 clients {:.2} (floor {shard_floor}), \
         memo {sig_memo_speedup:.2}x (floor 2), batch {batch_vs_single:.2}x (floor 1)",
        at8.sharded_vs_single_lock
    );
    if assert_mode {
        let ratio = at8.sharded_vs_single_lock;
        assert!(
            shard_ok,
            "sharded cache regressed vs single-lock at 8 clients: {ratio:.2}"
        );
        assert!(
            memo_ok,
            "sig memo warm/cold speedup below 2x: {sig_memo_speedup:.2}"
        );
        assert!(
            batch_ok,
            "batched requests slower than single: {batch_vs_single:.2}"
        );
        println!("E16 asserts: OK");
    }

    let report = Report {
        cpus,
        workers: WORKERS,
        chains: n_chains,
        gccs_per_root: GCCS_PER_ROOT,
        cache_shards: DEFAULT_CACHE_SHARDS,
        scaling,
        batch_size: BATCH_SIZE,
        single_request_rps,
        batch_rps,
        batch_vs_single,
        sig_memo_cold_ms: cold_ms,
        sig_memo_warm_ms: warm_ms,
        sig_memo_speedup,
    };
    let path = std::env::var("NRSLB_JSON").unwrap_or_else(|_| "BENCH_e16.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| eprintln!("write {path}: {e}"));
    eprintln!("json report written to {path}");
}
