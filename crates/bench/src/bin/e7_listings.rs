//! E7 — the paper's three listings, executed verbatim.
//!
//! Listing 1 (TrustCor date/usage + EV), Listing 2 (Symantec date +
//! exempt intermediates) and Listing 3 (pre-emptive lifetime/EKU/KU
//! constraint) are run against fixture chains; the table shows each
//! case's expected and observed verdicts.

use nrslb_bench::{header, maybe_write_json};
use nrslb_core::{evaluate_gcc, Usage};
use nrslb_incidents::catalog::{symantec, trustcor};
use nrslb_incidents::pki::{intermediate_ca, leaf_opts, root_ca};
use nrslb_rootstore::{Gcc, GccMetadata};
use serde::Serialize;

#[derive(Serialize)]
struct Case {
    listing: &'static str,
    case: String,
    usage: String,
    expected: bool,
    observed: bool,
}

fn main() {
    header(
        "E7",
        "paper Listings 1-3 executed verbatim",
        "paper §3 and §5.2",
    );
    let mut cases: Vec<Case> = Vec::new();

    // ---- Listing 1: TrustCor ----
    let root = root_ca("L1 TrustCor Root", 0x50);
    let int = intermediate_ca("L1 TrustCor Issuing", 0x51, &root);
    let gcc = Gcc::parse(
        "listing-1",
        root.cert.fingerprint(),
        trustcor::LISTING_1_SOURCE,
        GccMetadata::default(),
    )
    .expect("Listing 1 parses");
    let cutoff = 1_669_784_400i64;
    let pre = leaf_opts("a.example", &int, cutoff - 1_000_000, 4_000_000_000, false);
    let pre_ev = leaf_opts("b.example", &int, cutoff - 1_000_000, 4_000_000_000, true);
    let post = leaf_opts("c.example", &int, cutoff + 1_000_000, 4_000_000_000, false);
    for (label, l, usage, expected) in [
        ("pre-cutoff non-EV", &pre, Usage::Tls, true),
        ("pre-cutoff non-EV", &pre, Usage::SMime, true),
        ("pre-cutoff EV", &pre_ev, Usage::Tls, false),
        ("pre-cutoff EV", &pre_ev, Usage::SMime, true),
        ("post-cutoff", &post, Usage::Tls, false),
        ("post-cutoff", &post, Usage::SMime, false),
    ] {
        let chain = vec![l.clone(), int.cert.clone(), root.cert.clone()];
        let observed = evaluate_gcc(&gcc, &chain, usage).expect("evaluation");
        cases.push(Case {
            listing: "Listing 1 (TrustCor)",
            case: label.to_string(),
            usage: usage.to_string(),
            expected,
            observed,
        });
    }

    // ---- Listing 2: Symantec ----
    let root = root_ca("L2 Symantec Root", 0x54);
    let normal = intermediate_ca("L2 Symantec Issuing", 0x55, &root);
    let exempt = intermediate_ca("L2 Apple IST", 0x56, &root);
    let gcc = Gcc::parse(
        "listing-2",
        root.cert.fingerprint(),
        &symantec::listing_2_source(&exempt.cert.fingerprint().to_hex()),
        GccMetadata::default(),
    )
    .expect("Listing 2 parses");
    let june2016 = 1_464_753_600i64;
    let old = leaf_opts(
        "old.example",
        &normal,
        june2016 - 1_000_000,
        4_000_000_000,
        false,
    );
    let new = leaf_opts(
        "new.example",
        &normal,
        june2016 + 1_000_000,
        4_000_000_000,
        false,
    );
    let apple = leaf_opts(
        "apple.example",
        &exempt,
        june2016 + 1_000_000,
        4_000_000_000,
        false,
    );
    for (label, l, pool, expected) in [
        ("pre-2016 leaf, ordinary intermediate", &old, &normal, true),
        (
            "post-2016 leaf, ordinary intermediate",
            &new,
            &normal,
            false,
        ),
        ("post-2016 leaf, exempt intermediate", &apple, &exempt, true),
    ] {
        let chain = vec![l.clone(), pool.cert.clone(), root.cert.clone()];
        let observed = evaluate_gcc(&gcc, &chain, Usage::Tls).expect("evaluation");
        cases.push(Case {
            listing: "Listing 2 (Symantec)",
            case: label.to_string(),
            usage: "TLS".into(),
            expected,
            observed,
        });
    }

    // ---- Listing 3: pre-emptive constraint ----
    const LISTING_3: &str = r#"
oneMonthInSeconds(2630000).
lifetimeValid(Leaf) :-
  notBefore(Leaf, NB), % Get the leaf's notBefore date
  notAfter(Leaf, NA), % Get the leaf's notAfter date
  Lifetime = NA - NB, % Calculate leaf's lifetime
  oneMonthInSeconds(Limit), % Get one month (in seconds)
  Lifetime <= Limit. % Holds if leaf lifetime is < one month
validUsage(Leaf) :-
  extendedKeyUsage(Leaf, "id-kp-serverAuth"),
  keyUsage(Leaf, "digitalSignature").
valid(Chain, "TLS") :- % Valid TLS usage only
  leaf(Chain, Cert), % Get the chain's leaf certificate
  lifetimeValid(Cert), % Holds if leaf lifetime is valid
  validUsage(Cert).
"#;
    let root = root_ca("L3 Hypothetical Root", 0x58);
    let int = intermediate_ca("L3 Issuing", 0x59, &root);
    let gcc = Gcc::parse(
        "listing-3",
        root.cert.fingerprint(),
        LISTING_3,
        GccMetadata::default(),
    )
    .expect("Listing 3 parses");
    let short = leaf_opts("s.example", &int, 0, 2_000_000, false);
    let long = leaf_opts("l.example", &int, 0, 90 * 86_400, false);
    for (label, l, usage, expected) in [
        ("one-month leaf", &short, Usage::Tls, true),
        ("90-day leaf", &long, Usage::Tls, false),
        ("one-month leaf, S/MIME", &short, Usage::SMime, false),
    ] {
        let chain = vec![l.clone(), int.cert.clone(), root.cert.clone()];
        let observed = evaluate_gcc(&gcc, &chain, usage).expect("evaluation");
        cases.push(Case {
            listing: "Listing 3 (pre-emptive)",
            case: label.to_string(),
            usage: usage.to_string(),
            expected,
            observed,
        });
    }

    // ---- Report ----
    println!(
        "{:<24} {:<40} {:<8} {:>9} {:>9}",
        "listing", "case", "usage", "expected", "observed"
    );
    let mut all_ok = true;
    for c in &cases {
        let ok = c.expected == c.observed;
        all_ok &= ok;
        println!(
            "{:<24} {:<40} {:<8} {:>9} {:>9}{}",
            c.listing,
            c.case,
            c.usage,
            c.expected,
            c.observed,
            if ok { "" } else { "  <-- MISMATCH" }
        );
    }
    println!(
        "\nall listings {} the paper's semantics",
        if all_ok { "REPRODUCE" } else { "DIVERGE FROM" }
    );
    maybe_write_json(&cases);
}
