//! E21 — feed distribution-node scaling and the daemon's inline warm
//! path (DESIGN.md §5g).
//!
//! Two axes:
//!
//! 1. **Subscriber-connection axis**: 16 → 10,000 keep-alive subscriber
//!    connections held open against one reactor-backed
//!    [`FeedDistributionNode`]. Every connection proves liveness (one
//!    correct idle re-poll), then warm re-poll throughput is measured
//!    with 8 active drivers while the rest of the population sits open
//!    — the steady state of a healthy feed, where idle re-polls ride
//!    the node's inline path. The ablation arm is the deprecated
//!    thread-per-connection [`FeedSocketServer`], whose one-shot
//!    protocol forces every poll to pay a connect plus a thread spawn.
//!    The axis is capped by `RLIMIT_NOFILE` (client and node share
//!    this process, so each connection costs two fds); the binary
//!    first tries to raise the soft limit to the hard one.
//! 2. **Daemon warm-ratio re-measurement**: E18's 8-client warm
//!    reactor-vs-thread-pool ratio, re-run with the inline cost guard
//!    live (PR 11). The inline path serves cache-hit evaluations on
//!    the event loop, removing the two thread wake-ups that made the
//!    reactor trail the thread pool (~0.89) on the latency-bound warm
//!    workload.
//!
//! `NRSLB_E21_ASSERT=1` turns the acceptance thresholds into hard
//! failures: the node must sustain `min(5000, NRSLB_E21_MAX_CONNS,
//! rlimit cap)` connections with warm re-poll throughput at least the
//! thread server's, some re-polls must actually land on the inline
//! path, and the daemon warm ratio must reach 1.0 multi-core (0.95 on
//! a single-core runner, where the remaining non-inline dispatches
//! cannot be hidden by parallelism). The JSON report — polls/s and
//! polls/s/core per row — lands in `NRSLB_JSON`, or `BENCH_e21.json`
//! when unset.

#![allow(deprecated)] // the thread server is E21's ablation arm

use nrslb_bench::{header, Timer};
use nrslb_core::daemon::{ephemeral_socket_path, DaemonClient, Engine, TrustDaemon};
use nrslb_core::Usage;
use nrslb_obs::Registry;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::{CoordinatorKey, FeedDistributionNode, FeedKey, FeedPublisher, FeedSocketServer};
use nrslb_x509::testutil::simple_chain;
use nrslb_x509::Certificate;
use serde::Serialize;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const CONN_AXIS: [usize; 7] = [16, 64, 256, 1024, 2048, 5120, 10_000];
const DRIVERS: usize = 8;
const POLLS_PER_DRIVER: usize = 256;
const TRIALS: usize = 3;
/// The daemon ratio arm gets extra trials: it is a ratio of two
/// best-of measurements on the same box, so a noise spike that lands
/// in only one arm's trials skews it more than it skews the feed
/// axis's absolute throughputs.
const DAEMON_TRIALS: usize = 5;
const FEED_ROOTS: usize = 8;
/// Fds reserved for everything that is not a benchmark connection.
const FD_SLACK: usize = 256;
const SUSTAIN_TARGET: usize = 5_000;

// Daemon re-measurement arm (mirrors E18's warm-ratio geometry).
const DAEMON_WORKERS: usize = 8;
const GCCS_PER_ROOT: usize = 4;
const CHAINS: usize = 16;
const WARM_PASSES: usize = 8;

#[derive(Serialize)]
struct FeedRow {
    connections: usize,
    warm_polls_per_s: f64,
    warm_polls_per_s_per_core: f64,
    thread_server_polls_per_s: f64,
    thread_server_polls_per_s_per_core: f64,
    vs_thread_server: f64,
    inline_served: u64,
}

#[derive(Serialize)]
struct Report {
    cpus: usize,
    event_loops: usize,
    workers: usize,
    rlimit_nofile: usize,
    max_connections_tried: usize,
    max_connections_sustained: usize,
    rows: Vec<FeedRow>,
    daemon_warm_reactor_rps: f64,
    daemon_warm_reactor_rps_per_core: f64,
    daemon_warm_thread_pool_rps: f64,
    daemon_warm_ratio: f64,
    daemon_inline_total: u64,
    secs: f64,
}

/// `getrlimit`/`setrlimit` for `RLIMIT_NOFILE`, without the libc crate
/// (offline workspace). Returns the soft limit after trying to raise it
/// to the hard limit.
fn raise_and_get_nofile() -> usize {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid, writable Rlimit; the syscall fills it.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024; // conservative POSIX default
    }
    if lim.cur < lim.max {
        let want = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `want` is a valid Rlimit; failure leaves limits as-is.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            lim.cur = lim.max;
        }
    }
    usize::try_from(lim.cur).unwrap_or(usize::MAX)
}

// --- Feed axis -----------------------------------------------------

fn build_feed() -> Arc<Mutex<FeedPublisher>> {
    let mut store = RootStore::new("e21");
    for i in 0..FEED_ROOTS {
        let pki = simple_chain(&format!("e21-{i}.example"));
        store.add_trusted(pki.root).unwrap();
    }
    let coordinator = CoordinatorKey::from_seed([11; 32], 4).unwrap();
    let key = FeedKey::new([12; 32], 10, &coordinator).unwrap();
    let publisher = FeedPublisher::new("e21", key, &store, 0).unwrap();
    Arc::new(Mutex::new(publisher))
}

fn encode_request(have_sequence: u64, have_checkpoint: u64) -> Vec<u8> {
    let mut req = Vec::with_capacity(24);
    req.extend_from_slice(b"RSFQ");
    req.extend_from_slice(&16u32.to_le_bytes());
    req.extend_from_slice(&have_sequence.to_le_bytes());
    req.extend_from_slice(&have_checkpoint.to_le_bytes());
    req
}

fn read_reply(stream: &mut UnixStream) -> usize {
    let mut head = [0u8; 8];
    stream.read_exact(&mut head).expect("reply header");
    assert_eq!(&head[..4], b"RSFR", "reply magic");
    let len = u32::from_le_bytes(head[4..].try_into().unwrap()) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("reply body");
    len
}

fn poll(stream: &mut UnixStream, req: &[u8]) -> usize {
    stream.write_all(req).expect("request write");
    read_reply(stream)
}

/// Connect with a short retry loop: thousands of threads connecting at
/// once can transiently outrun the listener backlog.
fn connect(path: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("connect failed past deadline: {e}"),
        }
    }
}

/// Open `n` keep-alive subscriber connections against the node and
/// prove each live with one idle re-poll.
fn open_connections(path: &Path, n: usize, idle_req: &[u8]) -> Vec<UnixStream> {
    let openers = 16.min(n.max(1));
    let out = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        let out = &out;
        for t in 0..openers {
            let share = n / openers + usize::from(t < n % openers);
            scope.spawn(move || {
                let mut local = Vec::with_capacity(share);
                for _ in 0..share {
                    let mut stream = connect(path);
                    poll(&mut stream, idle_req);
                    local.push(stream);
                }
                out.lock().unwrap().append(&mut local);
            });
        }
    });
    out.into_inner().unwrap()
}

/// One timed warm pass over the node: `DRIVERS` threads re-polling on
/// their own already-open connections. Returns polls/sec.
fn drive_node(drivers: &mut [UnixStream], idle_req: &[u8]) -> f64 {
    let total = (drivers.len() * POLLS_PER_DRIVER) as f64;
    let t = Timer::start();
    std::thread::scope(|scope| {
        for stream in drivers.iter_mut() {
            scope.spawn(move || {
                for _ in 0..POLLS_PER_DRIVER {
                    poll(stream, idle_req);
                }
            });
        }
    });
    total / t.secs()
}

/// One timed warm pass over the thread server: its single-shot
/// protocol makes every poll a fresh connection.
fn drive_thread_server(path: &Path, idle_req: &[u8]) -> f64 {
    let total = (DRIVERS * POLLS_PER_DRIVER) as f64;
    let t = Timer::start();
    std::thread::scope(|scope| {
        for _ in 0..DRIVERS {
            scope.spawn(|| {
                for _ in 0..POLLS_PER_DRIVER {
                    let mut stream = connect(path);
                    poll(&mut stream, idle_req);
                }
            });
        }
    });
    total / t.secs()
}

fn inline_total(node: &FeedDistributionNode, loops: usize) -> u64 {
    (0..loops)
        .map(|i| {
            let label = i.to_string();
            node.registry()
                .counter_with(
                    "nrslb_reactor_inline_total",
                    &[("loop", label.as_str())],
                    "",
                )
                .get()
        })
        .sum()
}

// --- Daemon warm-ratio arm -----------------------------------------

fn build_daemon_workload() -> (RootStore, Vec<Vec<Certificate>>) {
    let mut store = RootStore::new("e21d");
    let mut chains = Vec::with_capacity(CHAINS);
    for c in 0..CHAINS {
        let pki = simple_chain(&format!("e21d-{c}.example"));
        store.add_trusted(pki.root.clone()).unwrap();
        for g in 0..GCCS_PER_ROOT {
            let src = format!(
                r#"cutoff{g}(4000000000).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{g}(T), NB < T."#
            );
            let gcc = Gcc::parse(
                &format!("e21-gcc-{g}"),
                pki.root.fingerprint(),
                &src,
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(gcc).unwrap();
        }
        chains.push(vec![pki.leaf, pki.intermediate, pki.root]);
    }
    (store, chains)
}

fn spawn_daemon(
    store: &RootStore,
    engine: Engine,
    loops: usize,
    tag: &str,
) -> (TrustDaemon, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path(tag))
        .workers(DAEMON_WORKERS)
        .event_loops(loops)
        .registry(Arc::clone(&registry))
        .engine(engine)
        .spawn(store.clone())
        .unwrap();
    (daemon, registry)
}

fn registry_inline_total(registry: &Registry, loops: usize) -> u64 {
    (0..loops)
        .map(|i| {
            let label = i.to_string();
            registry
                .counter_with(
                    "nrslb_reactor_inline_total",
                    &[("loop", label.as_str())],
                    "",
                )
                .get()
        })
        .sum()
}

fn drive_daemon(clients: &[DaemonClient], chains: &[Vec<Certificate>]) -> f64 {
    let total = (DRIVERS * WARM_PASSES * chains.len()) as f64;
    let t = Timer::start();
    std::thread::scope(|scope| {
        for (c, client) in clients.iter().take(DRIVERS).enumerate() {
            scope.spawn(move || {
                for p in 0..WARM_PASSES {
                    for i in 0..chains.len() {
                        let chain = &chains[(c * 7 + p + i) % chains.len()];
                        let verdicts = client.evaluate(chain, Usage::Tls).unwrap();
                        assert_eq!(verdicts.len(), GCCS_PER_ROOT);
                    }
                }
            });
        }
    });
    total / t.secs()
}

fn open_daemon_clients(daemon: &TrustDaemon, chains: &[Vec<Certificate>]) -> Vec<DaemonClient> {
    let clients: Vec<DaemonClient> = (0..DRIVERS).map(|_| daemon.keep_alive_client()).collect();
    for (i, client) in clients.iter().enumerate() {
        let verdicts = client
            .evaluate(&chains[i % chains.len()], Usage::Tls)
            .unwrap();
        assert_eq!(verdicts.len(), GCCS_PER_ROOT);
    }
    clients
}

fn main() {
    header(
        "E21",
        "feed distribution-node scaling + inline warm daemon path",
        "DESIGN.md §5g (reactor-backed feed node, inline cache-hit execution)",
    );
    let assert_mode = std::env::var("NRSLB_E21_ASSERT").is_ok_and(|v| v == "1");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rlimit = raise_and_get_nofile();
    let env_cap = std::env::var("NRSLB_E21_MAX_CONNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    // Client fd + node fd per connection, both in this process.
    let fd_cap = rlimit.saturating_sub(FD_SLACK) / 2;
    let cap = fd_cap.min(env_cap);
    let loops = 2.max(cpus / 2).min(4);
    let workers = 2;
    let timer = Timer::start();
    println!(
        "feed: {FEED_ROOTS} roots, {loops} loops x {workers} workers, {cpus} CPUs, \
         rlimit {rlimit} (cap {cap} conns), {DRIVERS} drivers x {POLLS_PER_DRIVER} polls, \
         best of {TRIALS} trials"
    );

    // --- Thread-server ablation arm, shared across the axis so every
    // row interleaves baseline trials with its own (machine drift hits
    // both arms equally). ---
    let ts_path: PathBuf = ephemeral_socket_path("e21ts");
    let thread_server = FeedSocketServer::spawn(build_feed(), &ts_path).unwrap();
    let (sequence, checkpoint_size) = {
        let publisher = thread_server.publisher();
        let mut publisher = publisher.lock().unwrap();
        let checkpoint = publisher.checkpoint().unwrap();
        (publisher.sequence(), checkpoint.size)
    };
    let idle_req = encode_request(sequence, checkpoint_size);

    // --- Node connection axis ---
    let mut rows: Vec<FeedRow> = Vec::new();
    let mut tried = 0;
    println!(
        "\n{:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "connections", "warm p/s", "p/s/core", "ts p/s", "ratio", "inline"
    );
    for conns in CONN_AXIS {
        let conns = conns.min(cap);
        if rows.iter().any(|r| r.connections == conns) {
            continue; // the cap collapsed this rung into the previous one
        }
        tried = tried.max(conns);
        let node_path = ephemeral_socket_path(&format!("e21n{conns}"));
        let node =
            FeedDistributionNode::spawn_with(build_feed(), &node_path, loops, workers).unwrap();
        // Sign the node's checkpoint once so the population's idle
        // re-polls hit the cached-checkpoint inline condition, exactly
        // like the thread arm's publisher (signed above).
        node.publisher().lock().unwrap().checkpoint().unwrap();
        let mut clients = open_connections(&node_path, conns, &idle_req);
        let mut warm_pps = 0f64;
        let mut ts_pps = 0f64;
        for _ in 0..TRIALS {
            ts_pps = ts_pps.max(drive_thread_server(&ts_path, &idle_req));
            warm_pps = warm_pps.max(drive_node(&mut clients[..DRIVERS.min(conns)], &idle_req));
        }
        let inline_served = inline_total(&node, loops);
        let ratio = warm_pps / ts_pps;
        println!(
            "{conns:>12} {warm_pps:>12.0} {:>12.0} {ts_pps:>12.0} {ratio:>8.2} {inline_served:>8}",
            warm_pps / cpus as f64
        );
        rows.push(FeedRow {
            connections: conns,
            warm_polls_per_s: warm_pps,
            warm_polls_per_s_per_core: warm_pps / cpus as f64,
            thread_server_polls_per_s: ts_pps,
            thread_server_polls_per_s_per_core: ts_pps / cpus as f64,
            vs_thread_server: ratio,
            inline_served,
        });
    }
    drop(thread_server);
    let sustained = rows.last().map_or(0, |r| r.connections);

    // --- Daemon warm-ratio re-measurement (inline cost guard live) ---
    let (store, chains) = build_daemon_workload();
    let (tp_daemon, _) = spawn_daemon(&store, Engine::ThreadPool, loops, "e21tp");
    let (re_daemon, re_registry) = spawn_daemon(&store, Engine::Reactor, loops, "e21re");
    let tp_clients = open_daemon_clients(&tp_daemon, &chains);
    let re_clients = open_daemon_clients(&re_daemon, &chains);
    drive_daemon(&tp_clients, &chains); // warm both verdict caches
    drive_daemon(&re_clients, &chains);
    let mut tp_rps = 0f64;
    let mut re_rps = 0f64;
    for _ in 0..DAEMON_TRIALS {
        tp_rps = tp_rps.max(drive_daemon(&tp_clients, &chains));
        re_rps = re_rps.max(drive_daemon(&re_clients, &chains));
    }
    let daemon_ratio = re_rps / tp_rps;
    let daemon_inline = registry_inline_total(&re_registry, loops);
    if std::env::var("NRSLB_E21_DEBUG").is_ok() {
        eprintln!("{}", re_registry.render_text());
    }
    println!(
        "\ndaemon warm path ({DRIVERS} clients, inline guard live): \
         reactor {re_rps:.0} r/s vs thread pool {tp_rps:.0} r/s — ratio {daemon_ratio:.2} \
         ({daemon_inline} inline)"
    );

    // --- Acceptance gates ---
    let target = SUSTAIN_TARGET.min(cap);
    let top = rows.last().expect("at least one row");
    // Single-core: inline removes the handoff from cache hits, but the
    // non-inline dispatches (cold fills, batches) still pay it with no
    // second core to hide behind; grant the same style of floor E18
    // did, raised from 0.85 to 0.95 because the warm path now hits
    // inline.
    let daemon_floor = if cpus >= 2 { 1.0 } else { 0.95 };
    println!(
        "\ngates: sustained {sustained} conns (target {target}), node-vs-thread-server \
         ratio at {} conns {:.2} (floor 1.0), daemon warm ratio {daemon_ratio:.2} \
         (floor {daemon_floor})",
        top.connections, top.vs_thread_server
    );
    if assert_mode {
        assert!(
            sustained >= target,
            "node sustained only {sustained} subscriber connections (target {target})"
        );
        assert!(
            top.vs_thread_server >= 1.0,
            "node warm re-polls below the thread server: {:.2}",
            top.vs_thread_server
        );
        assert!(
            top.inline_served > 0,
            "no idle re-poll landed on the inline path"
        );
        assert!(
            daemon_ratio >= daemon_floor,
            "daemon warm ratio {daemon_ratio:.2} below floor {daemon_floor}"
        );
        println!("E21 asserts: OK");
    }

    let report = Report {
        cpus,
        event_loops: loops,
        workers,
        rlimit_nofile: rlimit,
        max_connections_tried: tried,
        max_connections_sustained: sustained,
        rows,
        daemon_warm_reactor_rps: re_rps,
        daemon_warm_reactor_rps_per_core: re_rps / cpus as f64,
        daemon_warm_thread_pool_rps: tp_rps,
        daemon_warm_ratio: daemon_ratio,
        daemon_inline_total: daemon_inline,
        secs: timer.secs(),
    };
    let path = std::env::var("NRSLB_JSON").unwrap_or_else(|_| "BENCH_e21.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| eprintln!("write {path}: {e}"));
    eprintln!("json report written to {path}");
}
