//! E1 — certificate → Datalog conversion time (paper §3.1).
//!
//! The paper: "we measured the time taken to convert ~100K certificates
//! to their respective sets of Datalog statements and found that the mean
//! (unoptimized) conversion time was ~2.4 ms."
//!
//! This binary converts `NRSLB_SCALE` (default 100 000) corpus chains
//! through both pipelines:
//!
//! * **unoptimized** — build facts, pretty-print to Datalog text,
//!   re-parse (the shape of a naive first implementation, and the one
//!   whose cost the paper reports);
//! * **direct** — in-memory fact construction.

use nrslb_bench::{header, maybe_write_json, scale, Timer};
use nrslb_core::facts::{chain_facts, chain_facts_unoptimized};
use nrslb_ctlog::{Corpus, CorpusConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    chains: usize,
    paper_mean_unoptimized_ms: f64,
    mean_unoptimized_ms: f64,
    mean_direct_ms: f64,
    speedup: f64,
    mean_facts_per_chain: f64,
}

fn main() {
    header(
        "E1",
        "certificate-to-Datalog conversion time",
        "paper §3.1 (~2.4 ms mean unoptimized conversion over ~100K certificates)",
    );
    let n = scale(100_000);
    println!("generating corpus with {n} leaves...");
    let corpus = Corpus::generate(CorpusConfig::paper_2022(n));

    // Unoptimized path.
    let timer = Timer::start();
    let mut fact_count = 0usize;
    for i in 0..n {
        let chain = corpus.chain_for_leaf(i);
        let program = chain_facts_unoptimized(&chain).expect("fact text parses");
        fact_count += program.rules.len();
    }
    let unopt_ms = timer.millis() / n as f64;

    // Direct path.
    let timer = Timer::start();
    let mut tuple_count = 0usize;
    for i in 0..n {
        let chain = corpus.chain_for_leaf(i);
        tuple_count += chain_facts(&chain).len();
    }
    let direct_ms = timer.millis() / n as f64;

    let report = Report {
        chains: n,
        paper_mean_unoptimized_ms: 2.4,
        mean_unoptimized_ms: unopt_ms,
        mean_direct_ms: direct_ms,
        speedup: unopt_ms / direct_ms,
        mean_facts_per_chain: fact_count as f64 / n as f64,
    };
    println!("chains converted:              {n}");
    println!(
        "mean facts per chain:          {:.1}",
        report.mean_facts_per_chain
    );
    println!("paper mean (unoptimized):      2.4 ms / cert-chain");
    println!("measured mean (unoptimized):   {unopt_ms:.4} ms / chain");
    println!("measured mean (direct):        {direct_ms:.4} ms / chain");
    println!("unoptimized/direct speedup:    {:.1}x", report.speedup);
    assert_eq!(tuple_count, fact_count, "both paths agree on fact count");
    maybe_write_json(&report);
}
