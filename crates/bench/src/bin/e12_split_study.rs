//! E12 — splitting CA responsibility (paper §5.2).
//!
//! > "A more in-depth study could discover opportunities for splitting CA
//! > certificate responsibility across multiple new, limited certificates.
//! > For instance, if a CA exhibits a bi-modal scope of issuance, the CA
//! > could potentially be split into two root certificates, each more
//! > tightly constrained to its de facto scope."
//!
//! This binary runs that study over the calibrated corpus: for every
//! issuing CA, detect bimodal TLD scopes and report how much a split
//! would shrink the blast radius of a compromise (measured as the number
//! of TLDs one compromised certificate could issue for, weighted by the
//! CA's issuance volume).

use nrslb_bench::{header, maybe_write_json, scale};
use nrslb_ctlog::{Corpus, CorpusConfig};
use nrslb_preemptive::gccgen::suggest_split;
use nrslb_preemptive::scope::infer_scopes;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    cas_observed: usize,
    cas_splittable_at_30pct: usize,
    mean_scope_tlds_before: f64,
    mean_scope_tlds_after: f64,
    volume_weighted_blast_radius_before: f64,
    volume_weighted_blast_radius_after: f64,
}

fn main() {
    header(
        "E12",
        "bimodal CAs and the benefit of splitting",
        "paper §5.2 (splitting CA certificate responsibility)",
    );
    let n = scale(100_000);
    println!("generating corpus ({n} leaves)...");
    let corpus = Corpus::generate(CorpusConfig::paper_2022(n));
    let scopes = infer_scopes(&corpus.leaves);

    let mut splittable = 0usize;
    let mut before_sum = 0.0f64;
    let mut after_sum = 0.0f64;
    let mut blast_before = 0.0f64;
    let mut blast_after = 0.0f64;
    let mut total_leaves = 0.0f64;
    let mut examples = Vec::new();
    for (ca, scope) in &scopes {
        let tlds_before = scope.tlds.len() as f64;
        before_sum += tlds_before;
        blast_before += tlds_before * scope.leaf_count as f64;
        total_leaves += scope.leaf_count as f64;
        match suggest_split(scope, 0.30) {
            Some((a, b)) => {
                splittable += 1;
                // After a split, each certificate covers one bucket; the
                // blast radius of compromising either is its own bucket
                // size. Weight by the volume that bucket carries.
                let vol = |bucket: &[String]| -> f64 {
                    bucket
                        .iter()
                        .map(|t| *scope.tld_counts.get(t).unwrap_or(&0) as f64)
                        .sum()
                };
                let (va, vb) = (vol(&a), vol(&b));
                after_sum += (a.len().max(b.len())) as f64;
                blast_after += a.len() as f64 * va + b.len() as f64 * vb;
                if examples.len() < 3 && scope.tlds.len() >= 4 {
                    examples.push((ca.clone(), a.len(), b.len(), scope.tlds.len()));
                }
            }
            None => {
                after_sum += tlds_before;
                blast_after += tlds_before * scope.leaf_count as f64;
            }
        }
    }
    let n_cas = scopes.len();
    let report = Report {
        cas_observed: n_cas,
        cas_splittable_at_30pct: splittable,
        mean_scope_tlds_before: before_sum / n_cas as f64,
        mean_scope_tlds_after: after_sum / n_cas as f64,
        volume_weighted_blast_radius_before: blast_before / total_leaves,
        volume_weighted_blast_radius_after: blast_after / total_leaves,
    };

    println!("issuing CAs observed:                     {n_cas}");
    println!(
        "bimodal (splittable at 30% share):        {} ({:.1}%)",
        splittable,
        splittable as f64 / n_cas as f64 * 100.0
    );
    println!(
        "mean TLD scope per certificate:           {:.2} -> {:.2}",
        report.mean_scope_tlds_before, report.mean_scope_tlds_after
    );
    println!(
        "volume-weighted blast radius (TLDs a\n  compromised cert could issue for):      {:.2} -> {:.2}  ({:.0}% reduction)",
        report.volume_weighted_blast_radius_before,
        report.volume_weighted_blast_radius_after,
        (1.0 - report.volume_weighted_blast_radius_after
            / report.volume_weighted_blast_radius_before)
            * 100.0
    );
    for (ca, a, b, total) in &examples {
        println!("  example: {ca} — {total} TLDs -> buckets of {a} + {b}");
    }
    println!("\npaper shape: bimodal CAs exist and splitting them into per-scope");
    println!("certificates (each with its own pre-emptive GCC) cuts the damage a");
    println!("single compromised certificate can do.");
    maybe_write_json(&report);
}
