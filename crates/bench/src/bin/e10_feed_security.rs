//! E10 — RSF security (paper §4 "Security" + the "immutable logs"
//! future-work item, implemented in `nrslb-rsf::translog`).
//!
//! Three adversaries against the feed channel:
//!
//! 1. **forger** — signs messages with an unendorsed key: rejected by
//!    the coordinator-endorsement link;
//! 2. **tamperer** — flips bytes in transit: rejected by the message
//!    signature (measured: fraction of 1 000 mutations accepted);
//! 3. **equivocator** — serves a rewritten history: rejected by the
//!    transparency-log consistency proof at the *next poll* (measured:
//!    polls until detection).

use nrslb_bench::{header, maybe_write_json};
use nrslb_rootstore::RootStore;
use nrslb_rsf::signing::MessageKind;
use nrslb_rsf::translog::verify_extension;
use nrslb_rsf::{
    CoordinatorKey, FeedKey, FeedPublisher, FeedTrust, SignedMessage, Subscriber, TransparencyLog,
};
use nrslb_x509::testutil::simple_chain;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    forged_messages_accepted: usize,
    tampered_mutations_tried: usize,
    tampered_mutations_accepted: usize,
    equivocation_detected_within_polls: u32,
}

fn main() {
    header(
        "E10",
        "feed-channel security: forgery, tampering, equivocation",
        "paper §4 (RSFs as critical infrastructure; immutable logs)",
    );
    let coordinator = CoordinatorKey::from_seed([0xe1; 32], 6).unwrap();
    let trust = FeedTrust::single(coordinator.public());
    let key = FeedKey::new([0xe2; 32], 10, &coordinator).unwrap();

    let pki = simple_chain("e10.example");
    let mut store = RootStore::new("nss");
    store.add_trusted(pki.root.clone()).unwrap();
    let mut publisher = FeedPublisher::new("nss", key, &store, 0).unwrap();
    let mut subscriber = Subscriber::builder("derivative", trust.clone()).build();
    subscriber.sync(&mut publisher, 0).unwrap();

    // 1. Forgery.
    let rogue_coord = CoordinatorKey::from_seed([0xe3; 32], 4).unwrap();
    let rogue_key = FeedKey::new([0xe4; 32], 6, &rogue_coord).unwrap();
    let forged = rogue_key
        .sign(MessageKind::Snapshot, b"malicious snapshot")
        .unwrap();
    let forged_accepted = usize::from(forged.verify(&trust).is_ok());
    println!("forged messages accepted:        {forged_accepted}/1");

    // 2. Tampering: mutate a legitimate signed message 1000 ways.
    store.distrust(pki.root.fingerprint(), "incident");
    publisher.publish(&store, 100).unwrap();
    let legit = publisher.fetch(1)[0].encode();
    let mut state = 0xe10u64;
    let mut tried = 0usize;
    let mut accepted = 0usize;
    for _ in 0..1_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut mutated = legit.clone();
        let idx = (state >> 20) as usize % mutated.len();
        let bit = 1u8 << ((state >> 9) % 8);
        mutated[idx] ^= bit;
        tried += 1;
        if let Ok(msg) = SignedMessage::decode(&mutated) {
            if msg.verify(&trust).is_ok() && msg.encode() != legit {
                accepted += 1;
            }
        }
    }
    println!("tampered mutations accepted:     {accepted}/{tried}");

    // 3. Equivocation: the publisher serves the subscriber a rewritten
    // log. Simulated directly against the checkpoint API: the subscriber
    // pinned the honest checkpoint; the equivocator presents a forked
    // history of greater size with a "valid-looking" proof.
    let honest_checkpoint = subscriber.pinned_checkpoint().unwrap().clone();
    let fork_key = FeedKey::new([0xe2; 32], 10, &coordinator).unwrap(); // same feed key material
    let mut forked = TransparencyLog::new();
    for i in 0..3 {
        let m = fork_key
            .sign(MessageKind::Delta, format!("rewritten {i}").as_bytes())
            .unwrap();
        forked.append(&m);
    }
    let fork_checkpoint = forked.checkpoint(&fork_key).unwrap();
    let fork_proof = forked.prove_consistency(honest_checkpoint.size, fork_checkpoint.size);
    let mut detected_at = 0u32;
    for poll in 1..=3u32 {
        let result = verify_extension(
            Some(&honest_checkpoint),
            &fork_checkpoint,
            fork_proof.as_ref(),
            &fork_key.public(),
        );
        if result.is_err() {
            detected_at = poll;
            break;
        }
    }
    println!("equivocation detected at poll:   {detected_at} (1 = first poll after fork)");

    assert_eq!(forged_accepted, 0);
    assert_eq!(accepted, 0);
    assert_eq!(detected_at, 1);
    println!("\nall three adversaries defeated: the feed channel needs no");
    println!("transport security beyond the signatures + transparency log.");
    maybe_write_json(&Report {
        forged_messages_accepted: forged_accepted,
        tampered_mutations_tried: tried,
        tampered_mutations_accepted: accepted,
        equivocation_detected_within_polls: detected_at,
    });
}
