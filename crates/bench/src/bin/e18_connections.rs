//! E18 — trust-daemon connection scaling: reactor vs thread pool.
//!
//! The platform-execution daemon (§3.1) serves every TLS client on the
//! machine, so the number of *simultaneously open* connections — not
//! just requests/sec — is a deployability axis. A thread-per-connection
//! engine pays one OS thread (stack, scheduler slot) per idle client; a
//! readiness reactor pays one slab entry. This binary measures both:
//!
//! 1. **Connection axis** (reactor): 16 → 10,000 keep-alive
//!    connections held open against one daemon. Every connection must
//!    prove liveness (one correct round trip), then warm throughput is
//!    measured with 8 active drivers while the rest of the connections
//!    sit open. The axis is capped by `RLIMIT_NOFILE` (client and
//!    daemon share this process, so each connection costs two fds);
//!    the binary first tries to raise the soft limit to the hard one.
//! 2. **Ablation arm** (thread pool): warm throughput at 8 keep-alive
//!    clients on the PR6 thread-per-connection engine — the baseline
//!    the reactor must not lose to.
//!
//! `NRSLB_E18_ASSERT=1` turns the acceptance thresholds into hard
//! failures: the reactor must sustain `min(5000, NRSLB_E18_MAX_CONNS,
//! rlimit cap)` connections, and its 8-driver warm throughput at the
//! largest sustained row must be at least the thread-pool baseline
//! (floor 0.85 on a single-core runner, where the reactor's extra
//! loop→worker hop cannot be hidden by parallelism — the same
//! single-core accommodation E16 makes for its shard gate).
//! The JSON report lands in `NRSLB_JSON`, or `BENCH_e18.json` when
//! unset.

use nrslb_bench::{header, Timer};
use nrslb_core::daemon::{ephemeral_socket_path, DaemonClient, Engine, TrustDaemon};
use nrslb_core::Usage;
use nrslb_obs::Registry;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::testutil::simple_chain;
use nrslb_x509::Certificate;
use serde::Serialize;
use std::sync::Arc;

const CONN_AXIS: [usize; 7] = [16, 64, 256, 1024, 2048, 5120, 10_000];
const WORKERS: usize = 8;
const DRIVERS: usize = 8;
const GCCS_PER_ROOT: usize = 4;
const CHAINS: usize = 16;
const WARM_PASSES: usize = 8;
const TRIALS: usize = 3;
/// Fds reserved for everything that is not a benchmark connection
/// (listener, notify pipes, stdio, the JSON report...).
const FD_SLACK: usize = 256;
const SUSTAIN_TARGET: usize = 5_000;

#[derive(Serialize)]
struct ConnRow {
    connections: usize,
    liveness_round_trips: usize,
    warm_rps: f64,
    thread_pool_rps: f64,
    vs_thread_pool: f64,
}

#[derive(Serialize)]
struct Report {
    cpus: usize,
    workers: usize,
    event_loops: usize,
    rlimit_nofile: usize,
    max_connections_tried: usize,
    max_connections_sustained: usize,
    thread_pool_warm_rps_at_8: f64,
    rows: Vec<ConnRow>,
}

/// `getrlimit`/`setrlimit` for `RLIMIT_NOFILE`, without the libc crate
/// (offline workspace). Returns the soft limit after trying to raise it
/// to the hard limit.
fn raise_and_get_nofile() -> usize {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid, writable Rlimit; the syscall fills it.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024; // conservative POSIX default
    }
    if lim.cur < lim.max {
        let want = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `want` is a valid Rlimit; failure leaves limits as-is.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            lim.cur = lim.max;
        }
    }
    usize::try_from(lim.cur).unwrap_or(usize::MAX)
}

fn build_workload() -> (RootStore, Vec<Vec<Certificate>>) {
    let mut store = RootStore::new("e18");
    let mut chains = Vec::with_capacity(CHAINS);
    for c in 0..CHAINS {
        let pki = simple_chain(&format!("e18-{c}.example"));
        store.add_trusted(pki.root.clone()).unwrap();
        for g in 0..GCCS_PER_ROOT {
            let src = format!(
                r#"cutoff{g}(4000000000).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{g}(T), NB < T."#
            );
            let gcc = Gcc::parse(
                &format!("e18-gcc-{g}"),
                pki.root.fingerprint(),
                &src,
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(gcc).unwrap();
        }
        chains.push(vec![pki.leaf, pki.intermediate, pki.root]);
    }
    (store, chains)
}

fn spawn(store: &RootStore, engine: Engine, loops: usize, tag: &str) -> TrustDaemon {
    TrustDaemon::builder()
        .socket(ephemeral_socket_path(tag))
        .workers(WORKERS)
        .event_loops(loops)
        .registry(Arc::new(Registry::new()))
        .engine(engine)
        .spawn(store.clone())
        .unwrap()
}

/// One timed warm pass: `DRIVERS` threads sweeping the chain set over
/// already-open clients; returns requests/sec.
fn drive_once(clients: &[DaemonClient], chains: &[Vec<Certificate>]) -> f64 {
    let total = (DRIVERS * WARM_PASSES * chains.len()) as f64;
    let t = Timer::start();
    std::thread::scope(|scope| {
        for (c, client) in clients.iter().take(DRIVERS).enumerate() {
            scope.spawn(move || {
                for p in 0..WARM_PASSES {
                    for i in 0..chains.len() {
                        let chain = &chains[(c * 7 + p + i) % chains.len()];
                        let verdicts = client.evaluate(chain, Usage::Tls).unwrap();
                        assert_eq!(verdicts.len(), GCCS_PER_ROOT);
                    }
                }
            });
        }
    });
    total / t.secs()
}

/// Open `n` keep-alive connections and prove each one live with one
/// round trip (connections are lazy until first use). Work is spread
/// over a few threads so the 10k row doesn't serialize on round-trip
/// latency.
fn open_connections(
    daemon: &TrustDaemon,
    n: usize,
    chains: &[Vec<Certificate>],
) -> Vec<DaemonClient> {
    let clients: Vec<DaemonClient> = (0..n).map(|_| daemon.keep_alive_client()).collect();
    let openers = 16.min(n);
    std::thread::scope(|scope| {
        for (t, shard) in clients.chunks(n.div_ceil(openers)).enumerate() {
            scope.spawn(move || {
                for (i, client) in shard.iter().enumerate() {
                    let chain = &chains[(t + i) % chains.len()];
                    let verdicts = client.evaluate(chain, Usage::Tls).unwrap();
                    assert_eq!(verdicts.len(), GCCS_PER_ROOT);
                }
            });
        }
    });
    clients
}

fn main() {
    header(
        "E18",
        "daemon connection scaling: reactor vs thread-per-connection",
        "§3.1 platform execution (one daemon, every TLS client on the machine)",
    );
    let assert_mode = std::env::var("NRSLB_E18_ASSERT").is_ok_and(|v| v == "1");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rlimit = raise_and_get_nofile();
    let env_cap = std::env::var("NRSLB_E18_MAX_CONNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    // Client fd + daemon fd per connection, both in this process.
    let fd_cap = rlimit.saturating_sub(FD_SLACK) / 2;
    let cap = fd_cap.min(env_cap);
    let loops = 2.max(cpus / 2).min(4);
    let (store, chains) = build_workload();
    println!(
        "workload: {CHAINS} chains x {GCCS_PER_ROOT} GCCs, {WORKERS} workers, {loops} loops, \
         {cpus} CPUs, rlimit {rlimit} (cap {cap} conns), best of {TRIALS} trials"
    );

    // --- Thread-pool baseline arm: kept open for the whole sweep so
    // every reactor row can interleave baseline trials with its own
    // (machine drift then hits both arms equally — the same trick
    // E16's shard ablation uses). ---
    let tp_daemon = spawn(&store, Engine::ThreadPool, loops, "e18tp");
    let tp_clients = open_connections(&tp_daemon, DRIVERS, &chains);
    drive_once(&tp_clients, &chains); // warm both caches once

    // --- Reactor connection axis ---
    let mut rows: Vec<ConnRow> = Vec::new();
    let mut tried = 0;
    println!(
        "\n{:>12} {:>12} {:>12} {:>12} {:>8}",
        "connections", "liveness", "warm r/s", "tp r/s", "ratio"
    );
    for conns in CONN_AXIS {
        let conns = conns.min(cap);
        if rows.iter().any(|r| r.connections == conns) {
            continue; // the cap collapsed this rung into the previous one
        }
        tried = tried.max(conns);
        let daemon = spawn(&store, Engine::Reactor, loops, &format!("e18r{conns}"));
        let clients = open_connections(&daemon, conns, &chains);
        let mut warm_rps = 0f64;
        let mut thread_pool_rps = 0f64;
        for _ in 0..TRIALS {
            thread_pool_rps = thread_pool_rps.max(drive_once(&tp_clients, &chains));
            warm_rps = warm_rps.max(drive_once(&clients, &chains));
        }
        let ratio = warm_rps / thread_pool_rps;
        println!("{conns:>12} {conns:>12} {warm_rps:>12.0} {thread_pool_rps:>12.0} {ratio:>8.2}");
        rows.push(ConnRow {
            connections: conns,
            liveness_round_trips: conns,
            warm_rps,
            thread_pool_rps,
            vs_thread_pool: ratio,
        });
    }
    let sustained = rows.last().map_or(0, |r| r.connections);
    let baseline_rps = rows.iter().fold(0f64, |m, r| m.max(r.thread_pool_rps));

    // --- Acceptance gates ---
    let target = SUSTAIN_TARGET.min(cap);
    let top = rows.last().expect("at least one row");
    // On one core the reactor's loop→worker hop is pure overhead that
    // no second core can absorb; E16 grants its shard gate the same
    // 0.85 single-core floor.
    let floor = if cpus >= 2 { 1.0 } else { 0.85 };
    println!(
        "\ngates: sustained {sustained} conns (target {target}), \
         warm ratio at {} conns {:.2} (floor {floor})",
        top.connections, top.vs_thread_pool
    );
    if assert_mode {
        assert!(
            sustained >= target,
            "reactor sustained only {sustained} connections (target {target})"
        );
        let ratio = top.vs_thread_pool;
        assert!(
            ratio >= floor,
            "reactor warm throughput below thread-pool baseline: {ratio:.2} (floor {floor})"
        );
        println!("E18 asserts: OK");
    }

    let report = Report {
        cpus,
        workers: WORKERS,
        event_loops: loops,
        rlimit_nofile: rlimit,
        max_connections_tried: tried,
        max_connections_sustained: sustained,
        thread_pool_warm_rps_at_8: baseline_rps,
        rows,
    };
    let path = std::env::var("NRSLB_JSON").unwrap_or_else(|_| "BENCH_e18.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| eprintln!("write {path}: {e}"));
    eprintln!("json report written to {path}");
}
