//! E11 — ecosystem exposure (paper §4, aggregated): the fraction of
//! clients still accepting the incident root's post-distrust chains,
//! N days after the primary acted, under (a) today's manual-mirroring
//! population and (b) the all-RSF counterfactual the paper proposes.

use nrslb_bench::{header, maybe_write_json};
use nrslb_sim::{
    counterfactual_all_rsf, default_population, exposure_curve, mean_window, run_lag_simulation,
    LagConfig,
};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    days_after_incident: u32,
    exposed_share_today: f64,
    exposed_share_all_rsf: f64,
}

#[derive(Serialize)]
struct Report {
    mean_window_today_days: f64,
    mean_window_all_rsf_days: f64,
    rows: Vec<Row>,
}

fn main() {
    header(
        "E11",
        "population-weighted exposure after a root distrust",
        "paper §4 (derivative staleness, aggregated over a client mix)",
    );
    let config = LagConfig::default();
    println!(
        "simulating {} days; incident at day {}\n",
        config.horizon_days, config.distrust_day
    );
    let outcome = run_lag_simulation(&config);
    let population = default_population();
    let counterfactual = counterfactual_all_rsf(&outcome);

    let days = [0u32, 1, 7, 30, 45, 60, 90, 120, 150, 200, 280, 330];
    let today = exposure_curve(&outcome, &population, &config, &days);
    let rsf = exposure_curve(&counterfactual, &population, &config, &days);

    println!("population mix:");
    for (name, share) in &population {
        println!("  {name:<14} {:>5.1}%", share * 100.0);
    }
    println!(
        "\n{:<22} {:>14} {:>14}",
        "days after incident", "exposed today", "exposed all-RSF"
    );
    let mut rows = Vec::new();
    for (a, b) in today.iter().zip(&rsf) {
        println!(
            "{:<22} {:>13.1}% {:>13.1}%",
            a.days_after_incident,
            a.exposed_share * 100.0,
            b.exposed_share * 100.0
        );
        rows.push(Row {
            days_after_incident: a.days_after_incident,
            exposed_share_today: a.exposed_share,
            exposed_share_all_rsf: b.exposed_share,
        });
    }
    let mean_today = mean_window(&outcome, &population);
    let mean_rsf = mean_window(&counterfactual, &population);
    println!("\npopulation-weighted mean vulnerability window:");
    println!("  today's mix:        {mean_today:.1} days");
    println!("  all-RSF (hourly):   {mean_rsf:.3} days");
    println!("\npaper shape: with manual mirroring, a majority of clients stay");
    println!("attackable for months; universal RSF subscription collapses the");
    println!("weighted window to under an hour-scale sliver.");
    maybe_write_json(&Report {
        mean_window_today_days: mean_today,
        mean_window_all_rsf_days: mean_rsf,
        rows,
    });
}
