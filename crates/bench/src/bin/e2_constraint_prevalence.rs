//! E2 — pre-emptive constraint prevalence (paper §5.1).
//!
//! The paper's measurement (NSS roots as of 2022-07-19; intermediates
//! from Nimbus2022/Argon2022/Argon2023/Xenon2023 non-expired as of
//! 2022-08-02): 140 roots — 0 name-constrained, 5 path-length; 776
//! intermediates — 701 path-length, 31 name-constrained; 6 roots in at
//! least one chain with a name-constrained intermediate.
//!
//! This binary generates the calibrated corpus and **re-derives** the
//! table by scanning certificates (issuer resolution by name matching),
//! then prints paper-vs-measured.

use nrslb_bench::{header, maybe_write_json, scale};
use nrslb_ctlog::{Corpus, CorpusConfig};
use nrslb_preemptive::scan::{scan_constraints, ConstraintPrevalence};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    metric: &'static str,
    paper: usize,
    measured: usize,
}

#[derive(Serialize)]
struct Report {
    rows: Vec<Row>,
}

fn main() {
    header(
        "E2",
        "constraint prevalence in roots and intermediates",
        "paper §5.1 measurement, July/August 2022",
    );
    let n = scale(50_000);
    println!("generating paper-calibrated corpus ({n} leaves)...");
    let corpus = Corpus::generate(CorpusConfig::paper_2022(n));
    let got = scan_constraints(&corpus.roots, &corpus.intermediates);
    let paper = ConstraintPrevalence::paper_reported();

    let rows = vec![
        Row {
            metric: "roots total",
            paper: paper.n_roots,
            measured: got.n_roots,
        },
        Row {
            metric: "roots with name constraints",
            paper: paper.roots_name_constrained,
            measured: got.roots_name_constrained,
        },
        Row {
            metric: "roots with path-length constraint",
            paper: paper.roots_path_len,
            measured: got.roots_path_len,
        },
        Row {
            metric: "intermediates total",
            paper: paper.n_intermediates,
            measured: got.n_intermediates,
        },
        Row {
            metric: "intermediates with path-length constraint",
            paper: paper.ints_path_len,
            measured: got.ints_path_len,
        },
        Row {
            metric: "intermediates with name constraints",
            paper: paper.ints_name_constrained,
            measured: got.ints_name_constrained,
        },
        Row {
            metric: "roots in >=1 chain with NC intermediate",
            paper: paper.roots_with_nc_chain,
            measured: got.roots_with_nc_chain,
        },
    ];
    println!("{:<45} {:>8} {:>10}", "metric", "paper", "measured");
    for row in &rows {
        println!("{:<45} {:>8} {:>10}", row.metric, row.paper, row.measured);
    }
    let ok = rows.iter().all(|r| r.paper == r.measured);
    println!(
        "\nscan {} the paper's reported table",
        if ok { "REPRODUCES" } else { "DIVERGES FROM" }
    );
    maybe_write_json(&Report { rows });
}
