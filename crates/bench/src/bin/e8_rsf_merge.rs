//! E8 — RSF merging and conflict flagging (paper §4).
//!
//! Re-creates the Amazon Linux episode Ma et al. report: a derivative
//! re-added 16 root certificates after NSS had explicitly removed them.
//! The merge must flag all 16 as conflicts (primary-distrusted vs
//! derivative-trusted) under either resolution policy.

use nrslb_bench::{header, maybe_write_json};
use nrslb_rootstore::{RootStore, TrustStatus};
use nrslb_rsf::merge::MergePolicy;
use nrslb_rsf::merge_stores;
use nrslb_x509::builder::{CaKey, CertificateBuilder};
use nrslb_x509::DistinguishedName;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    removed_by_primary: usize,
    readded_by_derivative: usize,
    conflicts_flagged_primary_wins: usize,
    conflicts_flagged_derivative_wins: usize,
    merged_trusted_primary_wins: usize,
    merged_trusted_derivative_wins: usize,
}

fn make_root(i: usize) -> nrslb_x509::Certificate {
    let key = CaKey::from_seed(
        DistinguishedName::common_name(&format!("E8 Root {i:02}")),
        {
            let mut seed = [0xa5u8; 32];
            seed[0] = i as u8;
            seed
        },
        4,
    )
    .unwrap();
    CertificateBuilder::new()
        .validity_window(0, 4_000_000_000)
        .ca(None)
        .build_self_signed(&key)
        .unwrap()
}

fn main() {
    header(
        "E8",
        "RSF merge: Amazon Linux re-adding NSS-removed roots",
        "paper §4 (16 roots re-added after explicit NSS removal)",
    );
    const N_SHARED: usize = 10;
    const N_REMOVED: usize = 16;

    println!("building stores ({N_SHARED} shared roots, {N_REMOVED} removed/re-added)...");
    let shared: Vec<_> = (0..N_SHARED).map(make_root).collect();
    let contested: Vec<_> = (N_SHARED..N_SHARED + N_REMOVED).map(make_root).collect();

    let mut primary = RootStore::new("nss");
    for cert in &shared {
        primary.add_trusted(cert.clone()).unwrap();
    }
    for cert in &contested {
        primary.distrust(cert.fingerprint(), "removed after incident review");
    }

    let mut derivative = RootStore::new("amazon-linux");
    for cert in shared.iter().chain(&contested) {
        derivative.add_trusted(cert.clone()).unwrap();
    }

    let pw = merge_stores("merged-pw", &primary, &derivative, MergePolicy::PrimaryWins);
    let dw = merge_stores(
        "merged-dw",
        &primary,
        &derivative,
        MergePolicy::DerivativeWins,
    );

    println!(
        "\nconflicts flagged (primary-wins policy):    {}",
        pw.conflicts.len()
    );
    println!(
        "conflicts flagged (derivative-wins policy): {}",
        dw.conflicts.len()
    );
    println!(
        "merged trusted set (primary wins):          {}",
        pw.merged.len()
    );
    println!(
        "merged trusted set (derivative wins):       {}",
        dw.merged.len()
    );
    let pw_distrusted = contested
        .iter()
        .filter(|c| pw.merged.status(&c.fingerprint()) == TrustStatus::Distrusted)
        .count();
    println!("contested roots distrusted after primary-wins merge: {pw_distrusted}/{N_REMOVED}");
    println!("\npaper shape: the attempted merge flags an issue to the operator");
    println!("for every root in the primary's distrusted set but the");
    println!("derivative's trusted set — conflicts are never silent.");

    assert_eq!(pw.conflicts.len(), N_REMOVED);
    assert_eq!(dw.conflicts.len(), N_REMOVED);
    maybe_write_json(&Report {
        removed_by_primary: N_REMOVED,
        readded_by_derivative: N_REMOVED,
        conflicts_flagged_primary_wins: pw.conflicts.len(),
        conflicts_flagged_derivative_wins: dw.conflicts.len(),
        merged_trusted_primary_wins: pw.merged.len(),
        merged_trusted_derivative_wins: dw.merged.len(),
    });
}
