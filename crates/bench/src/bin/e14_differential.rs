//! E14 — differential validation oracle over the deterministic
//! ecosystem simulation (DESIGN.md "Deterministic simulation +
//! differential harness").
//!
//! Steps a seeded miniature ecosystem (primary + heterogeneous
//! subscribers behind lossy channels) while cross-checking every drawn
//! `(chain, GCC, usage)` sample along independent paths: compiled vs
//! naive Datalog, cached vs cold sessions, primary vs replica stores.
//! Exits non-zero on any oracle disagreement, printing the failing
//! seed. Seed override: `NRSLB_SIM_SEED` (decimal or `0x…`).

use nrslb_bench::{header, maybe_write_json, scale, Timer};
use nrslb_sim::{run_differential, seed_from_env, DifferentialConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    seed: u64,
    events: u64,
    samples: u64,
    gcc_checks: u64,
    cache_checks: u64,
    store_checks: u64,
    delta_checks: u64,
    excused_divergences: u64,
    disagreements: u64,
    secs: f64,
}

fn main() {
    header(
        "E14",
        "differential oracle: every validation path must agree",
        "DESIGN.md (deterministic simulation harness)",
    );
    let config = DifferentialConfig {
        seed: seed_from_env(0xd1ff),
        min_gcc_checks: 1_000,
        min_delta_checks: 1_000,
        max_events: scale(260) as u64,
        // Ecosystem events (publishes, polls) pay for hash-based
        // signatures; dense sampling reaches the check floor with fewer
        // of them, keeping the CI smoke fast.
        samples_per_event: 6,
        ..DifferentialConfig::default()
    };
    println!("seed: {} (override with NRSLB_SIM_SEED)", config.seed);
    let timer = Timer::start();
    let outcome = run_differential(&config);
    let secs = timer.secs();
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>13}",
        "events",
        "samples",
        "gcc checks",
        "cache checks",
        "store checks",
        "delta checks",
        "excused",
        "disagreements"
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>13}",
        outcome.events,
        outcome.samples,
        outcome.gcc_checks,
        outcome.cache_checks,
        outcome.store_checks,
        outcome.delta_checks,
        outcome.excused_divergences,
        outcome.disagreements.len(),
    );
    println!(
        "\n{} cross-path checks in {:.2}s; replica divergence only where the",
        outcome.gcc_checks + outcome.cache_checks + outcome.store_checks + outcome.delta_checks,
        secs
    );
    println!("engine itself announced staleness or quarantine.");
    maybe_write_json(&Report {
        seed: outcome.seed,
        events: outcome.events,
        samples: outcome.samples,
        gcc_checks: outcome.gcc_checks,
        cache_checks: outcome.cache_checks,
        store_checks: outcome.store_checks,
        delta_checks: outcome.delta_checks,
        excused_divergences: outcome.excused_divergences,
        disagreements: outcome.disagreements.len() as u64,
        secs,
    });
    assert!(
        outcome.gcc_checks >= config.min_gcc_checks,
        "smoke run must reach {} gcc checks, got {}",
        config.min_gcc_checks,
        outcome.gcc_checks
    );
    assert!(
        outcome.delta_checks >= config.min_delta_checks,
        "smoke run must reach {} incremental maintenance checks, got {}",
        config.min_delta_checks,
        outcome.delta_checks
    );
    // Panics with the replayable NRSLB_SIM_SEED line on disagreement.
    outcome.assert_agreement();
}
