//! E20 — quorum-witnessed feeds (paper §4: the coordinating body as a
//! single point of compromise, replaced by a k-of-n signer set).
//!
//! Two measurements:
//!
//! 1. **Warm-path overhead** — idle re-polls and delta catch-up against
//!    a quorum-governed feed, measured back-to-back against the
//!    single-signer ablation arm in the same process. The warm
//!    (content-unchanged) poll must stay within 5% of single-signer;
//!    the delta path reports the full cost of checkpoint witnessing.
//! 2. **Compromised-minority soundness** — the ecosystem simulation
//!    stages >= 200 forged-checkpoint presentations from an attacker
//!    holding `k-1` signers; zero may be accepted. On violation the
//!    failing `NRSLB_SIM_SEED` is printed for replay.
//!
//! `NRSLB_E20_ASSERT=1` turns both claims into hard assertions.

use nrslb_bench::{header, maybe_write_json, scale, Timer};
use nrslb_crypto::sha256::sha256;
use nrslb_rootstore::RootStore;
use nrslb_rsf::{
    CoordinatorKey, FeedKey, FeedPublisher, FeedTrust, QuorumAuthority, QuorumConfig, Subscriber,
};
use nrslb_sim::differential::seed_from_env;
use nrslb_sim::ecosystem::{Ecosystem, EcosystemConfig, MinorityAttack, SubscriberSpec};
use nrslb_x509::testutil::simple_chain;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    warm_polls: usize,
    warm_single_polls_per_s: f64,
    warm_quorum_polls_per_s: f64,
    warm_overhead_ratio: f64,
    delta_rounds: usize,
    delta_single_syncs_per_s: f64,
    delta_quorum_syncs_per_s: f64,
    delta_overhead_ratio: f64,
    sim_seed: u64,
    forged_attempts: u64,
    forged_accepted: u64,
    secs: f64,
}

/// One synced publisher/subscriber pair, single-signer or quorum.
fn pair(quorum: bool) -> (RootStore, FeedPublisher, Subscriber) {
    let mut truth = RootStore::new("primary");
    truth.add_trusted(simple_chain("e20.example").root).unwrap();
    let (publisher, trust) = if quorum {
        let authority =
            QuorumAuthority::from_seed([0xe2; 32], QuorumConfig { k: 3, n: 5 }, 10).unwrap();
        let trust = FeedTrust::quorum(authority.trust());
        let key = FeedKey::new_quorum([0xe3; 32], 12, &authority).unwrap();
        (
            FeedPublisher::new_quorum("primary", key, authority, &truth, 0).unwrap(),
            trust,
        )
    } else {
        let coordinator = CoordinatorKey::from_seed([0xe4; 32], 6).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let key = FeedKey::new([0xe5; 32], 12, &coordinator).unwrap();
        (
            FeedPublisher::new("primary", key, &truth, 0).unwrap(),
            trust,
        )
    };
    let mut publisher = publisher;
    let mut subscriber = Subscriber::builder("derivative", trust).build();
    subscriber.sync(&mut publisher, 0).unwrap();
    (truth, publisher, subscriber)
}

/// Idle re-polls: nothing new to fetch, the checkpoint content is the
/// pinned one — the warm path every derivative store lives on.
fn warm_polls(publisher: &mut FeedPublisher, subscriber: &mut Subscriber, rounds: usize) -> f64 {
    let timer = Timer::start();
    for i in 0..rounds {
        subscriber.sync(publisher, 10 + i as i64).unwrap();
    }
    rounds as f64 / timer.secs()
}

/// Delta catch-up: one published incident per sync, so every round
/// re-verifies a fresh (witnessed, for the quorum arm) checkpoint.
fn delta_syncs(
    truth: &mut RootStore,
    publisher: &mut FeedPublisher,
    subscriber: &mut Subscriber,
    rounds: usize,
) -> f64 {
    let timer = Timer::start();
    for i in 0..rounds {
        truth.distrust(
            sha256(format!("e20-incident-{i}").as_bytes()),
            format!("incident {i}"),
        );
        let t = 1_000 + i as i64;
        publisher.publish(truth, t).unwrap();
        subscriber.sync(publisher, t).unwrap();
    }
    rounds as f64 / timer.secs()
}

fn main() {
    header(
        "E20",
        "quorum-witnessed feeds: warm-path overhead + minority soundness",
        "paper §4 (coordinating body as infrastructure); DESIGN.md §5f",
    );
    let assert_mode = std::env::var("NRSLB_E20_ASSERT").is_ok();
    let warm_rounds = scale(200) * 25;
    let delta_rounds = scale(200);
    let timer = Timer::start();

    let (_, mut single_pub, mut single_sub) = pair(false);
    let (_, mut quorum_pub, mut quorum_sub) = pair(true);
    // Interleave a short warm-up of both arms before timing so neither
    // pays first-touch costs inside its measurement window.
    warm_polls(&mut single_pub, &mut single_sub, warm_rounds / 10);
    warm_polls(&mut quorum_pub, &mut quorum_sub, warm_rounds / 10);

    let warm_single = warm_polls(&mut single_pub, &mut single_sub, warm_rounds);
    let warm_quorum = warm_polls(&mut quorum_pub, &mut quorum_sub, warm_rounds);
    let warm_ratio = warm_single / warm_quorum;
    println!(
        "warm idle polls:      single {warm_single:>12.0}/s   quorum {warm_quorum:>12.0}/s   \
         overhead {:.2}%",
        (warm_ratio - 1.0) * 100.0
    );

    let (mut single_truth, mut single_pub, mut single_sub) = pair(false);
    let (mut quorum_truth, mut quorum_pub, mut quorum_sub) = pair(true);
    let delta_single = delta_syncs(
        &mut single_truth,
        &mut single_pub,
        &mut single_sub,
        delta_rounds,
    );
    let delta_quorum = delta_syncs(
        &mut quorum_truth,
        &mut quorum_pub,
        &mut quorum_sub,
        delta_rounds,
    );
    let delta_ratio = delta_single / delta_quorum;
    println!(
        "delta catch-up syncs: single {delta_single:>12.0}/s   quorum {delta_quorum:>12.0}/s   \
         overhead {:.2}%",
        (delta_ratio - 1.0) * 100.0
    );

    // Compromised-minority soundness through the ecosystem simulation:
    // 100 staged attempts hit a fresh bootstrapping victim AND a pinned
    // fleet member each, i.e. >= 200 forged-checkpoint presentations.
    let sim_seed = seed_from_env(0xe20);
    println!("sim seed: {sim_seed} (override with NRSLB_SIM_SEED)");
    let mut config = EcosystemConfig {
        seed: sim_seed,
        subscribers: vec![
            SubscriberSpec::named("mirror").polling_every(1_800),
            SubscriberSpec::named("laggard").polling_every(14_400),
        ],
        quorum: Some(QuorumConfig { k: 2, n: 3 }),
        ..EcosystemConfig::default()
    };
    config.minority_attack = Some(MinorityAttack {
        at_secs: config.epoch_secs + 6 * 3_600,
        attempts: 100,
    });
    config.rotate_at_secs = Some(config.epoch_secs + 10 * 3_600);
    let mut eco = Ecosystem::new(&config);
    for _ in 0..600 {
        eco.step();
    }
    println!(
        "minority attack:      {} forged presentations, {} accepted",
        eco.forged_attempts(),
        eco.forged_accepted()
    );
    let secs = timer.secs();

    maybe_write_json(&Report {
        warm_polls: warm_rounds,
        warm_single_polls_per_s: warm_single,
        warm_quorum_polls_per_s: warm_quorum,
        warm_overhead_ratio: warm_ratio,
        delta_rounds,
        delta_single_syncs_per_s: delta_single,
        delta_quorum_syncs_per_s: delta_quorum,
        delta_overhead_ratio: delta_ratio,
        sim_seed,
        forged_attempts: eco.forged_attempts(),
        forged_accepted: eco.forged_accepted(),
        secs,
    });

    if assert_mode {
        assert!(
            eco.minority_attack_done() && eco.forged_attempts() >= 200,
            "minority attack must stage >= 200 presentations, got {} \
             (replay with NRSLB_SIM_SEED={sim_seed})",
            eco.forged_attempts()
        );
        assert!(
            eco.forged_accepted() == 0,
            "a k-1 minority forged an accepted checkpoint ({} of {}); \
             replay with NRSLB_SIM_SEED={sim_seed}; recent trace:\n{}",
            eco.forged_accepted(),
            eco.forged_attempts(),
            eco.recent_trace(10).join("\n")
        );
        assert!(
            warm_ratio < 1.05,
            "quorum warm-path overhead must stay < 5%, got {:.2}% \
             ({warm_quorum:.0} vs {warm_single:.0} polls/s)",
            (warm_ratio - 1.0) * 100.0
        );
        println!("assertions passed (NRSLB_E20_ASSERT=1)");
    }
}
