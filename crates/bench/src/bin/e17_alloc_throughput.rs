//! E17 — allocation budget and throughput of the interned verdict path.
//!
//! The interned-symbol Datalog core exists to make the warm verdict
//! path allocation-free: facts, joins, and derived tuples are `u32`
//! symbol ids in reusable scratch arenas, so a warm cache-miss
//! evaluation should touch the heap zero times. This binary *observes
//! the allocator* (a counting [`std::alloc::GlobalAlloc`] wrapper, see
//! [`nrslb_bench::alloc`]) rather than inferring from timings:
//!
//! 1. **Allocation budget**: bytes and allocations per verdict, cold
//!    (fresh session: fact conversion + first evaluation) vs warm (held
//!    session re-evaluating through its scratch arena) vs the
//!    string-path reference evaluator (the pre-interning ablation).
//! 2. **Interned vs string throughput**: single-threaded verdicts/sec
//!    through the compiled interned engine vs the string reference.
//! 3. **Serving fast path**: bytes per verdict for verdict-cache hits
//!    through [`evaluate_gccs_lazy_into`] with a reused buffer.
//! 4. **Daemon throughput**: warm req/s at 1/2/4/8 keep-alive clients —
//!    the e16 workload rerun on the interned core (parsed-cert cache,
//!    interned facts, shared `Arc<str>` GCC names), compared against
//!    the committed `BENCH_e16.json` baseline when present.
//!
//! `NRSLB_E17_ASSERT=1` turns the warm-path allocation bound into a
//! hard failure (the CI smoke). The JSON report lands in `NRSLB_JSON`,
//! or `BENCH_e17.json` when unset.

use nrslb_bench::alloc::CountingAlloc;
use nrslb_bench::{header, scale, Timer};
use nrslb_core::daemon::{ephemeral_socket_path, Engine, TrustDaemon};
use nrslb_core::session::evaluate_gccs_lazy_into;
use nrslb_core::{Usage, ValidationSession, VerdictCache, DEFAULT_CACHE_SHARDS};
use nrslb_obs::Registry;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::testutil::simple_chain;
use nrslb_x509::Certificate;
use serde::Serialize;
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Same workload shape as E16 so the daemon numbers are comparable:
/// every chain root carries `GCCS_PER_ROOT` distinct GCCs.
const GCCS_PER_ROOT: usize = 12;
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKERS: usize = 8;
const WARM_PASSES: usize = 6;
const TRIALS: usize = 3;
/// Hard ceiling for the CI smoke: the warm cache-miss path must stay
/// under this many bytes of gross allocation per verdict (the design
/// target is zero; the bound leaves room for incidental one-off growth
/// such as a hash table crossing a resize threshold mid-measurement).
const WARM_BYTES_PER_VERDICT_BOUND: f64 = 16.0;

#[derive(Serialize)]
struct AllocRow {
    path: &'static str,
    bytes_per_verdict: f64,
    allocs_per_verdict: f64,
}

#[derive(Serialize)]
struct DaemonRow {
    clients: usize,
    warm_rps: f64,
}

#[derive(Serialize)]
struct Report {
    cpus: usize,
    chains: usize,
    gccs_per_root: usize,
    verdicts_per_pass: usize,
    alloc: Vec<AllocRow>,
    interned_rps: f64,
    string_rps: f64,
    interned_vs_string: f64,
    daemon: Vec<DaemonRow>,
    daemon_warm_rps_at_8: f64,
    e16_baseline_warm_rps_at_8: Option<f64>,
    vs_e16_baseline: Option<f64>,
    warm_bytes_bound: f64,
}

fn build_workload(n_chains: usize) -> (RootStore, Vec<Vec<Certificate>>, Vec<Vec<Gcc>>) {
    let mut store = RootStore::new("e17");
    let mut chains = Vec::with_capacity(n_chains);
    let mut gcc_sets = Vec::with_capacity(n_chains);
    for c in 0..n_chains {
        let pki = simple_chain(&format!("e17-{c}.example"));
        store.add_trusted(pki.root.clone()).unwrap();
        let mut gccs = Vec::with_capacity(GCCS_PER_ROOT);
        for g in 0..GCCS_PER_ROOT {
            let src = format!(
                r#"cutoff{g}(4000000000).
valid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{g}(T), NB < T."#
            );
            let gcc = Gcc::parse(
                &format!("e17-gcc-{g}"),
                pki.root.fingerprint(),
                &src,
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(gcc.clone()).unwrap();
            gccs.push(gcc);
        }
        chains.push(vec![pki.leaf, pki.intermediate, pki.root]);
        gcc_sets.push(gccs);
    }
    (store, chains, gcc_sets)
}

/// Evaluate every GCC of every chain once through held sessions;
/// returns the verdict count (all must accept).
fn sweep(sessions: &[ValidationSession], gcc_sets: &[Vec<Gcc>]) -> usize {
    let mut verdicts = 0;
    for (session, gccs) in sessions.iter().zip(gcc_sets) {
        for gcc in gccs {
            assert!(session.evaluate_gcc(gcc, Usage::Tls).unwrap());
            verdicts += 1;
        }
    }
    verdicts
}

/// The same sweep through the string-path reference evaluator.
fn sweep_string(sessions: &[ValidationSession], gcc_sets: &[Vec<Gcc>]) -> usize {
    let mut verdicts = 0;
    for (session, gccs) in sessions.iter().zip(gcc_sets) {
        for gcc in gccs {
            assert!(session.evaluate_gcc_string(gcc, Usage::Tls).unwrap());
            verdicts += 1;
        }
    }
    verdicts
}

/// Keep-alive clients sweeping the chain set `passes` times; req/s.
fn drive(daemon: &TrustDaemon, chains: &[Vec<Certificate>], clients: usize, passes: usize) -> f64 {
    let total = (clients * passes * chains.len()) as f64;
    let t = Timer::start();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let conn = daemon.keep_alive_client();
            scope.spawn(move || {
                for p in 0..passes {
                    for i in 0..chains.len() {
                        let chain = &chains[(c * 7 + p + i) % chains.len()];
                        let verdicts = conn.evaluate(chain, Usage::Tls).unwrap();
                        assert_eq!(verdicts.len(), GCCS_PER_ROOT);
                    }
                }
            });
        }
    });
    total / t.secs()
}

/// Pull `scaling[clients == 8].warm_rps` out of the committed E16
/// artifact. The vendored `serde_json` shim is serialization-only, so
/// this leans on the artifact's stable pretty-printed field order
/// (`clients` precedes `warm_rps` within each scaling row).
fn e16_baseline_at_8() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_e16.json").ok()?;
    let mut in_row_8 = false;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"clients\":") {
            in_row_8 = rest.trim().trim_end_matches(',') == "8";
        } else if in_row_8 {
            if let Some(rest) = line.strip_prefix("\"warm_rps\":") {
                return rest.trim().trim_end_matches(',').parse().ok();
            }
        }
    }
    None
}

fn main() {
    header(
        "E17",
        "allocation budget + interned-core throughput",
        "§3.1 platform execution (zero-allocation warm verdict path)",
    );
    let assert_mode = std::env::var("NRSLB_E17_ASSERT").is_ok_and(|v| v == "1");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n_chains = scale(32);
    let (store, chains, gcc_sets) = build_workload(n_chains);
    let verdicts_per_pass = n_chains * GCCS_PER_ROOT;
    println!(
        "workload: {n_chains} chains x {GCCS_PER_ROOT} GCCs, {cpus} CPUs, best of {TRIALS} trials"
    );

    // --- 1. Allocation budget (single thread; nothing else running) ---
    // Cold: fresh sessions, first evaluation — fact conversion, scratch
    // growth, symbol interning all land here.
    let before = ALLOC.snapshot();
    let sessions: Vec<ValidationSession> =
        chains.iter().map(|c| ValidationSession::new(c)).collect();
    let cold_verdicts = sweep(&sessions, &gcc_sets);
    let cold = ALLOC.snapshot().since(before);

    // Warm: the same sessions re-evaluating through their scratch
    // arenas. One extra warmup pass first so every arena has reached
    // steady-state capacity.
    sweep(&sessions, &gcc_sets);
    let before = ALLOC.snapshot();
    let t = Timer::start();
    let mut warm_verdicts = 0;
    for _ in 0..WARM_PASSES {
        warm_verdicts += sweep(&sessions, &gcc_sets);
    }
    let interned_secs = t.secs();
    let warm = ALLOC.snapshot().since(before);

    // String ablation: the pre-interning evaluator on the same
    // sessions (naive strings, no scratch reuse). One pass is plenty.
    let before = ALLOC.snapshot();
    let t = Timer::start();
    let string_verdicts = sweep_string(&sessions, &gcc_sets);
    let string_secs = t.secs();
    let string_alloc = ALLOC.snapshot().since(before);

    // Serving fast path: verdict-cache hits into a reused buffer.
    let cache = VerdictCache::new(4096);
    let mut buf = Vec::new();
    for (chain, gccs) in chains.iter().zip(&gcc_sets) {
        evaluate_gccs_lazy_into(chain, gccs, Usage::Tls, &cache, None, &mut buf).unwrap();
    }
    let before = ALLOC.snapshot();
    let mut hit_verdicts = 0;
    for _ in 0..WARM_PASSES {
        for (chain, gccs) in chains.iter().zip(&gcc_sets) {
            evaluate_gccs_lazy_into(chain, gccs, Usage::Tls, &cache, None, &mut buf).unwrap();
            hit_verdicts += buf.len();
        }
    }
    let hits = ALLOC.snapshot().since(before);

    let per = |snap: nrslb_bench::alloc::AllocSnapshot, n: usize| AllocRow {
        path: "",
        bytes_per_verdict: snap.bytes as f64 / n as f64,
        allocs_per_verdict: snap.allocations as f64 / n as f64,
    };
    let mut alloc_rows = vec![
        AllocRow {
            path: "cold (session build + first eval)",
            ..per(cold, cold_verdicts)
        },
        AllocRow {
            path: "warm (scratch-arena re-eval)",
            ..per(warm, warm_verdicts)
        },
        AllocRow {
            path: "warm cache-hit (lazy, reused buffer)",
            ..per(hits, hit_verdicts)
        },
        AllocRow {
            path: "string reference (ablation)",
            ..per(string_alloc, string_verdicts)
        },
    ];
    println!(
        "\n{:>40} {:>16} {:>16}",
        "path", "bytes/verdict", "allocs/verdict"
    );
    for row in &alloc_rows {
        println!(
            "{:>40} {:>16.1} {:>16.3}",
            row.path, row.bytes_per_verdict, row.allocs_per_verdict
        );
    }

    // --- 2. Interned vs string throughput (single thread) ---
    let interned_rps = warm_verdicts as f64 / interned_secs;
    let string_rps = string_verdicts as f64 / string_secs;
    let interned_vs_string = interned_rps / string_rps;
    println!(
        "\nthroughput: interned {interned_rps:.0} verdicts/s, string {string_rps:.0} verdicts/s \
         — {interned_vs_string:.1}x"
    );

    // --- 3. Daemon warm throughput on the interned core ---
    let mut daemon_rows = Vec::new();
    println!("\n{:>8} {:>12}", "clients", "warm r/s");
    for clients in CLIENT_COUNTS {
        // Thread-pool engine: comparable with the E16 baseline row.
        let daemon = TrustDaemon::builder()
            .socket(ephemeral_socket_path(&format!("e17d{clients}")))
            .workers(WORKERS)
            .cache_shards(DEFAULT_CACHE_SHARDS)
            .registry(Arc::new(Registry::new()))
            .engine(Engine::ThreadPool)
            .spawn(store.clone())
            .unwrap();
        drive(&daemon, &chains, clients, 1); // fill the caches
        let mut warm_rps = 0f64;
        for _ in 0..TRIALS {
            warm_rps = warm_rps.max(drive(&daemon, &chains, clients, WARM_PASSES));
        }
        println!("{clients:>8} {warm_rps:>12.0}");
        daemon_rows.push(DaemonRow { clients, warm_rps });
    }
    let at8 = daemon_rows
        .iter()
        .find(|r| r.clients == 8)
        .expect("8-client row")
        .warm_rps;
    let baseline = e16_baseline_at_8();
    let vs_baseline = baseline.map(|b| at8 / b);
    match (baseline, vs_baseline) {
        (Some(b), Some(r)) => println!(
            "\ndaemon at 8 clients: {at8:.0} r/s vs e16 baseline {b:.0} r/s — {r:.2}x \
             (target >= 1.3x)"
        ),
        _ => println!("\ndaemon at 8 clients: {at8:.0} r/s (no BENCH_e16.json baseline found)"),
    }

    // --- Acceptance gate: the warm path is allocation-free ---
    let warm_bytes = alloc_rows[1].bytes_per_verdict;
    println!(
        "gate: warm bytes/verdict {warm_bytes:.2} (bound {WARM_BYTES_PER_VERDICT_BOUND}), \
         cold {:.0}, string {:.0}",
        alloc_rows[0].bytes_per_verdict, alloc_rows[3].bytes_per_verdict
    );
    if assert_mode {
        assert!(
            warm_bytes <= WARM_BYTES_PER_VERDICT_BOUND,
            "warm verdict path allocates: {warm_bytes:.2} bytes/verdict \
             (bound {WARM_BYTES_PER_VERDICT_BOUND})"
        );
        println!("E17 asserts: OK");
    }

    // Short stable labels for the JSON artifact.
    alloc_rows[0].path = "cold";
    alloc_rows[1].path = "warm";
    alloc_rows[2].path = "warm-cache-hit";
    alloc_rows[3].path = "string-reference";
    let report = Report {
        cpus,
        chains: n_chains,
        gccs_per_root: GCCS_PER_ROOT,
        verdicts_per_pass,
        alloc: alloc_rows,
        interned_rps,
        string_rps,
        interned_vs_string,
        daemon: daemon_rows,
        daemon_warm_rps_at_8: at8,
        e16_baseline_warm_rps_at_8: baseline,
        vs_e16_baseline: vs_baseline,
        warm_bytes_bound: WARM_BYTES_PER_VERDICT_BOUND,
    };
    let path = std::env::var("NRSLB_JSON").unwrap_or_else(|_| "BENCH_e17.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| eprintln!("write {path}: {e}"));
    eprintln!("json report written to {path}");
}
