//! E13 — sync resilience under channel faults (DESIGN.md §4 sync state
//! machine; ROADMAP "production-scale" north-star).
//!
//! Sweeps the per-frame fault rate (each of drop / delay / duplicate /
//! truncate / bit-flip applied independently) and measures whether an
//! RSF subscriber driven by `Subscriber::sync_resilient` still
//! converges byte-identically to the publisher's store, and how much
//! retry effort the `SyncPolicy` spends getting there.

use nrslb_bench::{header, maybe_write_json, scale};
use nrslb_sim::{run_fault_simulation, FaultConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    fault_rate: f64,
    seed: u64,
    plan_seed: u64,
    rounds: usize,
    converged: bool,
    converged_rounds: usize,
    attempts: u32,
    retries: u64,
    messages_rejected: u64,
    snapshot_fallbacks: u64,
    backoff_ms_total: u64,
}

#[derive(Serialize)]
struct Report {
    points: Vec<Point>,
}

fn main() {
    header(
        "E13",
        "subscriber convergence through a lossy channel",
        "DESIGN.md §4 (resilient sync engine)",
    );
    let rounds = scale(20);
    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "fault rate", "converged", "rounds ok", "attempts", "retries", "rejected", "backoff ms"
    );
    let mut points = Vec::new();
    for &fault_rate in &[0.0, 0.1, 0.3, 0.5] {
        let out = run_fault_simulation(&FaultConfig {
            fault_rate,
            rounds,
            ..Default::default()
        });
        println!(
            "{:>10.2} {:>10} {:>9}/{:<2} {:>7} {:>9} {:>10} {:>10}",
            out.fault_rate,
            out.converged,
            out.converged_rounds,
            out.rounds,
            out.attempts,
            out.counters.retries,
            out.counters.messages_rejected,
            out.backoff_ms_total,
        );
        assert!(
            out.converged,
            "subscriber must converge at fault rate {fault_rate}"
        );
        points.push(Point {
            fault_rate: out.fault_rate,
            seed: out.seed,
            plan_seed: out.plan_seed,
            rounds: out.rounds,
            converged: out.converged,
            converged_rounds: out.converged_rounds,
            attempts: out.attempts,
            retries: out.counters.retries,
            messages_rejected: out.counters.messages_rejected,
            snapshot_fallbacks: out.counters.snapshot_fallbacks,
            backoff_ms_total: out.backoff_ms_total,
        });
    }
    println!("\nretry + checkpoint verification turn a 50%-fault channel into");
    println!("a slower feed, not a diverged one.");
    maybe_write_json(&Report { points });
}
