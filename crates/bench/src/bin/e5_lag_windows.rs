//! E5 — staleness: vulnerability and incompatibility windows under
//! manual mirroring vs RSF polling (paper §4, Ma et al. lag figures).

use nrslb_bench::{header, maybe_write_json};
use nrslb_sim::{run_lag_simulation, LagConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    derivative: String,
    vulnerability_window_days: f64,
    incompatibility_window_days: f64,
    feed_kib: f64,
}

#[derive(Serialize)]
struct Report {
    horizon_days: u32,
    rows: Vec<Row>,
}

fn main() {
    header(
        "E5",
        "root distrust/addition propagation windows",
        "paper §4 (derivative staleness per Ma et al.; hourly RSF polling)",
    );
    let config = LagConfig::default();
    println!(
        "simulating {} days; distrust event at day {}, addition at day {}\n",
        config.horizon_days, config.distrust_day, config.addition_day
    );
    let out = run_lag_simulation(&config);
    println!(
        "{:<15} {:>18} {:>22} {:>12}",
        "derivative", "vuln window (days)", "incompat window (days)", "feed KiB"
    );
    let mut rows = Vec::new();
    for d in &out.per_derivative {
        println!(
            "{:<15} {:>18.2} {:>22.2} {:>12.1}",
            d.name,
            d.vulnerability_window_days,
            d.incompatibility_window_days,
            d.feed_bytes as f64 / 1024.0
        );
        rows.push(Row {
            derivative: d.name.clone(),
            vulnerability_window_days: d.vulnerability_window_days,
            incompatibility_window_days: d.incompatibility_window_days,
            feed_kib: d.feed_bytes as f64 / 1024.0,
        });
    }
    println!("\npaper shape: manual mirroring leaves windows of weeks-to-months");
    println!("(Android 'several months behind', Amazon Linux ~4 versions stale);");
    println!("hourly RSF polling shrinks both windows below one day.");
    maybe_write_json(&Report {
        horizon_days: config.horizon_days,
        rows,
    });
}
