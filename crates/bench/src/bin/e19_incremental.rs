//! E19 — incremental maintenance vs from-scratch recomputation under
//! publisher churn (DESIGN.md §5e "Incremental maintenance +
//! taint-keyed invalidation").
//!
//! Two axes:
//!
//! * **Serving axis** — an in-process oracle serves verdicts for a
//!   population of chains while a publisher ships one delta per
//!   modeled second (each round = one 1 Hz interval: one feed delta
//!   touching a single root, then one request per chain). The
//!   *scratch* arm reacts to every delta the pre-incremental way —
//!   full taint, whole verdict cache cleared, every chain re-derived —
//!   while the *incremental* arm applies the delta's precise
//!   [`TaintSet`] so only the touched root's verdicts re-derive.
//!   Reported as verdicts/s per arm.
//! * **Micro axis** — the Datalog layer alone: a fixed program
//!   (counting + negation + recursive strata) over a root/GCC/succ
//!   fact base, absorbing single-fact deltas either through
//!   `CompiledProgram::apply_delta` on a persistent database or by
//!   from-scratch re-evaluation of the mutated base. Reported as
//!   deltas/s per arm.
//!
//! `NRSLB_E19_ASSERT=1` turns the acceptance threshold into a hard
//! assertion: the incremental serving arm must deliver at least 2x the
//! scratch arm's verdicts/s. `NRSLB_JSON=<path>` writes the report
//! (the committed `BENCH_e19.json` records a full-scale run).

use nrslb_bench::{header, maybe_write_json, scale, Timer};
use nrslb_core::validate::{GccOracle, InProcessOracle};
use nrslb_core::Usage;
use nrslb_datalog::{
    delta_fact, CompiledProgram, Database, IncrementalState, LayeredDatabase, MaintenancePolicy,
    Program, Val,
};
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::{Delta, TaintSet};
use nrslb_x509::testutil::{simple_chain, SimplePki};
use nrslb_x509::Certificate;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Report {
    roots: usize,
    rounds: usize,
    requests_per_round: usize,
    scratch_verdicts_per_s: f64,
    incremental_verdicts_per_s: f64,
    serving_speedup: f64,
    micro_facts: usize,
    micro_deltas: usize,
    scratch_deltas_per_s: f64,
    incremental_deltas_per_s: f64,
    micro_speedup: f64,
    secs: f64,
}

/// Build a store of `n` roots, each carrying a distinct-source GCC (so
/// taint stays per-root precise), plus the presented chains.
fn population(n: usize) -> (RootStore, Vec<SimplePki>) {
    let mut store = RootStore::new("e19");
    let mut pkis = Vec::with_capacity(n);
    for i in 0..n {
        let pki = simple_chain(&format!("e19-{i}.example"));
        store.add_trusted(pki.root.clone()).expect("add root");
        let src = format!("valid(Chain, _) :- leaf(Chain, _).\nowner(\"{i}\").");
        let gcc = Gcc::parse(
            "e19-policy",
            pki.root.fingerprint(),
            &src,
            GccMetadata::default(),
        )
        .expect("gcc parses");
        store.attach_gcc(gcc).expect("attach");
        pkis.push(pki);
    }
    (store, pkis)
}

/// One publisher round: toggle a marker GCC on root `i` and return the
/// next store plus the delta's precise taint (computed on the
/// pre-image, exactly as `Subscriber` ingest does).
fn publisher_round(
    store: &RootStore,
    pki: &SimplePki,
    i: usize,
    seq: u64,
) -> (RootStore, TaintSet) {
    let mut next = store.clone();
    let marker_src = format!("valid(Chain, _) :- leaf(Chain, _).\nmarker(\"{i}\").");
    let marker = Gcc::parse(
        "e19-marker",
        pki.root.fingerprint(),
        &marker_src,
        GccMetadata::default(),
    )
    .expect("marker parses");
    let marker_hash = marker.source_hash();
    if !next.detach_gcc(&pki.root.fingerprint(), &marker_hash) {
        next.attach_gcc(marker).expect("attach marker");
    }
    let delta = Delta::between(store, &next, seq, seq + 1, seq as i64);
    let taint = TaintSet::of_delta(&delta, store);
    (next, taint)
}

/// Drive one serving arm: per round, absorb the publisher delta with
/// the arm's invalidation policy, then serve one request per chain.
/// Returns verdicts served per second.
fn serve(
    store: &RootStore,
    pkis: &[SimplePki],
    chains: &[Vec<Certificate>],
    rounds: usize,
    full_clear: bool,
) -> f64 {
    let oracle = InProcessOracle::new(store.clone());
    // Cold fill outside the measured window: both arms start warm.
    for chain in chains {
        oracle.evaluate(chain, Usage::Tls).expect("cold fill");
    }
    let mut served = 0usize;
    let timer = Timer::start();
    for round in 0..rounds {
        let i = round % pkis.len();
        let (next, taint) = publisher_round(&oracle.store(), &pkis[i], i, round as u64);
        let taint = if full_clear { TaintSet::full() } else { taint };
        oracle.absorb_update(next, &taint);
        for chain in chains {
            let verdicts = oracle.evaluate(chain, Usage::Tls).expect("serve");
            assert!(
                verdicts.iter().any(|v| v.accepted),
                "population chain rejected"
            );
            served += 1;
        }
    }
    served as f64 / timer.secs()
}

const MICRO_PROGRAM: &str = "governed(R) :- root(R), gcc(R, _).\n\
     bare(R) :- root(R), \\+governed(R).\n\
     reach(R) :- governed(R).\n\
     reach(B) :- reach(A), succ(A, B).\n";

/// `succ` edges stay within blocks of this many roots, so a delta's
/// recursive blast radius is one block — the representative shape: a
/// feed delta perturbs one root's neighborhood, not the whole store.
const MICRO_BLOCK: usize = 8;

fn micro_base(facts: usize) -> Database {
    let mut base = Database::new();
    for i in 0..facts {
        base.add_fact("root", vec![Val::str(format!("r{i:04}"))]);
        if i % 2 == 0 {
            base.add_fact(
                "gcc",
                vec![Val::str(format!("r{i:04}")), Val::str(format!("h{i:04}"))],
            );
        }
        if i + 1 < facts && (i + 1) % MICRO_BLOCK != 0 {
            base.add_fact(
                "succ",
                vec![
                    Val::str(format!("r{i:04}")),
                    Val::str(format!("r{:04}", i + 1)),
                ],
            );
        }
    }
    base
}

/// The single-fact delta stream: toggle root `i % facts`'s GCC fact.
fn micro_step(i: usize, facts: usize) -> (String, Vec<Val>) {
    let r = i % facts;
    (
        "gcc".to_string(),
        vec![Val::str(format!("r{r:04}")), Val::str(format!("h{r:04}"))],
    )
}

fn main() {
    header(
        "E19",
        "incremental maintenance vs from-scratch recomputation",
        "DESIGN.md §5e (incremental maintenance + taint-keyed invalidation)",
    );
    let assert_mode = std::env::var("NRSLB_E19_ASSERT").is_ok_and(|v| v == "1");
    let roots = scale(24);
    let rounds = (scale(24) * 4).max(8);
    let timer = Timer::start();

    let (store, pkis) = population(roots);
    let chains: Vec<Vec<Certificate>> = pkis
        .iter()
        .map(|p| vec![p.leaf.clone(), p.intermediate.clone(), p.root.clone()])
        .collect();

    let scratch_vps = serve(&store, &pkis, &chains, rounds, true);
    let incremental_vps = serve(&store, &pkis, &chains, rounds, false);
    let serving_speedup = incremental_vps / scratch_vps;

    println!(
        "serving axis ({} roots, {} rounds, {} requests/round — one 1 Hz delta per round):",
        roots,
        rounds,
        chains.len()
    );
    println!(
        "{:>14} {:>16} {:>9}",
        "scratch v/s", "incremental v/s", "speedup"
    );
    println!(
        "{:>14.0} {:>16.0} {:>8.1}x",
        scratch_vps, incremental_vps, serving_speedup
    );

    // --- Micro axis ---
    let micro_facts = scale(24) * 8;
    let micro_deltas = (scale(24) * 16).max(64);
    let program = CompiledProgram::compile(&Program::parse(MICRO_PROGRAM).expect("parses"))
        .expect("compiles");

    // Scratch arm: mutate the base, re-evaluate everything.
    let mut base = micro_base(micro_facts);
    let micro_timer = Timer::start();
    for i in 0..micro_deltas {
        let (pred, tuple) = micro_step(i, micro_facts);
        if !base.remove_fact(&pred, &tuple) {
            base.add_fact(&pred, tuple);
        }
        program
            .evaluate(Arc::new(base.clone()))
            .expect("scratch evaluation");
    }
    let scratch_dps = micro_deltas as f64 / micro_timer.secs();

    // Incremental arm: one persistent database, per-fact deltas.
    let mut db = LayeredDatabase::new(Arc::new(micro_base(micro_facts)));
    let mut state = IncrementalState::new(MaintenancePolicy::Auto);
    program
        .apply_delta(&mut db, &mut state, &[], &[])
        .expect("baseline");
    let micro_timer = Timer::start();
    for i in 0..micro_deltas {
        let (pred, tuple) = micro_step(i, micro_facts);
        let fact = [delta_fact(&pred, &tuple)];
        let out = if db.contains(&pred, &tuple) {
            program.apply_delta(&mut db, &mut state, &[], &fact)
        } else {
            program.apply_delta(&mut db, &mut state, &fact, &[])
        };
        out.expect("incremental delta");
    }
    let incremental_dps = micro_deltas as f64 / micro_timer.secs();
    let micro_speedup = incremental_dps / scratch_dps;

    println!("\nmicro axis ({micro_facts} root facts, {micro_deltas} single-fact deltas):");
    println!(
        "{:>14} {:>16} {:>9}",
        "scratch d/s", "incremental d/s", "speedup"
    );
    println!(
        "{:>14.0} {:>16.0} {:>8.1}x",
        scratch_dps, incremental_dps, micro_speedup
    );

    let secs = timer.secs();
    println!(
        "\nprecise taint keeps {}/{} verdicts warm across each delta; full\n\
         clearing re-derives all of them ({:.1}x serving advantage in {:.2}s).",
        chains.len() - 1,
        chains.len(),
        serving_speedup,
        secs
    );

    maybe_write_json(&Report {
        roots,
        rounds,
        requests_per_round: chains.len(),
        scratch_verdicts_per_s: scratch_vps,
        incremental_verdicts_per_s: incremental_vps,
        serving_speedup,
        micro_facts,
        micro_deltas,
        scratch_deltas_per_s: scratch_dps,
        incremental_deltas_per_s: incremental_dps,
        micro_speedup,
        secs,
    });

    if assert_mode {
        assert!(
            serving_speedup >= 2.0,
            "incremental serving must be >= 2x scratch, got {serving_speedup:.2}x \
             ({incremental_vps:.0} vs {scratch_vps:.0} verdicts/s)"
        );
        assert!(
            micro_speedup >= 1.0,
            "incremental maintenance must not lose to scratch at the Datalog layer, \
             got {micro_speedup:.2}x"
        );
        println!("assertions passed (NRSLB_E19_ASSERT=1)");
    }
}
