//! E9 — the incident × strategy matrix (paper §2.2–§2.3).
//!
//! For each of the seven historical incidents, evaluate the three
//! derivative strategies. The paper's argument holds when, for every
//! incident, binary-keep is vulnerable, binary-remove causes collateral
//! denial of service, and only the GCC matches the primary.

use nrslb_bench::{header, maybe_write_json};
use nrslb_incidents::{all_incidents, evaluate_scenario, DerivativeStrategy};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    incident: &'static str,
    year: u16,
    strategy: String,
    vulnerable: bool,
    denial_of_service: bool,
    matches_primary: bool,
}

fn main() {
    header(
        "E9",
        "seven incidents x three derivative strategies",
        "paper §2.2 (incident review) and §2.3 (derivative dilemma)",
    );
    let mut cells = Vec::new();
    println!(
        "{:<12} {:<6} {:<15} {:>11} {:>6} {:>9}",
        "incident", "year", "strategy", "vulnerable", "DoS", "matches"
    );
    let mut gcc_matches_everywhere = true;
    for spec in all_incidents() {
        let scenario = (spec.build)();
        for strategy in [
            DerivativeStrategy::BinaryKeep,
            DerivativeStrategy::BinaryRemove,
            DerivativeStrategy::Gcc,
        ] {
            let stats = evaluate_scenario(&scenario, strategy);
            if strategy == DerivativeStrategy::Gcc {
                gcc_matches_everywhere &= stats.matches_primary();
            }
            println!(
                "{:<12} {:<6} {:<15} {:>11} {:>6} {:>9}",
                spec.id,
                spec.year,
                strategy.to_string(),
                stats.vulnerable(),
                stats.denial_of_service(),
                stats.matches_primary()
            );
            cells.push(Cell {
                incident: spec.id,
                year: spec.year,
                strategy: strategy.to_string(),
                vulnerable: stats.vulnerable(),
                denial_of_service: stats.denial_of_service(),
                matches_primary: stats.matches_primary(),
            });
        }
    }
    println!("\nincident details:");
    for spec in all_incidents() {
        println!("  {} ({}): {}", spec.id, spec.year, spec.description);
        println!("      response: {}", spec.response);
    }
    println!("\nGCC strategy matches the primary on all seven incidents: {gcc_matches_everywhere}");
    maybe_write_json(&cells);
}
