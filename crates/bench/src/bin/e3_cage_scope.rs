//! E3 — scope-of-issuance inference, the CAge CDF and pre-emptive GCC
//! enforcement (paper §5.2).
//!
//! Three parts:
//!
//! 1. the CAge observation — "90% of CAs sign certificates for ≤ 10
//!    different TLDs" — measured on the corpus (ground truth and
//!    CT-observed);
//! 2. enforcement: scopes trained on the first half of the issuance
//!    window, enforced on the second half (false-positive rate on
//!    legitimate issuance) and on injected out-of-scope mis-issuance
//!    (detection rate), for both CAge (names only) and full pre-emptive
//!    GCCs;
//! 3. the differential case the paper highlights: mis-issuance that is
//!    *in scope by name* but out of scope on another field, which CAge
//!    cannot catch.

use nrslb_bench::{header, maybe_write_json, scale};
use nrslb_core::{evaluate_gcc, Usage};
use nrslb_ctlog::{Corpus, CorpusConfig};
use nrslb_preemptive::cage::CageModel;
use nrslb_preemptive::gccgen::{generate_cage_gcc, generate_preemptive_gcc};
use nrslb_preemptive::scope::{infer_scopes, tld_cdf_at};
use nrslb_x509::{CertificateBuilder, DistinguishedName};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    leaves: usize,
    paper_cdf_at_10: f64,
    truth_cdf_at_10: f64,
    observed_cdf_at_10: f64,
    cage_false_positive_rate: f64,
    preemptive_false_positive_rate: f64,
    cage_name_attack_detection: f64,
    preemptive_name_attack_detection: f64,
    cage_field_attack_detection: f64,
    preemptive_field_attack_detection: f64,
}

fn main() {
    header(
        "E3",
        "CAge TLD scopes and pre-emptive GCC enforcement",
        "paper §5.2 (CAge: 90% of CAs sign for <= 10 TLDs)",
    );
    let n = scale(100_000);
    println!("generating corpus ({n} leaves)...");
    let corpus = Corpus::generate(CorpusConfig::paper_2022(n));

    // Part 1: the CDF.
    let truth = corpus.int_scopes.iter().filter(|s| s.len() <= 10).count() as f64
        / corpus.int_scopes.len() as f64;
    let scopes_all = infer_scopes(&corpus.leaves);
    let observed = tld_cdf_at(&scopes_all, 10);
    println!("\nCAge CDF at k=10 TLDs:");
    println!("  paper claim:        0.90");
    println!("  corpus ground truth: {truth:.3}");
    println!("  CT-observed:         {observed:.3}");

    // Part 2: train on the first half of the window, test on the second.
    let mid = (corpus.config.issuance_window.0 + corpus.config.issuance_window.1) / 2;
    let train: Vec<_> = corpus
        .leaves
        .iter()
        .filter(|l| l.validity().not_before < mid)
        .cloned()
        .collect();
    let scopes = infer_scopes(&train);
    let cage_model = CageModel::train(&scopes);

    // Generated GCCs per intermediate (attached to its root's hash).
    let mut cage_fp = 0usize;
    let mut pre_fp = 0usize;
    let mut tested = 0usize;
    for (i, leaf) in corpus.leaves.iter().enumerate() {
        if leaf.validity().not_before < mid {
            continue;
        }
        let issuer = leaf.issuer().to_string();
        let Some(scope) = scopes.get(&issuer) else {
            continue; // CA unseen in training: excluded from FP measurement
        };
        tested += 1;
        if !cage_model.accepts(leaf) {
            cage_fp += 1;
        }
        if !scope.contains(leaf) {
            pre_fp += 1;
        }
        let _ = i;
    }
    let cage_fp_rate = cage_fp as f64 / tested.max(1) as f64;
    let pre_fp_rate = pre_fp as f64 / tested.max(1) as f64;
    println!("\nenforcement on held-out legitimate issuance ({tested} leaves):");
    println!("  CAge false positives:        {cage_fp_rate:.4}");
    println!("  pre-emptive false positives: {pre_fp_rate:.4}");

    // Part 3: attacks. Name attacks: never-seen TLD. Field attacks:
    // in-scope TLD but 20-year lifetime.
    let mut cage_name_det = 0usize;
    let mut pre_name_det = 0usize;
    let mut cage_field_det = 0usize;
    let mut pre_field_det = 0usize;
    let mut attacks = 0usize;
    let busiest: Vec<usize> = {
        let mut counts = vec![0usize; corpus.intermediates.len()];
        for &ca in &corpus.leaf_issuer {
            counts[ca] += 1;
        }
        let mut idx: Vec<usize> = (0..counts.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        idx.into_iter().take(20).collect()
    };
    for &ca in &busiest {
        let int = &corpus.intermediates[ca];
        let issuer = int.subject().to_string();
        let Some(scope) = scopes.get(&issuer) else {
            continue;
        };
        let root = &corpus.roots[corpus.int_issuer[ca]];
        let cage_gcc = generate_cage_gcc("cage", root.fingerprint(), scope, 0).unwrap();
        let pre_gcc = generate_preemptive_gcc("pre", root.fingerprint(), scope, 0).unwrap();
        attacks += 1;

        // Name attack.
        let name_attack = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("bank.evil"))
            .dns_names(&["login.bank.neverseen"])
            .validity_window(mid, mid + 90 * 86_400)
            .build_unsigned(int.subject().clone())
            .unwrap();
        let chain = vec![name_attack, int.clone(), root.clone()];
        if !evaluate_gcc(&cage_gcc, &chain, Usage::Tls).unwrap() {
            cage_name_det += 1;
        }
        if !evaluate_gcc(&pre_gcc, &chain, Usage::Tls).unwrap() {
            pre_name_det += 1;
        }

        // Field attack: in-scope TLD, 20-year lifetime.
        let in_tld = scope.tlds.iter().next().unwrap().clone();
        let field_attack = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("sneaky"))
            .dns_names(&[&format!("sneaky.{in_tld}")])
            .validity_window(mid, mid + 20 * 365 * 86_400)
            .key_usage(nrslb_x509::KeyUsage::DIGITAL_SIGNATURE)
            .extended_key_usage(nrslb_x509::ExtendedKeyUsage::server_auth())
            .build_unsigned(int.subject().clone())
            .unwrap();
        let chain = vec![field_attack, int.clone(), root.clone()];
        if !evaluate_gcc(&cage_gcc, &chain, Usage::Tls).unwrap() {
            cage_field_det += 1;
        }
        if !evaluate_gcc(&pre_gcc, &chain, Usage::Tls).unwrap() {
            pre_field_det += 1;
        }
    }
    let rate = |d: usize| d as f64 / attacks.max(1) as f64;
    println!("\nattack detection over {attacks} CAs:");
    println!(
        "  name-based mis-issuance:  CAge {:.2}, pre-emptive {:.2}",
        rate(cage_name_det),
        rate(pre_name_det)
    );
    println!(
        "  field-based mis-issuance: CAge {:.2}, pre-emptive {:.2}",
        rate(cage_field_det),
        rate(pre_field_det)
    );
    println!("\n(the field-based row is the paper's advantage claim: GCCs can");
    println!(" constrain any field, CAge only names)");

    maybe_write_json(&Report {
        leaves: n,
        paper_cdf_at_10: 0.90,
        truth_cdf_at_10: truth,
        observed_cdf_at_10: observed,
        cage_false_positive_rate: cage_fp_rate,
        preemptive_false_positive_rate: pre_fp_rate,
        cage_name_attack_detection: rate(cage_name_det),
        preemptive_name_attack_detection: rate(pre_name_det),
        cage_field_attack_detection: rate(cage_field_det),
        preemptive_field_attack_detection: rate(pre_field_det),
    });
}
