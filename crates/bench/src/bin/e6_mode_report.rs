//! E6 (report form) — median validation latency by GCC count and by
//! deployment mode, in one table (the criterion bench
//! `e6_validation_overhead` has the statistically careful version).

use nrslb_bench::{header, maybe_write_json, Timer};
use nrslb_core::daemon::{ephemeral_socket_path, TrustDaemon};
use nrslb_core::{Usage, ValidationMode, Validator};
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::testutil::simple_chain;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    configuration: String,
    median_us: f64,
}

fn median_us(mut run: impl FnMut()) -> f64 {
    const N: usize = 60;
    let mut samples = Vec::with_capacity(N);
    for _ in 0..N {
        let t = Timer::start();
        run();
        samples.push(t.secs() * 1e6);
    }
    samples.sort_by(f64::total_cmp);
    samples[N / 2]
}

fn store_with_gccs(
    n: usize,
) -> (
    RootStore,
    nrslb_x509::Certificate,
    Vec<nrslb_x509::Certificate>,
    i64,
) {
    let pki = simple_chain("e6.example");
    let mut store = RootStore::new("bench");
    store.add_trusted(pki.root.clone()).unwrap();
    for i in 0..n {
        let src = format!(
            "cutoff{i}(4000000000).\nvalid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff{i}(T), NB < T."
        );
        store
            .attach_gcc(
                Gcc::parse(
                    &format!("g{i}"),
                    pki.root.fingerprint(),
                    &src,
                    GccMetadata::default(),
                )
                .unwrap(),
            )
            .unwrap();
    }
    (store, pki.leaf, vec![pki.intermediate], pki.now)
}

fn main() {
    header(
        "E6",
        "validation latency by GCC count and deployment mode",
        "paper §3.1 (GCC execution cost; user-agent vs platform vs redesign)",
    );
    let mut rows = Vec::new();
    println!("{:<36} {:>12}", "configuration", "median (us)");
    let mut report = |label: String, us: f64| {
        println!("{label:<36} {us:>12.1}");
        rows.push(Row {
            configuration: label,
            median_us: us,
        });
    };

    for n in [0usize, 1, 2, 4, 8] {
        let (store, leaf, pool, now) = store_with_gccs(n);
        let v = Validator::new(store, ValidationMode::UserAgent);
        let us = median_us(|| {
            assert!(v
                .validate(&leaf, &pool, Usage::Tls, now)
                .unwrap()
                .accepted());
        });
        report(format!("user-agent, {n} GCC(s)"), us);
    }

    let (store, leaf, pool, now) = store_with_gccs(2);
    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path("e6report"))
        .spawn(store.clone())
        .unwrap();
    let platform = Validator::new(
        store.clone(),
        ValidationMode::Platform(Arc::new(daemon.client())),
    );
    let us = median_us(|| {
        assert!(platform
            .validate(&leaf, &pool, Usage::Tls, now)
            .unwrap()
            .accepted());
    });
    report("platform daemon (IPC), 2 GCCs".into(), us);

    let hammurabi = Validator::new(store, ValidationMode::Hammurabi);
    let us = median_us(|| {
        assert!(hammurabi
            .validate(&leaf, &pool, Usage::Tls, now)
            .unwrap()
            .accepted());
    });
    report("hammurabi (full Datalog), 2 GCCs".into(), us);

    println!("\nshape: each GCC adds one fact conversion + a small Datalog run;");
    println!("IPC adds a socket round trip; the full-Datalog redesign pays one");
    println!("larger evaluation that subsumes all standard checks.");
    maybe_write_json(&rows);
}
