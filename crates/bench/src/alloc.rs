//! A counting global allocator for allocation-budget experiments.
//!
//! E17's claim is *zero steady-state heap allocations* on the warm
//! verdict path, so the harness needs to observe the allocator itself
//! rather than infer from timings. [`CountingAlloc`] wraps the system
//! allocator and counts every allocation (count and bytes) in relaxed
//! atomics; a benchmark binary installs it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: nrslb_bench::alloc::CountingAlloc = nrslb_bench::alloc::CountingAlloc::new();
//! ```
//!
//! and brackets the measured region with [`CountingAlloc::snapshot`].
//! Counters are process-global: measure on a single thread with no
//! concurrent threads allocating, or the delta attributes their
//! allocations to the measured region.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that counts allocations through to [`System`].
///
/// Only allocation events are counted (`alloc`, `alloc_zeroed`, and the
/// growth side of `realloc`) — frees are not subtracted, so the delta
/// between two [`snapshot`](CountingAlloc::snapshot)s is the gross
/// allocation traffic of the region, which is the quantity a
/// zero-allocation claim is about (a region that allocates and frees
/// per iteration still churns the allocator).
pub struct CountingAlloc {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

/// Counter values at one point in time; subtract two to get a region's
/// allocation traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events so far.
    pub allocations: u64,
    /// Bytes requested so far.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Traffic between `earlier` and `self` (saturating, so a stale
    /// pair never panics).
    pub fn since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

impl CountingAlloc {
    /// A fresh counter (const, so it can be a `static`).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocations: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    fn count(&self, bytes: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation unchanged to `System`; the counters
// are side-effect-only and never influence the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count the grown portion only: a shrink returns memory.
        if new_size > layout.size() {
            self.count(new_size - layout.size());
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_through_a_non_global_instance() {
        // The type works without being installed globally: drive it
        // directly through the GlobalAlloc interface.
        let counter = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            let p = counter.realloc(p, layout, 128);
            assert!(!p.is_null());
            let layout2 = Layout::from_size_align(128, 8).unwrap();
            counter.dealloc(p, layout2);
        }
        let snap = counter.snapshot();
        assert_eq!(snap.allocations, 2, "alloc + realloc growth");
        assert_eq!(snap.bytes, 128, "64 + (128 - 64)");
        // Deallocs are not subtracted.
        let again = counter.snapshot().since(snap);
        assert_eq!(
            again,
            AllocSnapshot {
                allocations: 0,
                bytes: 0
            }
        );
    }
}
