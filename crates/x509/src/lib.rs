//! # `nrslb-x509` — an X.509 v3 certificate substrate
//!
//! A from-scratch certificate model for the nrslb workspace: real DER
//! encoding (via `nrslb-der`), SHA-256 fingerprints (the handle GCCs are
//! attached by), and hash-based signatures (via `nrslb-crypto`).
//!
//! The model covers the fields and extensions the paper's experiments
//! need:
//!
//! * subject / issuer distinguished names ([`name`]);
//! * validity windows (`notBefore` / `notAfter` as Unix seconds);
//! * BasicConstraints (CA flag + path length), KeyUsage, ExtendedKeyUsage,
//!   SubjectAltName (DNS names), NameConstraints (permitted/excluded DNS
//!   subtrees) and CertificatePolicies (for EV detection) — see
//!   [`extensions`];
//! * a builder API ([`builder`]) used by the corpus generators, and
//!   [`testutil`] helpers for examples and tests.
//!
//! Certificates are immutable once built; [`cert::Certificate`] retains the
//! exact DER of its TBS portion so signature verification operates over
//! canonical bytes.

#![warn(missing_docs)]

pub mod builder;
pub mod cert;
pub mod extensions;
pub mod name;
pub mod oids;
pub mod pem;
pub mod testutil;

pub use builder::{CaKey, CertificateBuilder};
pub use cert::{Certificate, Validity};
pub use extensions::{
    BasicConstraints, ExtendedKeyUsage, KeyUsage, NameConstraints, SubjectAltName,
};
pub use name::DistinguishedName;

use std::fmt;

/// Errors from certificate encoding, decoding or verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum X509Error {
    /// The DER structure was not a well-formed certificate.
    Structure(&'static str),
    /// Underlying DER error.
    Der(nrslb_der::DerError),
    /// Underlying crypto error (bad signature, malformed key...).
    Crypto(nrslb_crypto::CryptoError),
    /// The certificate's signature did not verify under the given key.
    BadSignature,
    /// A builder was misconfigured.
    Builder(&'static str),
}

impl fmt::Display for X509Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            X509Error::Structure(what) => write!(f, "malformed certificate: {what}"),
            X509Error::Der(e) => write!(f, "DER error: {e}"),
            X509Error::Crypto(e) => write!(f, "crypto error: {e}"),
            X509Error::BadSignature => write!(f, "certificate signature verification failed"),
            X509Error::Builder(what) => write!(f, "certificate builder: {what}"),
        }
    }
}

impl std::error::Error for X509Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            X509Error::Der(e) => Some(e),
            X509Error::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nrslb_der::DerError> for X509Error {
    fn from(e: nrslb_der::DerError) -> Self {
        X509Error::Der(e)
    }
}

impl From<nrslb_crypto::CryptoError> for X509Error {
    fn from(e: nrslb_crypto::CryptoError) -> Self {
        X509Error::Crypto(e)
    }
}
