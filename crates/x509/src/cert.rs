//! The certificate type: TBS fields, canonical DER, fingerprints and
//! signature verification.

use crate::extensions::Extensions;
use crate::name::DistinguishedName;
use crate::{name, oids, X509Error};
use nrslb_crypto::hbs;
use nrslb_crypto::sha256::{sha256, Digest};
use nrslb_der::{decode, encode, Value};
use std::sync::{Arc, OnceLock};

/// A validity window in Unix-epoch seconds (inclusive bounds, as X.509).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Validity {
    /// notBefore.
    pub not_before: i64,
    /// notAfter.
    pub not_after: i64,
}

impl Validity {
    /// Is `at` within `[not_before, not_after]`?
    pub fn contains(&self, at: i64) -> bool {
        self.not_before <= at && at <= self.not_after
    }

    /// Certificate lifetime in seconds.
    pub fn lifetime(&self) -> i64 {
        self.not_after - self.not_before
    }
}

/// An immutable, parsed X.509 v3 certificate.
///
/// Certificates are cheaply cloneable (`Arc` internals): corpus experiments
/// pass hundreds of thousands of them around.
#[derive(Clone)]
pub struct Certificate {
    inner: Arc<CertInner>,
}

struct CertInner {
    serial: i128,
    issuer: DistinguishedName,
    subject: DistinguishedName,
    validity: Validity,
    spki: hbs::PublicKey,
    extensions: Extensions,
    tbs_der: Vec<u8>,
    signature: hbs::Signature,
    der: Vec<u8>,
    /// Computed on first use; shared by every clone through the `Arc`,
    /// so the DER is hashed at most once per certificate.
    fingerprint: OnceLock<Digest>,
    /// Lowercase hex of the fingerprint, rendered at most once per
    /// certificate — the fact-emission handle (`cert_id`).
    fingerprint_hex: OnceLock<Arc<str>>,
    /// An opaque token a higher layer may attach exactly once (the core
    /// crate stores the interned symbol id of the hex handle here, so
    /// fact emission skips the symbol-table lookup entirely).
    symbol_token: OnceLock<u32>,
}

impl std::fmt::Debug for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Certificate(subject=\"{}\", issuer=\"{}\", serial={}, fp={})",
            self.subject(),
            self.issuer(),
            self.serial(),
            self.fingerprint().short()
        )
    }
}

impl PartialEq for Certificate {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint() == other.fingerprint()
    }
}

impl Eq for Certificate {}

impl std::hash::Hash for Certificate {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.fingerprint().hash(state);
    }
}

impl Certificate {
    /// Assemble a certificate from its parts; used by the builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        serial: i128,
        issuer: DistinguishedName,
        subject: DistinguishedName,
        validity: Validity,
        spki: hbs::PublicKey,
        extensions: Extensions,
        tbs_der: Vec<u8>,
        signature: hbs::Signature,
    ) -> Certificate {
        let cert_value = Value::Sequence(vec![
            decode(&tbs_der).expect("tbs is canonical"),
            Value::Sequence(vec![Value::Oid(oids::hbs_signature())]),
            Value::BitString {
                unused: 0,
                bytes: signature.to_bytes(),
            },
        ]);
        let der = encode(&cert_value);
        Certificate {
            inner: Arc::new(CertInner {
                serial,
                issuer,
                subject,
                validity,
                spki,
                extensions,
                tbs_der,
                signature,
                der,
                fingerprint: OnceLock::new(),
                fingerprint_hex: OnceLock::new(),
                symbol_token: OnceLock::new(),
            }),
        }
    }

    /// Parse a certificate from DER bytes.
    pub fn from_der(bytes: &[u8]) -> Result<Certificate, X509Error> {
        let top = decode(bytes)?;
        let items = top
            .as_sequence()
            .ok_or(X509Error::Structure("certificate"))?;
        let [tbs_v, alg_v, sig_v] = items else {
            return Err(X509Error::Structure("certificate arity"));
        };
        // Signature algorithm.
        let alg = alg_v
            .as_sequence()
            .and_then(|s| s.first())
            .and_then(|v| v.as_oid())
            .ok_or(X509Error::Structure("signature algorithm"))?;
        if *alg != oids::hbs_signature() {
            return Err(X509Error::Structure("unknown signature algorithm"));
        }
        let Value::BitString {
            unused: 0,
            bytes: sig_bytes,
        } = sig_v
        else {
            return Err(X509Error::Structure("signature bits"));
        };
        let signature = hbs::Signature::from_bytes(sig_bytes)?;
        // TBS: re-encode the parsed value; DER is canonical so this matches
        // the signed bytes exactly.
        let tbs_der = encode(tbs_v);
        let (serial, issuer, subject, validity, spki, extensions) = parse_tbs(tbs_v)?;
        Ok(Certificate {
            inner: Arc::new(CertInner {
                serial,
                issuer,
                subject,
                validity,
                spki,
                extensions,
                tbs_der,
                signature,
                der: bytes.to_vec(),
                fingerprint: OnceLock::new(),
                fingerprint_hex: OnceLock::new(),
                symbol_token: OnceLock::new(),
            }),
        })
    }

    /// The certificate's full DER encoding.
    pub fn to_der(&self) -> &[u8] {
        &self.inner.der
    }

    /// DER of the TBS (to-be-signed) portion.
    pub fn tbs_der(&self) -> &[u8] {
        &self.inner.tbs_der
    }

    /// SHA-256 fingerprint of the full DER encoding — the identifier GCCs
    /// attach to (paper §3).
    ///
    /// Computed lazily and memoized: the first call hashes the DER, every
    /// later call (on this certificate or any clone — the memo lives
    /// behind the shared `Arc`) returns the stored digest. The validator
    /// alone asks for a fingerprint several times per chain, so this
    /// keeps repeated identity checks off the hashing path.
    pub fn fingerprint(&self) -> Digest {
        *self
            .inner
            .fingerprint
            .get_or_init(|| sha256(&self.inner.der))
    }

    /// Lowercase hex of [`Certificate::fingerprint`], rendered at most
    /// once per certificate and shared by every clone. This is the
    /// handle fact emission attaches to, so the hex `String` is no
    /// longer rebuilt per fact.
    pub fn fingerprint_hex(&self) -> &Arc<str> {
        self.inner
            .fingerprint_hex
            .get_or_init(|| Arc::from(self.fingerprint().to_hex()))
    }

    /// The token attached via [`Certificate::set_symbol_token`], if any.
    pub fn symbol_token(&self) -> Option<u32> {
        self.inner.symbol_token.get().copied()
    }

    /// Attach an opaque token to this certificate (first caller wins;
    /// the winning value is returned). The core crate stores the
    /// interned symbol id of the hex handle here so repeated fact
    /// emission skips the global symbol-table lookup.
    pub fn set_symbol_token(&self, token: u32) -> u32 {
        *self.inner.symbol_token.get_or_init(|| token)
    }

    /// Serial number.
    pub fn serial(&self) -> i128 {
        self.inner.serial
    }

    /// Issuer distinguished name.
    pub fn issuer(&self) -> &DistinguishedName {
        &self.inner.issuer
    }

    /// Subject distinguished name.
    pub fn subject(&self) -> &DistinguishedName {
        &self.inner.subject
    }

    /// Validity window.
    pub fn validity(&self) -> Validity {
        self.inner.validity
    }

    /// Subject public key.
    pub fn public_key(&self) -> hbs::PublicKey {
        self.inner.spki
    }

    /// Parsed extensions.
    pub fn extensions(&self) -> &Extensions {
        &self.inner.extensions
    }

    /// The certificate's signature.
    pub fn signature(&self) -> &hbs::Signature {
        &self.inner.signature
    }

    /// True when BasicConstraints marks this certificate as a CA.
    pub fn is_ca(&self) -> bool {
        self.inner
            .extensions
            .basic_constraints
            .map(|bc| bc.ca)
            .unwrap_or(false)
    }

    /// The BasicConstraints path-length limit, if any.
    pub fn path_len(&self) -> Option<u32> {
        self.inner
            .extensions
            .basic_constraints
            .and_then(|bc| bc.path_len)
    }

    /// True when the certificate asserts the CA/B EV policy.
    pub fn is_ev(&self) -> bool {
        self.inner.extensions.is_ev()
    }

    /// SAN DNS names.
    pub fn dns_names(&self) -> &[String] {
        self.inner
            .extensions
            .subject_alt_name
            .as_ref()
            .map(|san| san.dns_names.as_slice())
            .unwrap_or(&[])
    }

    /// Does any SAN entry match `hostname` (RFC 6125 wildcard rules)?
    pub fn matches_hostname(&self, hostname: &str) -> bool {
        self.dns_names()
            .iter()
            .any(|pattern| name::wildcard_matches(pattern, hostname))
    }

    /// Subject == issuer (necessary but not sufficient for self-signed).
    pub fn is_self_issued(&self) -> bool {
        self.inner.subject == self.inner.issuer
    }

    /// Verify this certificate's signature under `issuer_key`.
    pub fn verify_signature(&self, issuer_key: &hbs::PublicKey) -> Result<(), X509Error> {
        hbs::verify(issuer_key, &self.inner.tbs_der, &self.inner.signature)
            .map_err(|_| X509Error::BadSignature)
    }

    /// Verify that `issuer` signed this certificate (key check only; name
    /// chaining and CA-bit checks live in the validator).
    pub fn verify_signed_by(&self, issuer: &Certificate) -> Result<(), X509Error> {
        self.verify_signature(&issuer.public_key())
    }
}

/// Build the DER TBS value from parts; shared with the builder.
pub(crate) fn tbs_value(
    serial: i128,
    issuer: &DistinguishedName,
    subject: &DistinguishedName,
    validity: Validity,
    spki: &hbs::PublicKey,
    extensions: &Extensions,
) -> Value {
    Value::Sequence(vec![
        // [0] EXPLICIT version v3(2)
        Value::ContextConstructed(0, vec![Value::Integer(2)]),
        Value::Integer(serial),
        Value::Sequence(vec![Value::Oid(oids::hbs_signature())]),
        issuer.to_der_value(),
        Value::Sequence(vec![
            Value::GeneralizedTime(validity.not_before),
            Value::GeneralizedTime(validity.not_after),
        ]),
        subject.to_der_value(),
        // SubjectPublicKeyInfo
        Value::Sequence(vec![
            Value::Sequence(vec![Value::Oid(oids::hbs_signature())]),
            Value::BitString {
                unused: 0,
                bytes: spki.to_bytes(),
            },
        ]),
        Value::ContextConstructed(3, vec![extensions.to_der_value()]),
    ])
}

type TbsParts = (
    i128,
    DistinguishedName,
    DistinguishedName,
    Validity,
    hbs::PublicKey,
    Extensions,
);

fn parse_tbs(tbs: &Value) -> Result<TbsParts, X509Error> {
    let items = tbs.as_sequence().ok_or(X509Error::Structure("tbs"))?;
    let [version_v, serial_v, _alg_v, issuer_v, validity_v, subject_v, spki_v, exts_v] = items
    else {
        return Err(X509Error::Structure("tbs arity"));
    };
    match version_v {
        Value::ContextConstructed(0, inner) if inner == &[Value::Integer(2)] => {}
        _ => return Err(X509Error::Structure("version")),
    }
    let serial = serial_v
        .as_integer()
        .ok_or(X509Error::Structure("serial"))?;
    let issuer = DistinguishedName::from_der_value(issuer_v)?;
    let subject = DistinguishedName::from_der_value(subject_v)?;
    let validity = match validity_v.as_sequence() {
        Some([Value::GeneralizedTime(nb), Value::GeneralizedTime(na)]) => Validity {
            not_before: *nb,
            not_after: *na,
        },
        _ => return Err(X509Error::Structure("validity")),
    };
    let spki = match spki_v.as_sequence() {
        Some([_alg, Value::BitString { unused: 0, bytes }]) => hbs::PublicKey::from_bytes(bytes)?,
        _ => return Err(X509Error::Structure("spki")),
    };
    let extensions = match exts_v {
        Value::ContextConstructed(3, inner) => match inner.as_slice() {
            [seq] => Extensions::from_der_value(seq)?,
            _ => return Err(X509Error::Structure("extensions wrapper")),
        },
        _ => return Err(X509Error::Structure("extensions tag")),
    };
    Ok((serial, issuer, subject, validity, spki, extensions))
}

#[cfg(test)]
mod tests {
    use crate::builder::CaKey;
    use crate::extensions::{BasicConstraints, KeyUsage};
    use crate::testutil;
    use crate::{Certificate, CertificateBuilder, DistinguishedName};

    #[test]
    fn der_roundtrip_preserves_everything() {
        let pki = testutil::simple_chain("roundtrip.example");
        for cert in [&pki.root, &pki.intermediate, &pki.leaf] {
            let parsed = Certificate::from_der(cert.to_der()).unwrap();
            assert_eq!(&parsed, cert);
            assert_eq!(parsed.serial(), cert.serial());
            assert_eq!(parsed.subject(), cert.subject());
            assert_eq!(parsed.issuer(), cert.issuer());
            assert_eq!(parsed.validity(), cert.validity());
            assert_eq!(parsed.extensions(), cert.extensions());
            assert_eq!(parsed.tbs_der(), cert.tbs_der());
            assert_eq!(parsed.public_key(), cert.public_key());
        }
    }

    #[test]
    fn fingerprint_is_lazy_shared_and_stable() {
        let pki = testutil::simple_chain("fingerprint.example");
        let clone = pki.leaf.clone();
        // Clones share the memo: both observe the same digest, and it
        // matches hashing the DER directly.
        assert_eq!(pki.leaf.fingerprint(), clone.fingerprint());
        assert_eq!(
            pki.leaf.fingerprint(),
            nrslb_crypto::sha256::sha256(pki.leaf.to_der())
        );
        // Round-tripping through DER preserves the fingerprint.
        let parsed = Certificate::from_der(pki.leaf.to_der()).unwrap();
        assert_eq!(parsed.fingerprint(), pki.leaf.fingerprint());
    }

    #[test]
    fn signature_chain_verifies() {
        let pki = testutil::simple_chain("sig.example");
        pki.leaf.verify_signed_by(&pki.intermediate).unwrap();
        pki.intermediate.verify_signed_by(&pki.root).unwrap();
        pki.root.verify_signed_by(&pki.root).unwrap(); // self-signed
        assert!(pki.leaf.verify_signed_by(&pki.root).is_err());
    }

    #[test]
    fn tampered_der_fails_signature_or_parse() {
        let pki = testutil::simple_chain("tamper.example");
        let mut der = pki.leaf.to_der().to_vec();
        // Flip one byte somewhere in the middle of the TBS.
        let idx = der.len() / 3;
        der[idx] ^= 0x01;
        match Certificate::from_der(&der) {
            Err(_) => {}
            Ok(cert) => assert!(cert.verify_signed_by(&pki.intermediate).is_err()),
        }
    }

    #[test]
    fn hostname_matching() {
        let pki = testutil::simple_chain("www.example.com");
        assert!(pki.leaf.matches_hostname("www.example.com"));
        assert!(!pki.leaf.matches_hostname("mail.example.com"));
    }

    #[test]
    fn ca_accessors() {
        let pki = testutil::simple_chain("accessors.example");
        assert!(pki.root.is_ca());
        assert!(pki.intermediate.is_ca());
        assert!(!pki.leaf.is_ca());
        assert!(pki.root.is_self_issued());
        assert!(!pki.leaf.is_self_issued());
    }

    #[test]
    fn builder_rejects_missing_fields() {
        let ca = CaKey::generate_for_tests("Builder CA", 0xb1);
        let err = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("x"))
            // no validity
            .build_signed_by(&ca);
        assert!(err.is_err());
    }

    #[test]
    fn explicit_extensions_survive() {
        let ca = CaKey::generate_for_tests("Ext CA", 0xb2);
        let cert = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("Ext Test"))
            .validity_window(0, 1_000)
            .serial(42)
            .basic_constraints(BasicConstraints {
                ca: true,
                path_len: Some(3),
            })
            .key_usage(KeyUsage::KEY_CERT_SIGN)
            .build_signed_by(&ca)
            .unwrap();
        assert!(cert.is_ca());
        assert_eq!(cert.path_len(), Some(3));
        assert_eq!(cert.serial(), 42);
        let parsed = Certificate::from_der(cert.to_der()).unwrap();
        assert_eq!(parsed.path_len(), Some(3));
    }
}
