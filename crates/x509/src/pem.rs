//! PEM armor for certificates (RFC 7468 style).

use crate::{Certificate, X509Error};
use nrslb_crypto::base64;

const BEGIN: &str = "-----BEGIN CERTIFICATE-----";
const END: &str = "-----END CERTIFICATE-----";

/// Render a certificate as a PEM block (64-column base64 body).
pub fn encode(cert: &Certificate) -> String {
    let b64 = base64::encode(cert.to_der());
    let mut out = String::with_capacity(b64.len() + 64);
    out.push_str(BEGIN);
    out.push('\n');
    for chunk in b64.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(chunk).expect("base64 is ascii"));
        out.push('\n');
    }
    out.push_str(END);
    out.push('\n');
    out
}

/// Parse every certificate PEM block in `text`, in order.
pub fn decode_all(text: &str) -> Result<Vec<Certificate>, X509Error> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find(BEGIN) {
        let after = &rest[start + BEGIN.len()..];
        let end = after
            .find(END)
            .ok_or(X509Error::Structure("unterminated PEM block"))?;
        let body = &after[..end];
        let der = base64::decode(body).map_err(X509Error::Crypto)?;
        out.push(Certificate::from_der(&der)?);
        rest = &after[end + END.len()..];
    }
    Ok(out)
}

/// Parse exactly one certificate from PEM text.
pub fn decode(text: &str) -> Result<Certificate, X509Error> {
    let mut all = decode_all(text)?;
    match all.len() {
        1 => Ok(all.remove(0)),
        0 => Err(X509Error::Structure("no PEM certificate block")),
        _ => Err(X509Error::Structure("multiple PEM certificate blocks")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::simple_chain;

    #[test]
    fn roundtrip_single() {
        let pki = simple_chain("pem.example");
        let pem = encode(&pki.leaf);
        assert!(pem.starts_with(BEGIN));
        assert!(pem.trim_end().ends_with(END));
        assert!(pem.lines().all(|l| l.len() <= 64 + 5));
        let back = decode(&pem).unwrap();
        assert_eq!(back, pki.leaf);
        assert_eq!(back.to_der(), pki.leaf.to_der());
    }

    #[test]
    fn bundle_roundtrip() {
        let pki = simple_chain("bundle.example");
        let bundle = format!(
            "# comment line\n{}{}{}",
            encode(&pki.leaf),
            encode(&pki.intermediate),
            encode(&pki.root)
        );
        let certs = decode_all(&bundle).unwrap();
        assert_eq!(certs.len(), 3);
        assert_eq!(certs[0], pki.leaf);
        assert_eq!(certs[2], pki.root);
    }

    #[test]
    fn rejects_malformed() {
        assert!(decode("").is_err());
        assert!(decode("-----BEGIN CERTIFICATE-----\nZm9v\n").is_err()); // no END
        assert!(decode(&format!("{BEGIN}\n!!!!\n{END}\n")).is_err()); // bad base64
        let pki = simple_chain("pemdup.example");
        let two = format!("{}{}", encode(&pki.leaf), encode(&pki.root));
        assert!(decode(&two).is_err()); // decode() wants exactly one
        assert_eq!(decode_all(&two).unwrap().len(), 2);
    }
}
