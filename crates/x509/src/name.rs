//! Distinguished names and DNS-name matching.
//!
//! Includes the DNS matching rules certificate validation needs:
//! hostname matching with a single leftmost wildcard label, and RFC 5280
//! name-constraint subtree matching. Because the paper notes that Firefox
//! and OpenSSL have *disagreed* on the semantics of a leading dot in name
//! constraints, both interpretations are implemented and selectable via
//! [`DotSemantics`] (an ablation knob for the validator).

use crate::oids;
use nrslb_der::{Oid, Value};
use std::fmt;

/// One relative distinguished name component: attribute type + value.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameAttribute {
    /// The attribute type OID (e.g. commonName).
    pub oid: Oid,
    /// The attribute value.
    pub value: String,
}

/// An X.501 distinguished name: an ordered list of attributes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DistinguishedName {
    /// Ordered attribute list.
    pub attributes: Vec<NameAttribute>,
}

impl DistinguishedName {
    /// A name with just a commonName.
    pub fn common_name(cn: &str) -> DistinguishedName {
        DistinguishedName {
            attributes: vec![NameAttribute {
                oid: oids::common_name(),
                value: cn.to_string(),
            }],
        }
    }

    /// A name with commonName + organization + country, the shape used by
    /// the synthetic CA corpus.
    pub fn ca(cn: &str, org: &str, country: &str) -> DistinguishedName {
        DistinguishedName {
            attributes: vec![
                NameAttribute {
                    oid: oids::country(),
                    value: country.to_string(),
                },
                NameAttribute {
                    oid: oids::organization(),
                    value: org.to_string(),
                },
                NameAttribute {
                    oid: oids::common_name(),
                    value: cn.to_string(),
                },
            ],
        }
    }

    /// The first commonName value, if any.
    pub fn cn(&self) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.oid == oids::common_name())
            .map(|a| a.value.as_str())
    }

    /// Encode as an X.501 RDNSequence.
    pub fn to_der_value(&self) -> Value {
        Value::Sequence(
            self.attributes
                .iter()
                .map(|attr| {
                    Value::Set(vec![Value::Sequence(vec![
                        Value::Oid(attr.oid.clone()),
                        Value::Utf8String(attr.value.clone()),
                    ])])
                })
                .collect(),
        )
    }

    /// Decode from an RDNSequence value.
    pub fn from_der_value(value: &Value) -> Result<DistinguishedName, crate::X509Error> {
        let rdns = value
            .as_sequence()
            .ok_or(crate::X509Error::Structure("name is not a sequence"))?;
        let mut attributes = Vec::with_capacity(rdns.len());
        for rdn in rdns {
            let set = match rdn {
                Value::Set(items) => items,
                _ => return Err(crate::X509Error::Structure("RDN is not a set")),
            };
            for atv in set {
                let parts = atv
                    .as_sequence()
                    .ok_or(crate::X509Error::Structure("ATV is not a sequence"))?;
                let [oid_v, val_v] = parts else {
                    return Err(crate::X509Error::Structure("ATV arity"));
                };
                let oid = oid_v
                    .as_oid()
                    .ok_or(crate::X509Error::Structure("ATV type"))?
                    .clone();
                let value = val_v
                    .as_str()
                    .ok_or(crate::X509Error::Structure("ATV value"))?
                    .to_string();
                attributes.push(NameAttribute { oid, value });
            }
        }
        Ok(DistinguishedName { attributes })
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for attr in &self.attributes {
            if !first {
                write!(f, ", ")?;
            }
            let label = if attr.oid == oids::common_name() {
                "CN"
            } else if attr.oid == oids::organization() {
                "O"
            } else if attr.oid == oids::country() {
                "C"
            } else {
                "OID"
            };
            write!(f, "{label}={}", attr.value)?;
            first = false;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// DNS matching
// ---------------------------------------------------------------------------

/// Interpretation of a leading dot in a DNS name constraint.
///
/// The paper (§5.1) observes that Firefox and OpenSSL have disagreed on
/// this exact point, so the validator exposes both semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DotSemantics {
    /// RFC 5280: `.example.com` and `example.com` both match the host
    /// `example.com` and any subdomain.
    #[default]
    Rfc5280,
    /// Stricter reading: `.example.com` matches only *proper* subdomains —
    /// `a.example.com` yes, `example.com` itself no.
    RequireSubdomain,
}

/// Case-insensitive DNS label equality (DNS names are ASCII).
fn eq_label(a: &str, b: &str) -> bool {
    a.eq_ignore_ascii_case(b)
}

/// Does `pattern` (possibly with one leading `*` label) match `host`?
///
/// Wildcards match exactly one label and only in the leftmost position,
/// per RFC 6125: `*.example.com` matches `a.example.com` but neither
/// `example.com` nor `a.b.example.com`.
pub fn wildcard_matches(pattern: &str, host: &str) -> bool {
    let p: Vec<&str> = pattern.split('.').collect();
    let h: Vec<&str> = host.split('.').collect();
    if p.iter().any(|l| l.is_empty()) || h.iter().any(|l| l.is_empty()) {
        return false;
    }
    if p.first() == Some(&"*") {
        if p.len() != h.len() || p.len() < 3 {
            return false;
        }
        p[1..].iter().zip(&h[1..]).all(|(pl, hl)| eq_label(pl, hl))
    } else {
        p.len() == h.len() && p.iter().zip(&h).all(|(pl, hl)| eq_label(pl, hl))
    }
}

/// Does DNS name `name` fall within the constraint subtree `base`?
///
/// Under [`DotSemantics::Rfc5280`], `base = "example.com"` matches
/// `example.com` and every subdomain; a leading dot is tolerated and
/// means the same thing. Under [`DotSemantics::RequireSubdomain`], a
/// leading dot requires at least one extra label.
pub fn in_subtree(name: &str, base: &str, semantics: DotSemantics) -> bool {
    let (dotted, base) = match base.strip_prefix('.') {
        Some(rest) => (true, rest),
        None => (false, base),
    };
    if base.is_empty() {
        // An empty base matches everything (the "any" subtree).
        return !name.is_empty();
    }
    let name_labels: Vec<&str> = name.split('.').collect();
    let base_labels: Vec<&str> = base.split('.').collect();
    if name_labels.iter().any(|l| l.is_empty()) || base_labels.iter().any(|l| l.is_empty()) {
        return false;
    }
    if name_labels.len() < base_labels.len() {
        return false;
    }
    let offset = name_labels.len() - base_labels.len();
    let suffix_matches = base_labels
        .iter()
        .zip(&name_labels[offset..])
        .all(|(bl, nl)| eq_label(bl, nl));
    if !suffix_matches {
        return false;
    }
    match semantics {
        DotSemantics::Rfc5280 => true,
        DotSemantics::RequireSubdomain => !dotted || offset >= 1,
    }
}

/// Extract the top-level domain of a DNS name (lowercased); `None` when
/// the name has no dot or empty labels.
pub fn tld(name: &str) -> Option<String> {
    let name = name.strip_prefix("*.").unwrap_or(name);
    let labels: Vec<&str> = name.split('.').collect();
    if labels.len() < 2 || labels.iter().any(|l| l.is_empty()) {
        return None;
    }
    Some(labels.last().unwrap().to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dn_display_and_cn() {
        let dn = DistinguishedName::ca("Example Root", "Example Trust", "US");
        assert_eq!(dn.to_string(), "C=US, O=Example Trust, CN=Example Root");
        assert_eq!(dn.cn(), Some("Example Root"));
        assert_eq!(DistinguishedName::default().cn(), None);
    }

    #[test]
    fn dn_der_roundtrip() {
        let dn = DistinguishedName::ca("Root X1", "Example", "FR");
        let der = dn.to_der_value();
        let back = DistinguishedName::from_der_value(&der).unwrap();
        assert_eq!(back, dn);
    }

    #[test]
    fn wildcard_basics() {
        assert!(wildcard_matches("example.com", "example.com"));
        assert!(wildcard_matches("EXAMPLE.com", "example.COM"));
        assert!(!wildcard_matches("example.com", "www.example.com"));
        assert!(wildcard_matches("*.example.com", "www.example.com"));
        assert!(!wildcard_matches("*.example.com", "example.com"));
        assert!(!wildcard_matches("*.example.com", "a.b.example.com"));
        assert!(!wildcard_matches("*.com", "example.com")); // too broad
        assert!(!wildcard_matches("", ""));
    }

    #[test]
    fn subtree_rfc5280() {
        let s = DotSemantics::Rfc5280;
        assert!(in_subtree("example.com", "example.com", s));
        assert!(in_subtree("a.example.com", "example.com", s));
        assert!(in_subtree("a.b.example.com", "example.com", s));
        assert!(in_subtree("example.com", ".example.com", s));
        assert!(!in_subtree("badexample.com", "example.com", s));
        assert!(!in_subtree("example.org", "example.com", s));
        assert!(in_subtree("anything.tr", "tr", s)); // TLD constraint (TUBITAK-style)
        assert!(!in_subtree("anything.trx", "tr", s));
    }

    #[test]
    fn subtree_require_subdomain() {
        let s = DotSemantics::RequireSubdomain;
        assert!(!in_subtree("example.com", ".example.com", s));
        assert!(in_subtree("a.example.com", ".example.com", s));
        // No leading dot behaves like RFC 5280.
        assert!(in_subtree("example.com", "example.com", s));
    }

    #[test]
    fn tld_extraction() {
        assert_eq!(tld("www.example.com"), Some("com".into()));
        assert_eq!(tld("*.gouv.fr"), Some("fr".into()));
        assert_eq!(tld("localhost"), None);
        assert_eq!(tld("bad..name"), None);
        assert_eq!(tld("UPPER.ORG"), Some("org".into()));
    }
}
