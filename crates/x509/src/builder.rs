//! Certificate construction: CA signing keys and a builder API.

use crate::cert::{tbs_value, Certificate, Validity};
use crate::extensions::{
    BasicConstraints, CertificatePolicies, ExtendedKeyUsage, Extensions, KeyUsage, NameConstraints,
    SubjectAltName,
};
use crate::name::DistinguishedName;
use crate::{oids, X509Error};
use nrslb_crypto::hbs::{Keypair, PublicKey};
use nrslb_crypto::sha256::sha256_concat;
use nrslb_der::{encode, Oid};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

static NEXT_SERIAL: AtomicI64 = AtomicI64::new(1);

/// A certificate-authority signing key: a distinguished name plus a
/// stateful hash-based keypair.
///
/// Signing consumes one-time leaves, so the keypair sits behind a mutex
/// and `CaKey` is shareable across threads (corpus generation fans out).
pub struct CaKey {
    name: DistinguishedName,
    keypair: Mutex<Keypair>,
    public: PublicKey,
}

impl std::fmt::Debug for CaKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CaKey(\"{}\", {:?})", self.name, self.public)
    }
}

impl CaKey {
    /// Create a CA key from an explicit seed. `height` bounds the number
    /// of certificates this CA can sign (`2^height`).
    pub fn from_seed(
        name: DistinguishedName,
        seed: [u8; 32],
        height: u8,
    ) -> Result<CaKey, X509Error> {
        let keypair = Keypair::from_seed(seed, height)?;
        let public = keypair.public();
        Ok(CaKey {
            name,
            keypair: Mutex::new(keypair),
            public,
        })
    }

    /// Deterministic small CA for unit tests and examples: height 6
    /// (64 signatures), seeded from `tag`.
    pub fn generate_for_tests(cn: &str, tag: u8) -> CaKey {
        let mut seed = *sha256_concat(&[&[tag], cn.as_bytes()]).as_bytes();
        seed[31] = tag;
        CaKey::from_seed(DistinguishedName::common_name(cn), seed, 6)
            .expect("test CA parameters are valid")
    }

    /// The CA's distinguished name (used as issuer on signed certs).
    pub fn name(&self) -> &DistinguishedName {
        &self.name
    }

    /// The CA's public verification key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Remaining signatures before the key is exhausted.
    pub fn remaining(&self) -> u64 {
        self.keypair.lock().unwrap().remaining()
    }

    fn sign(&self, message: &[u8]) -> Result<nrslb_crypto::hbs::Signature, X509Error> {
        self.keypair
            .lock()
            .unwrap()
            .sign(message)
            .map_err(X509Error::Crypto)
    }
}

/// Builder for [`Certificate`].
///
/// Unset subject keys default to a deterministic *placeholder* key derived
/// from the subject and serial: synthetic leaf certificates never sign
/// anything, so corpus generation avoids the cost of real keygen. CA
/// certificates must use the real key via [`CertificateBuilder::subject_key`]
/// (the test-utility and corpus layers do this).
#[derive(Default)]
pub struct CertificateBuilder {
    serial: Option<i128>,
    subject: Option<DistinguishedName>,
    validity: Option<Validity>,
    subject_key: Option<PublicKey>,
    extensions: Extensions,
}

impl CertificateBuilder {
    /// Start an empty builder.
    pub fn new() -> CertificateBuilder {
        CertificateBuilder::default()
    }

    /// Set the serial number (defaults to a process-unique counter).
    pub fn serial(mut self, serial: i128) -> Self {
        self.serial = Some(serial);
        self
    }

    /// Set the subject name.
    pub fn subject(mut self, subject: DistinguishedName) -> Self {
        self.subject = Some(subject);
        self
    }

    /// Set the validity window in Unix seconds.
    pub fn validity_window(mut self, not_before: i64, not_after: i64) -> Self {
        self.validity = Some(Validity {
            not_before,
            not_after,
        });
        self
    }

    /// Set the subject public key (required for CA certificates).
    pub fn subject_key(mut self, key: PublicKey) -> Self {
        self.subject_key = Some(key);
        self
    }

    /// Add a SubjectAltName extension with the given DNS names.
    pub fn dns_names(mut self, names: &[&str]) -> Self {
        self.extensions.subject_alt_name = Some(SubjectAltName::dns(names));
        self
    }

    /// Add a BasicConstraints extension.
    pub fn basic_constraints(mut self, bc: BasicConstraints) -> Self {
        self.extensions.basic_constraints = Some(bc);
        self
    }

    /// Shorthand: mark as a CA with an optional path-length limit.
    pub fn ca(self, path_len: Option<u32>) -> Self {
        self.basic_constraints(BasicConstraints { ca: true, path_len })
    }

    /// Add a KeyUsage extension.
    pub fn key_usage(mut self, ku: KeyUsage) -> Self {
        self.extensions.key_usage = Some(ku);
        self
    }

    /// Add an ExtendedKeyUsage extension.
    pub fn extended_key_usage(mut self, eku: ExtendedKeyUsage) -> Self {
        self.extensions.extended_key_usage = Some(eku);
        self
    }

    /// Add a NameConstraints extension.
    pub fn name_constraints(mut self, nc: NameConstraints) -> Self {
        self.extensions.name_constraints = Some(nc);
        self
    }

    /// Add certificate policies.
    pub fn policies(mut self, oids: Vec<Oid>) -> Self {
        self.extensions.policies = Some(CertificatePolicies(oids));
        self
    }

    /// Shorthand: assert the CA/B EV policy.
    pub fn ev(self) -> Self {
        self.policies(vec![oids::ev_policy()])
    }

    /// Attach an uninterpreted extension (raw inner DER bytes).
    pub fn unknown_extension(mut self, oid: Oid, critical: bool, raw: Vec<u8>) -> Self {
        self.extensions.unknown.push((oid, critical, raw));
        self
    }

    fn finish(
        self,
        issuer: DistinguishedName,
        signer: &CaKey,
        self_signed_key: Option<PublicKey>,
    ) -> Result<Certificate, X509Error> {
        let subject = self.subject.ok_or(X509Error::Builder("subject not set"))?;
        let validity = self
            .validity
            .ok_or(X509Error::Builder("validity not set"))?;
        if validity.not_after < validity.not_before {
            return Err(X509Error::Builder("notAfter before notBefore"));
        }
        // GeneralizedTime covers years 0000-9999.
        const MIN_TS: i64 = -62_167_219_200; // 0000-01-01T00:00:00Z
        const MAX_TS: i64 = 253_402_300_799; // 9999-12-31T23:59:59Z
        if validity.not_before < MIN_TS || validity.not_after > MAX_TS {
            return Err(X509Error::Builder("validity outside GeneralizedTime range"));
        }
        let serial = self
            .serial
            .unwrap_or_else(|| NEXT_SERIAL.fetch_add(1, Ordering::Relaxed) as i128);
        let spki = self_signed_key.or(self.subject_key).unwrap_or_else(|| {
            // Placeholder leaf key: deterministic, never used for signing.
            let digest = sha256_concat(&[
                b"placeholder-key",
                format!("{subject}").as_bytes(),
                &serial.to_be_bytes(),
            ]);
            PublicKey {
                root: digest,
                height: 1,
            }
        });
        let tbs = tbs_value(serial, &issuer, &subject, validity, &spki, &self.extensions);
        let tbs_der = encode(&tbs);
        let signature = signer.sign(&tbs_der)?;
        Ok(Certificate::assemble(
            serial,
            issuer,
            subject,
            validity,
            spki,
            self.extensions,
            tbs_der,
            signature,
        ))
    }

    /// Build a certificate signed by `ca` (issuer = CA's name).
    pub fn build_signed_by(self, ca: &CaKey) -> Result<Certificate, X509Error> {
        self.finish(ca.name().clone(), ca, None)
    }

    /// Build a certificate that *claims* `issuer` but carries a dummy
    /// (all-zero) signature.
    ///
    /// For corpus-scale synthesis only (hundreds of thousands of
    /// certificates for the scanning/conversion experiments, where
    /// signature bytes are never verified): it skips the hash-based
    /// signing cost entirely. Such certificates always fail
    /// [`Certificate::verify_signed_by`].
    pub fn build_unsigned(self, issuer: DistinguishedName) -> Result<Certificate, X509Error> {
        use nrslb_crypto::sha256::Digest;
        let subject = self.subject.ok_or(X509Error::Builder("subject not set"))?;
        let validity = self
            .validity
            .ok_or(X509Error::Builder("validity not set"))?;
        if validity.not_after < validity.not_before {
            return Err(X509Error::Builder("notAfter before notBefore"));
        }
        let serial = self
            .serial
            .unwrap_or_else(|| NEXT_SERIAL.fetch_add(1, Ordering::Relaxed) as i128);
        let spki = self.subject_key.unwrap_or_else(|| {
            let digest = sha256_concat(&[
                b"placeholder-key",
                format!("{subject}").as_bytes(),
                &serial.to_be_bytes(),
            ]);
            PublicKey {
                root: digest,
                height: 1,
            }
        });
        let tbs = tbs_value(serial, &issuer, &subject, validity, &spki, &self.extensions);
        let tbs_der = encode(&tbs);
        let signature = nrslb_crypto::hbs::Signature {
            leaf_index: 0,
            wots: vec![Digest::ZERO; 67],
            auth_path: Vec::new(),
        };
        Ok(Certificate::assemble(
            serial,
            issuer,
            subject,
            validity,
            spki,
            self.extensions,
            tbs_der,
            signature,
        ))
    }

    /// Build a self-signed certificate for `ca` itself; subject and issuer
    /// both become the CA's name and the subject key is the CA's key.
    pub fn build_self_signed(mut self, ca: &CaKey) -> Result<Certificate, X509Error> {
        if self.subject.is_none() {
            self.subject = Some(ca.name().clone());
        }
        let issuer = self.subject.clone().unwrap();
        self.finish(issuer, ca, Some(ca.public()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_signed_root_verifies_itself() {
        let ca = CaKey::generate_for_tests("Self Root", 0xc1);
        let root = CertificateBuilder::new()
            .validity_window(0, 10_000)
            .ca(None)
            .key_usage(KeyUsage::KEY_CERT_SIGN)
            .build_self_signed(&ca)
            .unwrap();
        assert!(root.is_self_issued());
        root.verify_signature(&ca.public()).unwrap();
        assert_eq!(root.public_key(), ca.public());
    }

    #[test]
    fn serial_defaults_are_unique() {
        let ca = CaKey::generate_for_tests("Serial CA", 0xc2);
        let a = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("a"))
            .validity_window(0, 1)
            .build_signed_by(&ca)
            .unwrap();
        let b = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("b"))
            .validity_window(0, 1)
            .build_signed_by(&ca)
            .unwrap();
        assert_ne!(a.serial(), b.serial());
    }

    #[test]
    fn invalid_validity_rejected() {
        let ca = CaKey::generate_for_tests("Validity CA", 0xc3);
        let err = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("bad"))
            .validity_window(10, 5)
            .build_signed_by(&ca);
        assert!(matches!(err, Err(X509Error::Builder(_))));
    }

    #[test]
    fn key_exhaustion_surfaces() {
        let seed = [0xc4u8; 32];
        let ca = CaKey::from_seed(DistinguishedName::common_name("Tiny CA"), seed, 1).unwrap();
        assert_eq!(ca.remaining(), 2);
        for i in 0..2 {
            CertificateBuilder::new()
                .subject(DistinguishedName::common_name(&format!("leaf{i}")))
                .validity_window(0, 1)
                .build_signed_by(&ca)
                .unwrap();
        }
        let err = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("leaf3"))
            .validity_window(0, 1)
            .build_signed_by(&ca);
        assert!(matches!(err, Err(X509Error::Crypto(_))));
    }
}
