//! Well-known object identifiers used across the workspace.
//!
//! Real Web-PKI OIDs are used wherever they exist; the signature algorithm
//! OID lives under a private experimental arc because the hash-based
//! scheme of `nrslb-crypto` has no assigned identifier.

use nrslb_der::Oid;

/// `2.5.4.3` — id-at-commonName.
pub fn common_name() -> Oid {
    Oid::new(&[2, 5, 4, 3])
}

/// `2.5.4.10` — id-at-organizationName.
pub fn organization() -> Oid {
    Oid::new(&[2, 5, 4, 10])
}

/// `2.5.4.6` — id-at-countryName.
pub fn country() -> Oid {
    Oid::new(&[2, 5, 4, 6])
}

/// `2.5.29.19` — id-ce-basicConstraints.
pub fn basic_constraints() -> Oid {
    Oid::new(&[2, 5, 29, 19])
}

/// `2.5.29.15` — id-ce-keyUsage.
pub fn key_usage() -> Oid {
    Oid::new(&[2, 5, 29, 15])
}

/// `2.5.29.37` — id-ce-extKeyUsage.
pub fn ext_key_usage() -> Oid {
    Oid::new(&[2, 5, 29, 37])
}

/// `2.5.29.17` — id-ce-subjectAltName.
pub fn subject_alt_name() -> Oid {
    Oid::new(&[2, 5, 29, 17])
}

/// `2.5.29.30` — id-ce-nameConstraints.
pub fn name_constraints() -> Oid {
    Oid::new(&[2, 5, 29, 30])
}

/// `2.5.29.32` — id-ce-certificatePolicies.
pub fn certificate_policies() -> Oid {
    Oid::new(&[2, 5, 29, 32])
}

/// `1.3.6.1.5.5.7.3.1` — id-kp-serverAuth.
pub fn kp_server_auth() -> Oid {
    Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 1])
}

/// `1.3.6.1.5.5.7.3.2` — id-kp-clientAuth.
pub fn kp_client_auth() -> Oid {
    Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 2])
}

/// `1.3.6.1.5.5.7.3.4` — id-kp-emailProtection (S/MIME).
pub fn kp_email_protection() -> Oid {
    Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 4])
}

/// `2.23.140.1.1` — the CA/Browser Forum Extended Validation policy.
pub fn ev_policy() -> Oid {
    Oid::new(&[2, 23, 140, 1, 1])
}

/// `2.23.140.1.2.1` — CA/B domain-validated policy.
pub fn dv_policy() -> Oid {
    Oid::new(&[2, 23, 140, 1, 2, 1])
}

/// `1.3.9999.1.1` — private arc: the nrslb hash-based signature algorithm.
pub fn hbs_signature() -> Oid {
    Oid::new(&[1, 3, 9999, 1, 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oids_are_distinct() {
        let all = [
            common_name(),
            organization(),
            country(),
            basic_constraints(),
            key_usage(),
            ext_key_usage(),
            subject_alt_name(),
            name_constraints(),
            certificate_policies(),
            kp_server_auth(),
            kp_client_auth(),
            kp_email_protection(),
            ev_policy(),
            dv_policy(),
            hbs_signature(),
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_is_dotted() {
        assert_eq!(basic_constraints().to_string(), "2.5.29.19");
        assert_eq!(kp_server_auth().to_string(), "1.3.6.1.5.5.7.3.1");
    }
}
