//! Ready-made synthetic PKIs for tests, examples and documentation.

use crate::builder::{CaKey, CertificateBuilder};
use crate::cert::Certificate;
use crate::extensions::{ExtendedKeyUsage, KeyUsage};
use crate::name::DistinguishedName;

/// A minimal root → intermediate → leaf chain plus its signing keys.
pub struct SimplePki {
    /// Self-signed root certificate.
    pub root: Certificate,
    /// Intermediate signed by the root.
    pub intermediate: Certificate,
    /// Leaf signed by the intermediate, valid for the requested hostname.
    pub leaf: Certificate,
    /// The root's signing key.
    pub root_key: CaKey,
    /// The intermediate's signing key.
    pub intermediate_key: CaKey,
    /// A timestamp inside every certificate's validity window.
    pub now: i64,
}

/// Deterministic timestamps used by the simple chains: roughly 2022-07-01.
pub const T0: i64 = 1_656_633_600;
/// One year of seconds.
pub const YEAR: i64 = 365 * 86_400;

/// Build a root → intermediate → leaf chain for `hostname`.
///
/// Deterministic per hostname: repeated calls with the same hostname yield
/// byte-identical certificates. Roots are valid for 20 years around [`T0`],
/// intermediates for 10, leaves for 1.
pub fn simple_chain(hostname: &str) -> SimplePki {
    simple_chain_at(hostname, T0)
}

/// [`simple_chain`] with an explicit "current time"; certificates are
/// positioned so `now` is inside every validity window.
pub fn simple_chain_at(hostname: &str, now: i64) -> SimplePki {
    let root_key = CaKey::generate_for_tests(&format!("{hostname} Root CA"), 0xa0);
    let intermediate_key = CaKey::generate_for_tests(&format!("{hostname} Issuing CA"), 0xa1);

    let root = CertificateBuilder::new()
        .validity_window(now - 10 * YEAR, now + 10 * YEAR)
        .ca(None)
        .key_usage(KeyUsage::KEY_CERT_SIGN.union(KeyUsage::CRL_SIGN))
        .serial(1)
        .build_self_signed(&root_key)
        .expect("root construction");

    let intermediate = CertificateBuilder::new()
        .subject(intermediate_key.name().clone())
        .subject_key(intermediate_key.public())
        .validity_window(now - 5 * YEAR, now + 5 * YEAR)
        .ca(Some(0))
        .key_usage(KeyUsage::KEY_CERT_SIGN.union(KeyUsage::CRL_SIGN))
        .serial(2)
        .build_signed_by(&root_key)
        .expect("intermediate construction");

    let leaf = CertificateBuilder::new()
        .subject(DistinguishedName::common_name(hostname))
        .dns_names(&[hostname])
        .validity_window(now - YEAR / 2, now + YEAR / 2)
        .key_usage(KeyUsage::DIGITAL_SIGNATURE)
        .extended_key_usage(ExtendedKeyUsage::server_auth())
        .serial(3)
        .build_signed_by(&intermediate_key)
        .expect("leaf construction");

    SimplePki {
        root,
        intermediate,
        leaf,
        root_key,
        intermediate_key,
        now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_well_formed() {
        let pki = simple_chain("test.example");
        assert!(pki.root.is_ca());
        assert!(pki.intermediate.is_ca());
        assert_eq!(pki.intermediate.path_len(), Some(0));
        assert!(!pki.leaf.is_ca());
        assert!(pki.leaf.validity().contains(pki.now));
        assert!(pki.leaf.matches_hostname("test.example"));
        pki.leaf.verify_signed_by(&pki.intermediate).unwrap();
        pki.intermediate.verify_signed_by(&pki.root).unwrap();
    }

    #[test]
    fn deterministic_per_hostname() {
        let a = simple_chain("det.example");
        let b = simple_chain("det.example");
        assert_eq!(a.leaf.fingerprint(), b.leaf.fingerprint());
        assert_eq!(a.root.fingerprint(), b.root.fingerprint());
        let c = simple_chain("other.example");
        assert_ne!(a.leaf.fingerprint(), c.leaf.fingerprint());
    }
}
