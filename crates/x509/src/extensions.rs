//! X.509 v3 extensions: the subset the paper's experiments rely on.
//!
//! Each extension type knows how to convert itself to and from the DER
//! `Extension { extnID, critical, extnValue OCTET STRING }` shape used in
//! certificates. Unknown extensions round-trip as raw bytes so the corpus
//! scanner never loses information.

use crate::{name, oids, X509Error};
use nrslb_der::{decode, encode, Oid, Value};

/// BasicConstraints (RFC 5280 §4.2.1.9): CA flag + optional path length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct BasicConstraints {
    /// True when the subject is a CA.
    pub ca: bool,
    /// Maximum number of *intermediate* certificates that may follow this
    /// one in a valid chain. `None` = unlimited.
    pub path_len: Option<u32>,
}

impl BasicConstraints {
    fn to_der(self) -> Value {
        let mut items = Vec::new();
        if self.ca {
            items.push(Value::Boolean(true));
        }
        if let Some(n) = self.path_len {
            items.push(Value::Integer(n as i128));
        }
        Value::Sequence(items)
    }

    fn from_der(v: &Value) -> Result<Self, X509Error> {
        let items = v
            .as_sequence()
            .ok_or(X509Error::Structure("basicConstraints"))?;
        let mut out = BasicConstraints::default();
        let mut iter = items.iter().peekable();
        if let Some(Value::Boolean(b)) = iter.peek() {
            out.ca = *b;
            iter.next();
        }
        if let Some(Value::Integer(n)) = iter.peek() {
            if *n < 0 || *n > u32::MAX as i128 {
                return Err(X509Error::Structure("pathLen range"));
            }
            out.path_len = Some(*n as u32);
            iter.next();
        }
        if iter.next().is_some() {
            return Err(X509Error::Structure("basicConstraints trailing"));
        }
        Ok(out)
    }
}

/// KeyUsage bit flags (RFC 5280 §4.2.1.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct KeyUsage(pub u16);

impl KeyUsage {
    /// digitalSignature (bit 0).
    pub const DIGITAL_SIGNATURE: KeyUsage = KeyUsage(1 << 0);
    /// keyEncipherment (bit 2).
    pub const KEY_ENCIPHERMENT: KeyUsage = KeyUsage(1 << 2);
    /// keyCertSign (bit 5).
    pub const KEY_CERT_SIGN: KeyUsage = KeyUsage(1 << 5);
    /// cRLSign (bit 6).
    pub const CRL_SIGN: KeyUsage = KeyUsage(1 << 6);

    /// Union of two usages.
    pub fn union(self, other: KeyUsage) -> KeyUsage {
        KeyUsage(self.0 | other.0)
    }

    /// Does this usage include all bits of `other`?
    pub fn contains(self, other: KeyUsage) -> bool {
        self.0 & other.0 == other.0
    }

    /// Names of the set bits (for Datalog fact generation).
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.contains(Self::DIGITAL_SIGNATURE) {
            out.push("digitalSignature");
        }
        if self.contains(Self::KEY_ENCIPHERMENT) {
            out.push("keyEncipherment");
        }
        if self.contains(Self::KEY_CERT_SIGN) {
            out.push("keyCertSign");
        }
        if self.contains(Self::CRL_SIGN) {
            out.push("cRLSign");
        }
        out
    }

    fn to_der(self) -> Value {
        // KeyUsage bit i maps to bit (7 - i % 8) of octet i / 8 (MSB first).
        let highest_bit = (0..16usize).rev().find(|b| self.0 & (1 << b) != 0);
        match highest_bit {
            None => Value::BitString {
                unused: 0,
                bytes: vec![],
            },
            Some(hb) => {
                let nbytes = hb / 8 + 1;
                let mut bytes = vec![0u8; nbytes];
                for bit in 0..16usize {
                    if self.0 & (1 << bit) != 0 {
                        bytes[bit / 8] |= 0x80 >> (bit % 8);
                    }
                }
                let unused = (nbytes * 8 - 1 - hb) as u8;
                Value::BitString { unused, bytes }
            }
        }
    }

    fn from_der(v: &Value) -> Result<Self, X509Error> {
        let Value::BitString { bytes, .. } = v else {
            return Err(X509Error::Structure("keyUsage"));
        };
        let mut out = 0u16;
        for (i, byte) in bytes.iter().take(2).enumerate() {
            for bit in 0..8 {
                if byte & (0x80 >> bit) != 0 {
                    out |= 1 << (i * 8 + bit);
                }
            }
        }
        Ok(KeyUsage(out))
    }
}

/// ExtendedKeyUsage: a list of key-purpose OIDs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ExtendedKeyUsage(pub Vec<Oid>);

impl ExtendedKeyUsage {
    /// serverAuth only — the common TLS leaf shape.
    pub fn server_auth() -> Self {
        ExtendedKeyUsage(vec![oids::kp_server_auth()])
    }

    /// Does the EKU list contain `oid`?
    pub fn contains(&self, oid: &Oid) -> bool {
        self.0.contains(oid)
    }

    fn to_der(&self) -> Value {
        Value::Sequence(self.0.iter().cloned().map(Value::Oid).collect())
    }

    fn from_der(v: &Value) -> Result<Self, X509Error> {
        let items = v.as_sequence().ok_or(X509Error::Structure("eku"))?;
        let mut oids = Vec::with_capacity(items.len());
        for item in items {
            oids.push(
                item.as_oid()
                    .ok_or(X509Error::Structure("eku member"))?
                    .clone(),
            );
        }
        Ok(ExtendedKeyUsage(oids))
    }
}

/// SubjectAltName restricted to DNS names (GeneralName tag `[2]`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SubjectAltName {
    /// DNS names, possibly with a leading wildcard label.
    pub dns_names: Vec<String>,
}

impl SubjectAltName {
    /// Construct from a list of DNS names.
    pub fn dns(names: &[&str]) -> Self {
        SubjectAltName {
            dns_names: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn to_der(&self) -> Value {
        Value::Sequence(
            self.dns_names
                .iter()
                .map(|n| Value::ContextPrimitive(2, n.as_bytes().to_vec()))
                .collect(),
        )
    }

    fn from_der(v: &Value) -> Result<Self, X509Error> {
        let items = v.as_sequence().ok_or(X509Error::Structure("san"))?;
        let mut dns_names = Vec::with_capacity(items.len());
        for item in items {
            // Other GeneralName forms are ignored by the DNS-centric
            // experiments.
            if let Value::ContextPrimitive(2, bytes) = item {
                let s =
                    std::str::from_utf8(bytes).map_err(|_| X509Error::Structure("san dns name"))?;
                dns_names.push(s.to_string());
            }
        }
        Ok(SubjectAltName { dns_names })
    }
}

/// NameConstraints restricted to DNS subtrees (RFC 5280 §4.2.1.10).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NameConstraints {
    /// Permitted DNS subtrees; when non-empty, every SAN of every
    /// descendant leaf must fall inside at least one.
    pub permitted: Vec<String>,
    /// Excluded DNS subtrees; no SAN may fall inside any.
    pub excluded: Vec<String>,
}

impl NameConstraints {
    /// Constraint permitting only the given DNS subtrees.
    pub fn permit(subtrees: &[&str]) -> Self {
        NameConstraints {
            permitted: subtrees.iter().map(|s| s.to_string()).collect(),
            excluded: Vec::new(),
        }
    }

    /// Does `dns_name` satisfy these constraints?
    pub fn allows(&self, dns_name: &str, semantics: name::DotSemantics) -> bool {
        if self
            .excluded
            .iter()
            .any(|base| name::in_subtree(dns_name, base, semantics))
        {
            return false;
        }
        if self.permitted.is_empty() {
            return true;
        }
        self.permitted
            .iter()
            .any(|base| name::in_subtree(dns_name, base, semantics))
    }

    fn subtrees_to_der(list: &[String]) -> Value {
        Value::Sequence(
            list.iter()
                .map(|base| {
                    Value::Sequence(vec![Value::ContextPrimitive(2, base.as_bytes().to_vec())])
                })
                .collect(),
        )
    }

    fn subtrees_from_der(v: &[Value]) -> Result<Vec<String>, X509Error> {
        let mut out = Vec::with_capacity(v.len());
        for subtree in v {
            let items = subtree
                .as_sequence()
                .ok_or(X509Error::Structure("generalSubtree"))?;
            let Some(Value::ContextPrimitive(2, bytes)) = items.first() else {
                continue; // non-DNS subtree: ignored by DNS-centric model
            };
            let s = std::str::from_utf8(bytes).map_err(|_| X509Error::Structure("subtree name"))?;
            out.push(s.to_string());
        }
        Ok(out)
    }

    fn to_der(&self) -> Value {
        let mut items = Vec::new();
        if !self.permitted.is_empty() {
            let Value::Sequence(seq) = Self::subtrees_to_der(&self.permitted) else {
                unreachable!()
            };
            items.push(Value::ContextConstructed(0, seq));
        }
        if !self.excluded.is_empty() {
            let Value::Sequence(seq) = Self::subtrees_to_der(&self.excluded) else {
                unreachable!()
            };
            items.push(Value::ContextConstructed(1, seq));
        }
        Value::Sequence(items)
    }

    fn from_der(v: &Value) -> Result<Self, X509Error> {
        let items = v
            .as_sequence()
            .ok_or(X509Error::Structure("nameConstraints"))?;
        let mut out = NameConstraints::default();
        for item in items {
            match item {
                Value::ContextConstructed(0, seq) => {
                    out.permitted = Self::subtrees_from_der(seq)?;
                }
                Value::ContextConstructed(1, seq) => {
                    out.excluded = Self::subtrees_from_der(seq)?;
                }
                _ => return Err(X509Error::Structure("nameConstraints member")),
            }
        }
        Ok(out)
    }
}

/// CertificatePolicies reduced to a list of policy OIDs (enough to detect
/// the CA/B EV policy the paper's EV constraints key on).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CertificatePolicies(pub Vec<Oid>);

impl CertificatePolicies {
    /// Is the CA/B EV policy asserted?
    pub fn is_ev(&self) -> bool {
        self.0.contains(&oids::ev_policy())
    }

    fn to_der(&self) -> Value {
        Value::Sequence(
            self.0
                .iter()
                .map(|oid| Value::Sequence(vec![Value::Oid(oid.clone())]))
                .collect(),
        )
    }

    fn from_der(v: &Value) -> Result<Self, X509Error> {
        let items = v.as_sequence().ok_or(X509Error::Structure("policies"))?;
        let mut oids = Vec::with_capacity(items.len());
        for item in items {
            let info = item
                .as_sequence()
                .ok_or(X509Error::Structure("policyInformation"))?;
            let oid = info
                .first()
                .and_then(|v| v.as_oid())
                .ok_or(X509Error::Structure("policy oid"))?;
            oids.push(oid.clone());
        }
        Ok(CertificatePolicies(oids))
    }
}

/// The parsed extension set of a certificate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Extensions {
    /// BasicConstraints, if present.
    pub basic_constraints: Option<BasicConstraints>,
    /// KeyUsage, if present.
    pub key_usage: Option<KeyUsage>,
    /// ExtendedKeyUsage, if present.
    pub extended_key_usage: Option<ExtendedKeyUsage>,
    /// SubjectAltName, if present.
    pub subject_alt_name: Option<SubjectAltName>,
    /// NameConstraints, if present.
    pub name_constraints: Option<NameConstraints>,
    /// CertificatePolicies, if present.
    pub policies: Option<CertificatePolicies>,
    /// Extensions this model does not interpret: (oid, critical, raw DER value bytes).
    pub unknown: Vec<(Oid, bool, Vec<u8>)>,
}

impl Extensions {
    /// True when the certificate asserts the CA/B EV policy.
    pub fn is_ev(&self) -> bool {
        self.policies.as_ref().is_some_and(|p| p.is_ev())
    }

    /// Encode all present extensions as a SEQUENCE OF Extension.
    pub fn to_der_value(&self) -> Value {
        let mut items = Vec::new();
        let mut push = |oid: Oid, critical: bool, inner: Value| {
            let body = encode(&inner);
            let mut ext = vec![Value::Oid(oid)];
            if critical {
                ext.push(Value::Boolean(true));
            }
            ext.push(Value::OctetString(body));
            items.push(Value::Sequence(ext));
        };
        if let Some(bc) = self.basic_constraints {
            push(oids::basic_constraints(), true, bc.to_der());
        }
        if let Some(ku) = self.key_usage {
            push(oids::key_usage(), true, ku.to_der());
        }
        if let Some(eku) = &self.extended_key_usage {
            push(oids::ext_key_usage(), false, eku.to_der());
        }
        if let Some(san) = &self.subject_alt_name {
            push(oids::subject_alt_name(), false, san.to_der());
        }
        if let Some(nc) = &self.name_constraints {
            push(oids::name_constraints(), true, nc.to_der());
        }
        if let Some(p) = &self.policies {
            push(oids::certificate_policies(), false, p.to_der());
        }
        for (oid, critical, raw) in &self.unknown {
            let mut ext = vec![Value::Oid(oid.clone())];
            if *critical {
                ext.push(Value::Boolean(true));
            }
            ext.push(Value::OctetString(raw.clone()));
            items.push(Value::Sequence(ext));
        }
        Value::Sequence(items)
    }

    /// Decode a SEQUENCE OF Extension.
    pub fn from_der_value(value: &Value) -> Result<Extensions, X509Error> {
        let items = value
            .as_sequence()
            .ok_or(X509Error::Structure("extensions"))?;
        let mut out = Extensions::default();
        for item in items {
            let parts = item
                .as_sequence()
                .ok_or(X509Error::Structure("extension"))?;
            let (oid, critical, body) = match parts {
                [Value::Oid(oid), Value::OctetString(body)] => (oid, false, body),
                [Value::Oid(oid), Value::Boolean(c), Value::OctetString(body)] => (oid, *c, body),
                _ => return Err(X509Error::Structure("extension shape")),
            };
            let inner = decode(body)?;
            if *oid == oids::basic_constraints() {
                out.basic_constraints = Some(BasicConstraints::from_der(&inner)?);
            } else if *oid == oids::key_usage() {
                out.key_usage = Some(KeyUsage::from_der(&inner)?);
            } else if *oid == oids::ext_key_usage() {
                out.extended_key_usage = Some(ExtendedKeyUsage::from_der(&inner)?);
            } else if *oid == oids::subject_alt_name() {
                out.subject_alt_name = Some(SubjectAltName::from_der(&inner)?);
            } else if *oid == oids::name_constraints() {
                out.name_constraints = Some(NameConstraints::from_der(&inner)?);
            } else if *oid == oids::certificate_policies() {
                out.policies = Some(CertificatePolicies::from_der(&inner)?);
            } else {
                out.unknown.push((oid.clone(), critical, body.clone()));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DotSemantics;

    fn roundtrip(e: &Extensions) {
        let der = e.to_der_value();
        let back = Extensions::from_der_value(&der).unwrap();
        assert_eq!(&back, e);
    }

    #[test]
    fn empty_roundtrip() {
        roundtrip(&Extensions::default());
    }

    #[test]
    fn full_roundtrip() {
        roundtrip(&Extensions {
            basic_constraints: Some(BasicConstraints {
                ca: true,
                path_len: Some(0),
            }),
            key_usage: Some(KeyUsage::KEY_CERT_SIGN.union(KeyUsage::CRL_SIGN)),
            extended_key_usage: Some(ExtendedKeyUsage::server_auth()),
            subject_alt_name: Some(SubjectAltName::dns(&["example.com", "*.example.com"])),
            name_constraints: Some(NameConstraints {
                permitted: vec!["gouv.fr".into()],
                excluded: vec!["example.org".into()],
            }),
            policies: Some(CertificatePolicies(vec![oids::ev_policy()])),
            unknown: vec![(Oid::new(&[1, 2, 3, 4]), true, vec![0x05, 0x00])],
        });
    }

    #[test]
    fn basic_constraints_defaults() {
        roundtrip(&Extensions {
            basic_constraints: Some(BasicConstraints {
                ca: false,
                path_len: None,
            }),
            ..Default::default()
        });
        roundtrip(&Extensions {
            basic_constraints: Some(BasicConstraints {
                ca: true,
                path_len: None,
            }),
            ..Default::default()
        });
    }

    #[test]
    fn key_usage_bits() {
        let ku = KeyUsage::DIGITAL_SIGNATURE.union(KeyUsage::KEY_CERT_SIGN);
        assert!(ku.contains(KeyUsage::DIGITAL_SIGNATURE));
        assert!(!ku.contains(KeyUsage::CRL_SIGN));
        assert_eq!(ku.names(), vec!["digitalSignature", "keyCertSign"]);
        let der = ku.to_der();
        assert_eq!(KeyUsage::from_der(&der).unwrap(), ku);
    }

    #[test]
    fn key_usage_der_is_msb_first() {
        // digitalSignature = bit 0 = MSB of first octet.
        let der = KeyUsage::DIGITAL_SIGNATURE.to_der();
        assert_eq!(
            der,
            Value::BitString {
                unused: 7,
                bytes: vec![0x80]
            }
        );
        // keyCertSign = bit 5.
        let der = KeyUsage::KEY_CERT_SIGN.to_der();
        assert_eq!(
            der,
            Value::BitString {
                unused: 2,
                bytes: vec![0x04]
            }
        );
    }

    #[test]
    fn ev_detection() {
        let p = CertificatePolicies(vec![oids::dv_policy()]);
        assert!(!p.is_ev());
        let p = CertificatePolicies(vec![oids::dv_policy(), oids::ev_policy()]);
        assert!(p.is_ev());
    }

    #[test]
    fn name_constraints_allows() {
        let nc = NameConstraints {
            permitted: vec!["gov.tr".into(), "tr".into()],
            excluded: vec!["blocked.tr".into()],
        };
        let s = DotSemantics::Rfc5280;
        assert!(nc.allows("www.gov.tr", s));
        assert!(nc.allows("anything.tr", s));
        assert!(!nc.allows("www.blocked.tr", s));
        assert!(!nc.allows("google.com", s));
        // Empty permitted list = allow all except excluded.
        let nc = NameConstraints {
            permitted: vec![],
            excluded: vec!["bad.com".into()],
        };
        assert!(nc.allows("good.com", s));
        assert!(!nc.allows("x.bad.com", s));
    }
}
