//! Property-based tests: any certificate the builder can produce
//! round-trips through DER with every field intact.

use nrslb_x509::builder::CertificateBuilder;
use nrslb_x509::extensions::{BasicConstraints, ExtendedKeyUsage, KeyUsage, NameConstraints};
use nrslb_x509::{oids, Certificate, DistinguishedName};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct CertSpec {
    cn: String,
    sans: Vec<String>,
    serial: i128,
    not_before: i64,
    lifetime: i64,
    ca: Option<Option<u32>>, // None = no BC; Some(path_len)
    ku_bits: u16,
    eku: Vec<u8>, // indices into the known EKU set
    permitted: Vec<String>,
    excluded: Vec<String>,
    ev: bool,
}

fn dns_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}[a-z0-9]".prop_map(|s| s)
}

fn dns_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(dns_label(), 1..4).prop_map(|labels| labels.join("."))
}

fn cert_spec() -> impl Strategy<Value = CertSpec> {
    (
        "[ -~]{1,24}",
        proptest::collection::vec(dns_name(), 0..4),
        any::<i64>().prop_map(|s| s as i128),
        // Dates within GeneralizedTime's supported years.
        0i64..4_000_000_000,
        0i64..(50 * 365 * 86_400),
        proptest::option::of(proptest::option::of(0u32..16)),
        any::<u16>(),
        proptest::collection::vec(0u8..3, 0..3),
        proptest::collection::vec(dns_name(), 0..3),
        proptest::collection::vec(dns_name(), 0..2),
        any::<bool>(),
    )
        .prop_map(
            |(
                cn,
                sans,
                serial,
                not_before,
                lifetime,
                ca,
                ku_bits,
                eku,
                permitted,
                excluded,
                ev,
            )| {
                CertSpec {
                    cn,
                    sans,
                    serial,
                    not_before,
                    lifetime,
                    ca,
                    ku_bits,
                    eku,
                    permitted,
                    excluded,
                    ev,
                }
            },
        )
}

fn build(spec: &CertSpec) -> Certificate {
    let mut b = CertificateBuilder::new()
        .subject(DistinguishedName::common_name(&spec.cn))
        .serial(spec.serial)
        .validity_window(spec.not_before, spec.not_before + spec.lifetime);
    if !spec.sans.is_empty() {
        let refs: Vec<&str> = spec.sans.iter().map(|s| s.as_str()).collect();
        b = b.dns_names(&refs);
    }
    if let Some(path_len) = spec.ca {
        b = b.basic_constraints(BasicConstraints { ca: true, path_len });
    }
    if spec.ku_bits != 0 {
        b = b.key_usage(KeyUsage(spec.ku_bits));
    }
    if !spec.eku.is_empty() {
        let all = [
            oids::kp_server_auth(),
            oids::kp_client_auth(),
            oids::kp_email_protection(),
        ];
        let mut list: Vec<_> = spec.eku.iter().map(|&i| all[i as usize].clone()).collect();
        list.dedup();
        b = b.extended_key_usage(ExtendedKeyUsage(list));
    }
    if !spec.permitted.is_empty() || !spec.excluded.is_empty() {
        b = b.name_constraints(NameConstraints {
            permitted: spec.permitted.clone(),
            excluded: spec.excluded.clone(),
        });
    }
    if spec.ev {
        b = b.ev();
    }
    b.build_unsigned(DistinguishedName::ca("Prop Issuer", "PropOrg", "US"))
        .expect("spec is buildable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn der_roundtrip_preserves_all_fields(spec in cert_spec()) {
        let cert = build(&spec);
        let parsed = Certificate::from_der(cert.to_der()).expect("own DER parses");
        prop_assert_eq!(parsed.serial(), spec.serial);
        prop_assert_eq!(parsed.subject().cn(), Some(spec.cn.as_str()));
        prop_assert_eq!(parsed.validity().not_before, spec.not_before);
        prop_assert_eq!(parsed.validity().lifetime(), spec.lifetime);
        prop_assert_eq!(parsed.dns_names(), cert.dns_names());
        prop_assert_eq!(parsed.is_ca(), spec.ca.is_some());
        prop_assert_eq!(parsed.path_len(), spec.ca.flatten());
        prop_assert_eq!(parsed.is_ev(), spec.ev);
        prop_assert_eq!(parsed.extensions(), cert.extensions());
        prop_assert_eq!(parsed.fingerprint(), cert.fingerprint());
        prop_assert_eq!(parsed.tbs_der(), cert.tbs_der());
    }

    #[test]
    fn fingerprints_are_injective_over_specs(a in cert_spec(), b in cert_spec()) {
        let ca = build(&a);
        let cb = build(&b);
        if ca.to_der() != cb.to_der() {
            prop_assert_ne!(ca.fingerprint(), cb.fingerprint());
        }
    }

    #[test]
    fn parser_never_panics_on_mutated_certs(spec in cert_spec(), idx in 0usize..4096, byte in any::<u8>()) {
        let cert = build(&spec);
        let mut der = cert.to_der().to_vec();
        let i = idx % der.len();
        der[i] = byte;
        let _ = Certificate::from_der(&der); // no panic, any result
    }

    #[test]
    fn truncation_never_panics(spec in cert_spec(), cut in 0usize..4096) {
        let cert = build(&spec);
        let der = cert.to_der();
        let cut = cut % der.len();
        prop_assert!(Certificate::from_der(&der[..cut]).is_err());
    }
}
