//! Property-based tests: the extension set round-trips through real DER
//! bytes (not just the `Value` tree) for adversarially shaped inputs —
//! empty sequences, maximum-length OID arcs, arbitrary KeyUsage bit
//! patterns and critical-bit flips on unknown extensions.

use nrslb_der::{decode, encode, Oid};
use nrslb_x509::extensions::{
    CertificatePolicies, ExtendedKeyUsage, Extensions, KeyUsage, NameConstraints, SubjectAltName,
};
use proptest::prelude::*;

/// Full-fidelity round-trip through encoded bytes.
fn roundtrip(e: &Extensions) {
    let bytes = encode(&e.to_der_value());
    let value = decode(&bytes).expect("own encoding decodes");
    let back = Extensions::from_der_value(&value).expect("own encoding parses");
    assert_eq!(&back, e);
}

fn dns_name() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z][a-z0-9-]{0,8}[a-z0-9]", 1..4)
        .prop_map(|labels| labels.join("."))
}

/// OIDs under the private-enterprise arc, with tails up to `u64::MAX`
/// per arc — the worst case for base-128 arc encoding (10 bytes/arc).
fn private_oid() -> impl Strategy<Value = Oid> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(|tail| {
        let mut arcs = vec![1u64, 3, 6, 1, 4, 1];
        arcs.extend(tail);
        Oid::new(&arcs)
    })
}

/// A well-formed DER body for an unknown extension (the decoder insists
/// the octet-string payload parses as DER before preserving it raw).
fn unknown_body() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        Just(vec![0x05, 0x00]), // NULL
        proptest::collection::vec(any::<u8>(), 0..16)
            .prop_map(|bytes| { encode(&nrslb_der::Value::OctetString(bytes)) }),
        any::<i64>().prop_map(|n| encode(&nrslb_der::Value::Integer(n as i128))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn key_usage_bits_roundtrip(bits in any::<u16>()) {
        roundtrip(&Extensions {
            key_usage: Some(KeyUsage(bits)),
            ..Extensions::default()
        });
    }

    #[test]
    fn san_roundtrips_including_empty(names in proptest::collection::vec(dns_name(), 0..5)) {
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        roundtrip(&Extensions {
            subject_alt_name: Some(SubjectAltName::dns(&refs)),
            ..Extensions::default()
        });
    }

    #[test]
    fn name_constraints_roundtrip(
        permitted in proptest::collection::vec(dns_name(), 0..4),
        excluded in proptest::collection::vec(dns_name(), 0..4),
    ) {
        roundtrip(&Extensions {
            name_constraints: Some(NameConstraints { permitted, excluded }),
            ..Extensions::default()
        });
    }

    #[test]
    fn policies_with_extreme_oids_roundtrip(
        oids in proptest::collection::vec(private_oid(), 0..5)
    ) {
        roundtrip(&Extensions {
            policies: Some(CertificatePolicies(oids)),
            ..Extensions::default()
        });
    }

    #[test]
    fn eku_with_extreme_oids_roundtrip(
        oids in proptest::collection::vec(private_oid(), 0..5)
    ) {
        roundtrip(&Extensions {
            extended_key_usage: Some(ExtendedKeyUsage(oids)),
            ..Extensions::default()
        });
    }

    #[test]
    fn unknown_extensions_preserve_critical_bit(
        specs in proptest::collection::vec(
            (private_oid(), any::<bool>(), unknown_body()),
            1..4,
        )
    ) {
        let e = Extensions {
            unknown: specs,
            ..Extensions::default()
        };
        roundtrip(&e);
        // Flipping a critical bit must change the encoding: criticality
        // is carried on the wire, never inferred.
        let mut flipped = e.clone();
        flipped.unknown[0].1 = !flipped.unknown[0].1;
        prop_assert_ne!(encode(&e.to_der_value()), encode(&flipped.to_der_value()));
    }

    #[test]
    fn combined_extension_sets_roundtrip(
        bits in any::<u16>(),
        sans in proptest::collection::vec(dns_name(), 0..3),
        permitted in proptest::collection::vec(dns_name(), 0..3),
        policy_oids in proptest::collection::vec(private_oid(), 0..3),
        unknown in proptest::collection::vec(
            (private_oid(), any::<bool>(), unknown_body()),
            0..3,
        ),
    ) {
        let refs: Vec<&str> = sans.iter().map(String::as_str).collect();
        roundtrip(&Extensions {
            key_usage: Some(KeyUsage(bits)),
            subject_alt_name: Some(SubjectAltName::dns(&refs)),
            name_constraints: Some(NameConstraints {
                permitted,
                excluded: Vec::new(),
            }),
            policies: Some(CertificatePolicies(policy_oids)),
            unknown,
            ..Extensions::default()
        });
    }
}
