//! Conversion between Unix-epoch seconds and ASN.1 `GeneralizedTime`
//! (`YYYYMMDDHHMMSSZ`), using the proleptic Gregorian calendar.
//!
//! The civil-date arithmetic follows Howard Hinnant's `days_from_civil` /
//! `civil_from_days` algorithms, which are exact over the full supported
//! range.

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe as i64 * 365 + yoe as i64 / 4 - yoe as i64 / 100 + doy;
    era * 146097 + doe - 719468
}

/// Civil date `(year, month, day)` for days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Unix timestamp for a UTC civil datetime.
pub fn unix_from_datetime(y: i64, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> i64 {
    days_from_civil(y, mo, d) * 86400 + (h as i64) * 3600 + (mi as i64) * 60 + s as i64
}

/// Render a Unix timestamp as `YYYYMMDDHHMMSSZ`.
pub fn unix_to_generalized(ts: i64) -> String {
    let days = ts.div_euclid(86400);
    let secs = ts.rem_euclid(86400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{:04}{:02}{:02}{:02}{:02}{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// Parse `YYYYMMDDHHMMSSZ` into a Unix timestamp. Returns `None` on any
/// format violation (wrong length, missing `Z`, out-of-range fields).
pub fn generalized_to_unix(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() != 15 || bytes[14] != b'Z' {
        return None;
    }
    if !bytes[..14].iter().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> i64 { s[range].parse().unwrap() };
    let y = num(0..4);
    let mo = num(4..6) as u32;
    let d = num(6..8) as u32;
    let h = num(8..10) as u32;
    let mi = num(10..12) as u32;
    let sec = num(12..14) as u32;
    if !(1..=12).contains(&mo) || !(1..=31).contains(&d) || h > 23 || mi > 59 || sec > 59 {
        return None;
    }
    // Reject dates that do not round-trip (e.g. Feb 30).
    let ts = unix_from_datetime(y, mo, d, h, mi, sec);
    let (ry, rm, rd) = civil_from_days(ts.div_euclid(86400));
    if (ry, rm, rd) != (y, mo, d) {
        return None;
    }
    Some(ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(unix_to_generalized(0), "19700101000000Z");
    }

    #[test]
    fn paper_dates() {
        // Listing 1: November 30th 2022 = 1669784400 (05:00 UTC, the paper
        // uses US/Eastern midnight).
        assert_eq!(unix_to_generalized(1_669_784_400), "20221130050000Z");
        // Listing 2: June 1st 2016 = 1464753600 (04:00 UTC).
        assert_eq!(unix_to_generalized(1_464_753_600), "20160601040000Z");
    }

    #[test]
    fn roundtrip_wide_range() {
        // Every ~37 hours across ±80 years.
        let mut ts: i64 = -2_524_608_000; // 1890
        while ts < 4_102_444_800 {
            // 2100
            let s = unix_to_generalized(ts);
            assert_eq!(generalized_to_unix(&s), Some(ts), "ts={ts} s={s}");
            ts += 133_200;
        }
    }

    #[test]
    fn leap_years() {
        assert!(generalized_to_unix("20240229120000Z").is_some());
        assert_eq!(generalized_to_unix("20230229120000Z"), None);
        assert!(generalized_to_unix("20000229000000Z").is_some()); // 400-year rule
        assert_eq!(generalized_to_unix("19000229000000Z"), None); // 100-year rule
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(generalized_to_unix(""), None);
        assert_eq!(generalized_to_unix("2022113005000Z"), None); // short
        assert_eq!(generalized_to_unix("20221130050000"), None); // no Z
        assert_eq!(generalized_to_unix("20221330050000Z"), None); // month 13
        assert_eq!(generalized_to_unix("20221100050000Z"), None); // day 0
        assert_eq!(generalized_to_unix("20221130240000Z"), None); // hour 24
        assert_eq!(generalized_to_unix("2022113005000aZ"), None); // non-digit
    }

    #[test]
    fn negative_timestamps() {
        assert_eq!(unix_to_generalized(-1), "19691231235959Z");
        assert_eq!(generalized_to_unix("19691231235959Z"), Some(-1));
    }
}
