//! # `nrslb-der` — minimal ASN.1 DER encoding and decoding
//!
//! The X.509 substrate (`nrslb-x509`) encodes certificates with real DER so
//! that the corpus-analysis experiments (DESIGN.md E1/E2) exercise the same
//! parse-then-scan code path a real Web-PKI measurement would.
//!
//! The crate offers a tree-structured [`Value`] model plus strict
//! [`encode`]/[`decode`] functions. Decoding enforces DER's canonical
//! rules where they matter for signatures over encoded bytes:
//!
//! * definite, minimal-length encodings only;
//! * a depth limit (no stack exhaustion on adversarial input);
//! * no trailing bytes after the top-level value.
//!
//! Time values use `GeneralizedTime` backed by Unix-epoch seconds, with
//! proleptic-Gregorian conversion in [`time`].

#![warn(missing_docs)]

pub mod time;

use std::fmt;

/// Errors from DER encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerError {
    /// Input ended before a complete TLV was read.
    Truncated,
    /// A length octet sequence was not minimally encoded or was indefinite.
    BadLength,
    /// An unsupported or reserved tag was encountered.
    BadTag(u8),
    /// Value contents did not satisfy the type's constraints.
    BadValue(&'static str),
    /// Trailing bytes followed the top-level value.
    TrailingBytes,
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
}

impl fmt::Display for DerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerError::Truncated => write!(f, "truncated DER input"),
            DerError::BadLength => write!(f, "non-minimal or indefinite DER length"),
            DerError::BadTag(t) => write!(f, "unsupported DER tag 0x{t:02x}"),
            DerError::BadValue(what) => write!(f, "invalid DER value: {what}"),
            DerError::TrailingBytes => write!(f, "trailing bytes after DER value"),
            DerError::TooDeep => write!(f, "DER nesting exceeds depth limit"),
        }
    }
}

impl std::error::Error for DerError {}

/// Maximum nesting depth accepted by the decoder.
pub const MAX_DEPTH: usize = 32;

/// An object identifier: a sequence of integer arcs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub Vec<u64>);

impl Oid {
    /// Construct from arcs, e.g. `Oid::new(&[2, 5, 29, 19])`.
    pub fn new(arcs: &[u64]) -> Oid {
        Oid(arcs.to_vec())
    }

    fn write_dotted(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for arc in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{arc}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_dotted(f)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_dotted(f)
    }
}

/// A decoded DER value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// BOOLEAN (tag 0x01); DER requires 0x00 or 0xFF contents.
    Boolean(bool),
    /// INTEGER (tag 0x02), restricted to the `i128` range.
    Integer(i128),
    /// BIT STRING (tag 0x03) with a count of unused trailing bits.
    BitString {
        /// Number of unused bits in the final byte (0–7).
        unused: u8,
        /// The bit string contents.
        bytes: Vec<u8>,
    },
    /// OCTET STRING (tag 0x04).
    OctetString(Vec<u8>),
    /// NULL (tag 0x05).
    Null,
    /// OBJECT IDENTIFIER (tag 0x06).
    Oid(Oid),
    /// UTF8String (tag 0x0C).
    Utf8String(String),
    /// PrintableString (tag 0x13); contents restricted per X.680.
    PrintableString(String),
    /// IA5String (tag 0x16); ASCII only. Used for DNS names.
    Ia5String(String),
    /// GeneralizedTime (tag 0x18), stored as Unix-epoch seconds.
    GeneralizedTime(i64),
    /// SEQUENCE (tag 0x30).
    Sequence(Vec<Value>),
    /// SET (tag 0x31). The encoder does not sort; callers supply DER order.
    Set(Vec<Value>),
    /// Context-specific constructed value `[n]` (tag 0xA0 | n).
    ContextConstructed(u8, Vec<Value>),
    /// Context-specific primitive value `[n]` (tag 0x80 | n).
    ContextPrimitive(u8, Vec<u8>),
}

impl Value {
    /// Convenience: the contained sequence elements, if this is a SEQUENCE.
    pub fn as_sequence(&self) -> Option<&[Value]> {
        match self {
            Value::Sequence(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: the contained integer, if this is an INTEGER.
    pub fn as_integer(&self) -> Option<i128> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Convenience: the contained OID, if this is an OBJECT IDENTIFIER.
    pub fn as_oid(&self) -> Option<&Oid> {
        match self {
            Value::Oid(oid) => Some(oid),
            _ => None,
        }
    }

    /// Convenience: string contents for any of the string types.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8String(s) | Value::PrintableString(s) | Value::Ia5String(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: octet-string bytes.
    pub fn as_octets(&self) -> Option<&[u8]> {
        match self {
            Value::OctetString(b) => Some(b),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encode a [`Value`] to DER bytes.
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

/// Encode a [`Value`], appending to `out`.
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Boolean(b) => write_tlv(out, 0x01, &[if *b { 0xff } else { 0x00 }]),
        Value::Integer(i) => {
            let body = encode_integer(*i);
            write_tlv(out, 0x02, &body);
        }
        Value::BitString { unused, bytes } => {
            let mut body = Vec::with_capacity(bytes.len() + 1);
            body.push(*unused);
            body.extend_from_slice(bytes);
            write_tlv(out, 0x03, &body);
        }
        Value::OctetString(bytes) => write_tlv(out, 0x04, bytes),
        Value::Null => write_tlv(out, 0x05, &[]),
        Value::Oid(oid) => {
            let body = encode_oid(oid);
            write_tlv(out, 0x06, &body);
        }
        Value::Utf8String(s) => write_tlv(out, 0x0c, s.as_bytes()),
        Value::PrintableString(s) => write_tlv(out, 0x13, s.as_bytes()),
        Value::Ia5String(s) => write_tlv(out, 0x16, s.as_bytes()),
        Value::GeneralizedTime(ts) => {
            let s = time::unix_to_generalized(*ts);
            write_tlv(out, 0x18, s.as_bytes());
        }
        Value::Sequence(items) => write_constructed(out, 0x30, items),
        Value::Set(items) => write_constructed(out, 0x31, items),
        Value::ContextConstructed(n, items) => write_constructed(out, 0xa0 | (n & 0x1f), items),
        Value::ContextPrimitive(n, bytes) => write_tlv(out, 0x80 | (n & 0x1f), bytes),
    }
}

fn write_constructed(out: &mut Vec<u8>, tag: u8, items: &[Value]) {
    let mut body = Vec::new();
    for item in items {
        encode_into(item, &mut body);
    }
    write_tlv(out, tag, &body);
}

fn write_tlv(out: &mut Vec<u8>, tag: u8, body: &[u8]) {
    out.push(tag);
    write_len(out, body.len());
    out.extend_from_slice(body);
}

fn write_len(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (len as u64).to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let sig = &bytes[skip..];
        out.push(0x80 | sig.len() as u8);
        out.extend_from_slice(sig);
    }
}

fn encode_integer(i: i128) -> Vec<u8> {
    let bytes = i.to_be_bytes();
    // Minimal two's-complement: strip redundant leading 0x00/0xFF octets.
    let mut start = 0;
    while start < 15 {
        let cur = bytes[start];
        let next = bytes[start + 1];
        if (cur == 0x00 && next & 0x80 == 0) || (cur == 0xff && next & 0x80 != 0) {
            start += 1;
        } else {
            break;
        }
    }
    bytes[start..].to_vec()
}

fn encode_oid(oid: &Oid) -> Vec<u8> {
    let arcs = &oid.0;
    let mut out = Vec::new();
    // X.690: the first two arcs combine into one octet sequence.
    let (first, second) = match (arcs.first(), arcs.get(1)) {
        (Some(&a), Some(&b)) => (a, b),
        _ => (0, 0), // degenerate OID; encoded as 0.0
    };
    push_base128(&mut out, first * 40 + second);
    for &arc in arcs.iter().skip(2) {
        push_base128(&mut out, arc);
    }
    out
}

fn push_base128(out: &mut Vec<u8>, mut v: u64) {
    let mut stack = [0u8; 10];
    let mut n = 0;
    loop {
        stack[n] = (v & 0x7f) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            break;
        }
    }
    for i in (0..n).rev() {
        let mut b = stack[i];
        if i != 0 {
            b |= 0x80;
        }
        out.push(b);
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decode exactly one DER value from `input`; trailing bytes are an error.
pub fn decode(input: &[u8]) -> Result<Value, DerError> {
    let mut reader = Reader {
        data: input,
        pos: 0,
    };
    let value = reader.read_value(0)?;
    if reader.pos != input.len() {
        return Err(DerError::TrailingBytes);
    }
    Ok(value)
}

/// Decode one DER value from the front of `input`, returning the value and
/// the number of bytes consumed.
pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), DerError> {
    let mut reader = Reader {
        data: input,
        pos: 0,
    };
    let value = reader.read_value(0)?;
    Ok((value, reader.pos))
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DerError> {
        if self.data.len() - self.pos < n {
            return Err(DerError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn read_len(&mut self) -> Result<usize, DerError> {
        let first = self.take(1)?[0];
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7f) as usize;
        if n == 0 || n > 8 {
            // 0x80 is the BER indefinite form, forbidden in DER.
            return Err(DerError::BadLength);
        }
        let bytes = self.take(n)?;
        if bytes[0] == 0 {
            return Err(DerError::BadLength); // non-minimal
        }
        let mut len: u64 = 0;
        for &b in bytes {
            len = (len << 8) | b as u64;
        }
        if len < 0x80 || len > usize::MAX as u64 {
            return Err(DerError::BadLength); // must have used short form
        }
        Ok(len as usize)
    }

    fn read_value(&mut self, depth: usize) -> Result<Value, DerError> {
        if depth > MAX_DEPTH {
            return Err(DerError::TooDeep);
        }
        let tag = self.take(1)?[0];
        let len = self.read_len()?;
        let body = self.take(len)?;
        match tag {
            0x01 => match body {
                [0x00] => Ok(Value::Boolean(false)),
                [0xff] => Ok(Value::Boolean(true)),
                _ => Err(DerError::BadValue("boolean contents")),
            },
            0x02 => decode_integer(body),
            0x03 => {
                let (&unused, bytes) = body
                    .split_first()
                    .ok_or(DerError::BadValue("empty bit string"))?;
                if unused > 7 || (bytes.is_empty() && unused != 0) {
                    return Err(DerError::BadValue("bit string unused bits"));
                }
                Ok(Value::BitString {
                    unused,
                    bytes: bytes.to_vec(),
                })
            }
            0x04 => Ok(Value::OctetString(body.to_vec())),
            0x05 => {
                if body.is_empty() {
                    Ok(Value::Null)
                } else {
                    Err(DerError::BadValue("null contents"))
                }
            }
            0x06 => decode_oid(body),
            0x0c => String::from_utf8(body.to_vec())
                .map(Value::Utf8String)
                .map_err(|_| DerError::BadValue("utf8 string")),
            0x13 => {
                let s = std::str::from_utf8(body).map_err(|_| DerError::BadValue("printable"))?;
                if !s.bytes().all(is_printable_char) {
                    return Err(DerError::BadValue("printable string alphabet"));
                }
                Ok(Value::PrintableString(s.to_string()))
            }
            0x16 => {
                if !body.iter().all(|b| b.is_ascii()) {
                    return Err(DerError::BadValue("ia5 string"));
                }
                Ok(Value::Ia5String(
                    std::str::from_utf8(body).unwrap().to_string(),
                ))
            }
            0x18 => {
                let s = std::str::from_utf8(body)
                    .map_err(|_| DerError::BadValue("generalized time"))?;
                let ts = time::generalized_to_unix(s)
                    .ok_or(DerError::BadValue("generalized time format"))?;
                Ok(Value::GeneralizedTime(ts))
            }
            0x30 => Ok(Value::Sequence(decode_items(body, depth + 1)?)),
            0x31 => Ok(Value::Set(decode_items(body, depth + 1)?)),
            t if t & 0xe0 == 0xa0 => Ok(Value::ContextConstructed(
                t & 0x1f,
                decode_items(body, depth + 1)?,
            )),
            t if t & 0xe0 == 0x80 => Ok(Value::ContextPrimitive(t & 0x1f, body.to_vec())),
            t => Err(DerError::BadTag(t)),
        }
    }
}

fn is_printable_char(b: u8) -> bool {
    matches!(b,
        b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9'
        | b' ' | b'\'' | b'(' | b')' | b'+' | b',' | b'-' | b'.' | b'/' | b':' | b'=' | b'?')
}

fn decode_items(body: &[u8], depth: usize) -> Result<Vec<Value>, DerError> {
    let mut reader = Reader { data: body, pos: 0 };
    let mut items = Vec::new();
    while reader.pos < body.len() {
        items.push(reader.read_value(depth)?);
    }
    Ok(items)
}

fn decode_integer(body: &[u8]) -> Result<Value, DerError> {
    if body.is_empty() || body.len() > 16 {
        return Err(DerError::BadValue("integer length"));
    }
    if body.len() >= 2 {
        let redundant =
            (body[0] == 0x00 && body[1] & 0x80 == 0) || (body[0] == 0xff && body[1] & 0x80 != 0);
        if redundant {
            return Err(DerError::BadValue("non-minimal integer"));
        }
    }
    let negative = body[0] & 0x80 != 0;
    let mut bytes = if negative { [0xffu8; 16] } else { [0u8; 16] };
    bytes[16 - body.len()..].copy_from_slice(body);
    Ok(Value::Integer(i128::from_be_bytes(bytes)))
}

fn decode_oid(body: &[u8]) -> Result<Value, DerError> {
    if body.is_empty() {
        return Err(DerError::BadValue("empty oid"));
    }
    let mut arcs = Vec::new();
    let mut cur: u64 = 0;
    let mut in_arc = false;
    for &b in body {
        if !in_arc && b == 0x80 {
            return Err(DerError::BadValue("non-minimal oid arc"));
        }
        if cur > (u64::MAX >> 7) {
            return Err(DerError::BadValue("oid arc overflow"));
        }
        cur = (cur << 7) | (b & 0x7f) as u64;
        if b & 0x80 == 0 {
            if arcs.is_empty() {
                // First encoded datum combines the first two arcs.
                let (a, rest) = if cur < 40 {
                    (0, cur)
                } else if cur < 80 {
                    (1, cur - 40)
                } else {
                    (2, cur - 80)
                };
                arcs.push(a);
                arcs.push(rest);
            } else {
                arcs.push(cur);
            }
            cur = 0;
            in_arc = false;
        } else {
            in_arc = true;
        }
    }
    if in_arc {
        return Err(DerError::BadValue("truncated oid arc"));
    }
    Ok(Value::Oid(Oid(arcs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let bytes = encode(v);
        let back = decode(&bytes).unwrap_or_else(|e| panic!("decode {v:?}: {e}"));
        assert_eq!(&back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&Value::Boolean(true));
        roundtrip(&Value::Boolean(false));
        roundtrip(&Value::Null);
        roundtrip(&Value::OctetString(vec![1, 2, 3]));
        roundtrip(&Value::OctetString(vec![]));
        roundtrip(&Value::Utf8String("héllo".into()));
        roundtrip(&Value::PrintableString("Example CA 1".into()));
        roundtrip(&Value::Ia5String("www.example.com".into()));
        roundtrip(&Value::BitString {
            unused: 3,
            bytes: vec![0xa8],
        });
        roundtrip(&Value::GeneralizedTime(0));
        roundtrip(&Value::GeneralizedTime(1_669_784_400)); // Nov 30 2022 (paper Listing 1)
        roundtrip(&Value::GeneralizedTime(-86400));
    }

    #[test]
    fn integer_roundtrips() {
        for i in [
            0i128,
            1,
            -1,
            127,
            128,
            -128,
            -129,
            255,
            256,
            i128::from(i64::MAX),
            i128::from(i64::MIN),
            i128::MAX,
            i128::MIN,
        ] {
            roundtrip(&Value::Integer(i));
        }
    }

    #[test]
    fn integer_known_encodings() {
        assert_eq!(encode(&Value::Integer(0)), vec![0x02, 0x01, 0x00]);
        assert_eq!(encode(&Value::Integer(127)), vec![0x02, 0x01, 0x7f]);
        assert_eq!(encode(&Value::Integer(128)), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(encode(&Value::Integer(-1)), vec![0x02, 0x01, 0xff]);
        assert_eq!(encode(&Value::Integer(-128)), vec![0x02, 0x01, 0x80]);
    }

    #[test]
    fn rejects_non_minimal_integer() {
        assert!(decode(&[0x02, 0x02, 0x00, 0x01]).is_err());
        assert!(decode(&[0x02, 0x02, 0xff, 0xff]).is_err());
    }

    #[test]
    fn oid_roundtrips() {
        roundtrip(&Value::Oid(Oid::new(&[2, 5, 29, 19])));
        roundtrip(&Value::Oid(Oid::new(&[1, 3, 6, 1, 5, 5, 7, 3, 1])));
        roundtrip(&Value::Oid(Oid::new(&[2, 999, 3])));
        roundtrip(&Value::Oid(Oid::new(&[0, 39])));
    }

    #[test]
    fn oid_known_encoding() {
        // id-ce-basicConstraints = 2.5.29.19 -> 55 1D 13
        assert_eq!(
            encode(&Value::Oid(Oid::new(&[2, 5, 29, 19]))),
            vec![0x06, 0x03, 0x55, 0x1d, 0x13]
        );
    }

    #[test]
    fn nested_structures() {
        roundtrip(&Value::Sequence(vec![
            Value::Integer(2),
            Value::Sequence(vec![
                Value::Oid(Oid::new(&[2, 5, 4, 3])),
                Value::Utf8String("Root CA".into()),
            ]),
            Value::ContextConstructed(3, vec![Value::OctetString(vec![0xde, 0xad])]),
            Value::ContextPrimitive(2, b"example.com".to_vec()),
            Value::Set(vec![Value::Boolean(true)]),
        ]));
    }

    #[test]
    fn long_lengths() {
        roundtrip(&Value::OctetString(vec![7u8; 127]));
        roundtrip(&Value::OctetString(vec![7u8; 128]));
        roundtrip(&Value::OctetString(vec![7u8; 255]));
        roundtrip(&Value::OctetString(vec![7u8; 256]));
        roundtrip(&Value::OctetString(vec![7u8; 65536]));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode(&Value::Null);
        bytes.push(0x00);
        assert_eq!(decode(&bytes), Err(DerError::TrailingBytes));
    }

    #[test]
    fn decode_prefix_reports_consumed() {
        let mut bytes = encode(&Value::Integer(5));
        let len = bytes.len();
        bytes.extend_from_slice(&encode(&Value::Boolean(true)));
        let (v, used) = decode_prefix(&bytes).unwrap();
        assert_eq!(v, Value::Integer(5));
        assert_eq!(used, len);
    }

    #[test]
    fn rejects_truncated() {
        let bytes = encode(&Value::OctetString(vec![1, 2, 3, 4]));
        for cut in 1..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_indefinite_and_non_minimal_lengths() {
        assert_eq!(decode(&[0x04, 0x80, 0x00, 0x00]), Err(DerError::BadLength));
        // 0x81 0x05: long form used for a length < 0x80.
        assert_eq!(
            decode(&[0x04, 0x81, 0x05, 1, 2, 3, 4, 5]),
            Err(DerError::BadLength)
        );
    }

    #[test]
    fn rejects_bad_boolean() {
        assert!(decode(&[0x01, 0x01, 0x01]).is_err());
        assert!(decode(&[0x01, 0x02, 0xff, 0xff]).is_err());
    }

    #[test]
    fn rejects_excessive_depth() {
        let mut v = Value::Null;
        for _ in 0..MAX_DEPTH + 2 {
            v = Value::Sequence(vec![v]);
        }
        let bytes = encode(&v);
        assert_eq!(decode(&bytes), Err(DerError::TooDeep));
    }

    #[test]
    fn rejects_unknown_tag() {
        assert_eq!(decode(&[0x19, 0x00]), Err(DerError::BadTag(0x19)));
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_input() {
        // Cheap deterministic fuzz: decode pseudo-random byte strings.
        let mut state = 0x12345678u64;
        for _ in 0..2000 {
            let len = (state % 64) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bytes.push((state >> 33) as u8);
            }
            let _ = decode(&bytes); // must not panic
        }
    }
}
