//! Concurrency guarantees of the registry: handles are shared atomics,
//! so hammering one counter/histogram from many threads must lose no
//! updates — mirroring the trust daemon's 10-client concurrency test,
//! scaled up to 16 writer threads.

use nrslb_obs::Registry;
use std::sync::Arc;

const THREADS: usize = 16;
const OPS_PER_THREAD: u64 = 10_000;

#[test]
fn sixteen_threads_one_counter_exact_total() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("nrslb_hammer_total", "contended counter");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Half the threads go through get-or-create each time
                // (the registration path), half reuse a local handle
                // (the hot path) — totals must be exact either way.
                if t % 2 == 0 {
                    for _ in 0..OPS_PER_THREAD {
                        registry
                            .counter("nrslb_hammer_total", "contended counter")
                            .inc();
                    }
                } else {
                    let local = registry.counter("nrslb_hammer_total", "contended counter");
                    for _ in 0..OPS_PER_THREAD {
                        local.inc();
                    }
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * OPS_PER_THREAD);
    let text = registry.render_text();
    assert!(text.contains(&format!(
        "nrslb_hammer_total {}",
        THREADS as u64 * OPS_PER_THREAD
    )));
}

#[test]
fn sixteen_threads_one_histogram_exact_count_and_sum() {
    let registry = Arc::new(Registry::new());
    let histogram = registry.histogram("nrslb_hammer_latency_us", "contended histogram");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Deterministic per-thread values so the expected
                    // sum is computable exactly.
                    histogram.observe(t as u64 + i % 7);
                }
            });
        }
    });
    let expected_count = THREADS as u64 * OPS_PER_THREAD;
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..OPS_PER_THREAD).map(|i| t + i % 7).sum::<u64>())
        .sum();
    assert_eq!(histogram.count(), expected_count, "no lost count updates");
    assert_eq!(histogram.sum(), expected_sum, "no lost sum updates");
}

#[test]
fn concurrent_registration_of_distinct_series_is_complete() {
    let registry = Arc::new(Registry::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                let shard = format!("shard-{t}");
                let counter = registry.counter_with(
                    "nrslb_sharded_total",
                    &[("shard", &shard)],
                    "per-shard counter",
                );
                counter.add(t as u64 + 1);
            });
        }
    });
    let text = registry.render_text();
    for t in 0..THREADS {
        assert!(
            text.contains(&format!(
                "nrslb_sharded_total{{shard=\"shard-{t}\"}} {}",
                t + 1
            )),
            "missing series for shard {t} in:\n{text}"
        );
    }
}
