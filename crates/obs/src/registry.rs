//! The metric registry: named families of counters, gauges and
//! latency histograms, with a Prometheus-style text exposition.
//!
//! Design constraints (see DESIGN.md §6):
//!
//! * **Global-free.** There is no process-wide default registry; every
//!   component takes an `Arc<Registry>` (or builds a private one), so
//!   tests and the deterministic simulator get isolated, assertable
//!   metric state.
//! * **Lock-free hot path.** Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are cheap clones around atomics; registration is the
//!   only operation that takes the registry lock. Instrumented code
//!   creates its handles once and then only touches atomics.
//! * **Deterministic exposition.** Families and series render in sorted
//!   order, so two runs with the same metric state produce byte-equal
//!   text.

use crate::clock::{Clock, WallClock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter handle. Clones share the value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down. Clones share it.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log-2 buckets. Bucket `i` holds values whose highest set
/// bit is `i - 1` (upper bound `2^i - 1`); bucket 0 holds exact zeros.
/// 41 buckets cover one microsecond to ~12.7 days of latency.
const BUCKETS: usize = 41;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A log-bucketed histogram handle (power-of-two buckets), intended for
/// microsecond latencies. Recording is two atomic adds and an atomic
/// increment; quantiles are extracted on demand from the bucket counts.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), as the upper bound of the
    /// log-2 bucket containing that rank — an overestimate by at most
    /// 2x, which is the precision log bucketing buys its O(1) cost.
    /// Returns 0 when nothing was observed.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// The standard reporting triple: p50, p90, p99.
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.5), self.quantile(0.9), self.quantile(0.99))
    }
}

/// An RAII timing guard: created at the top of an operation, it records
/// the elapsed microseconds (per the registry's [`Clock`]) into its
/// histogram when dropped — on the error path too.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    clock: Arc<dyn Clock>,
    start_micros: i64,
}

impl Span {
    /// Start timing against `histogram`, reading `clock`.
    pub fn enter(histogram: Histogram, clock: Arc<dyn Clock>) -> Span {
        let start_micros = clock.now_micros();
        Span {
            histogram,
            clock,
            start_micros,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.clock.now_micros().saturating_sub(self.start_micros);
        self.histogram.observe(elapsed.max(0) as u64);
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            // Histograms render quantile series, which is the summary
            // exposition type.
            Metric::Histogram(_) => "summary",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    /// Rendered label pairs (`key="value"`, comma-joined) → series.
    /// Empty string = the unlabelled series.
    series: BTreeMap<String, Metric>,
}

/// A global-free registry of metric families.
///
/// Handles returned by [`Registry::counter`] and friends are
/// get-or-create: asking twice for the same (name, labels) returns
/// handles sharing one value, so independent components can contribute
/// to one family without coordination.
#[derive(Debug)]
pub struct Registry {
    clock: Arc<dyn Clock>,
    families: RwLock<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// A registry whose spans read the wall clock.
    pub fn new() -> Registry {
        Registry::with_clock(Arc::new(WallClock))
    }

    /// A registry whose spans read `clock` — tests and the simulator
    /// pass a [`crate::VirtualClock`] so recorded durations are exact.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Registry {
        Registry {
            clock,
            families: RwLock::new(BTreeMap::new()),
        }
    }

    /// A fresh shared registry on the wall clock.
    pub fn shared() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    /// The clock spans read.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Start a [`Span`] recording into `histogram` on drop.
    pub fn span(&self, histogram: &Histogram) -> Span {
        Span::enter(histogram.clone(), Arc::clone(&self.clock))
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Get-or-create a counter with label pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.get_or_insert(name, labels, help, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Get-or-create a gauge with label pairs.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.get_or_insert(name, labels, help, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get-or-create an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Get-or-create a histogram with label pairs.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        match self.get_or_insert(name, labels, help, || {
            Metric::Histogram(Histogram::default())
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let series_key = render_labels(labels);
        if let Some(family) = self.families.read().expect("registry lock").get(name) {
            if let Some(metric) = family.series.get(&series_key) {
                return metric.clone();
            }
        }
        let mut families = self.families.write().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        family.series.entry(series_key).or_insert_with(make).clone()
    }

    /// Render every family in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, one line per series; histograms as
    /// summaries with `quantile` labels plus `_sum` / `_count`).
    pub fn render_text(&self) -> String {
        let families = self.families.read().expect("registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = family
                .series
                .values()
                .next()
                .map(Metric::kind)
                .unwrap_or("untyped");
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", name, braced(labels), c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", name, braced(labels), g.get());
                    }
                    Metric::Histogram(h) => {
                        for (q, v) in [
                            ("0.5", h.quantile(0.5)),
                            ("0.9", h.quantile(0.9)),
                            ("0.99", h.quantile(0.99)),
                        ] {
                            let quantile = join_labels(labels, &format!("quantile=\"{q}\""));
                            let _ = writeln!(out, "{}{} {}", name, braced(&quantile), v);
                        }
                        let _ = writeln!(out, "{}_sum{} {}", name, braced(labels), h.sum());
                        let _ = writeln!(out, "{}_count{} {}", name, braced(labels), h.count());
                    }
                }
            }
        }
        out
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    pairs.sort();
    pairs.join(",")
}

fn join_labels(a: &str, b: &str) -> String {
    if a.is_empty() {
        b.to_string()
    } else {
        format!("{a},{b}")
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn handles_share_values_across_get_or_create() {
        let registry = Registry::new();
        let a = registry.counter("nrslb_test_total", "a test counter");
        let b = registry.counter("nrslb_test_total", "a test counter");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let registry = Registry::new();
        let ok = registry.counter_with("nrslb_requests_total", &[("status", "ok")], "requests");
        let err = registry.counter_with("nrslb_requests_total", &[("status", "err")], "requests");
        ok.add(2);
        err.inc();
        assert_eq!(ok.get(), 2);
        assert_eq!(err.get(), 1);
        let text = registry.render_text();
        assert!(text.contains("nrslb_requests_total{status=\"ok\"} 2"));
        assert!(text.contains("nrslb_requests_total{status=\"err\"} 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let registry = Registry::new();
        registry.counter("nrslb_conflict", "as counter");
        registry.gauge("nrslb_conflict", "as gauge");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let registry = Registry::new();
        let g = registry.gauge("nrslb_queue_depth", "queued items");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.observe(100); // bucket bound 127
        }
        for _ in 0..10 {
            h.observe(10_000); // bucket bound 16383
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 10_000);
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.9), 127);
        assert_eq!(h.quantile(0.99), 16_383);
        assert_eq!(h.quantiles(), (127, 127, 16_383));
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn span_records_virtual_duration_exactly() {
        let clock = VirtualClock::shared(0);
        let registry = Registry::with_clock(clock.clone());
        let h = registry.histogram("nrslb_op_latency_us", "operation latency");
        {
            let _span = registry.span(&h);
            clock.sleep_ms(7);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7_000, "exactly 7ms of virtual time");
    }

    #[test]
    fn span_records_on_error_paths_too() {
        let clock = VirtualClock::shared(0);
        let registry = Registry::with_clock(clock.clone());
        let h = registry.histogram("nrslb_op_latency_us", "operation latency");
        fn failing_op(registry: &Registry, h: &Histogram, clock: &VirtualClock) -> Result<(), ()> {
            let _span = registry.span(h);
            clock.sleep_ms(3);
            Err(())
        }
        let result = failing_op(&registry, &h, &clock);
        assert!(result.is_err());
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 3_000);
    }

    #[test]
    fn render_text_is_deterministic_and_parseable() {
        let registry = Registry::new();
        registry.counter("nrslb_b_total", "second family").inc();
        registry.gauge("nrslb_a_depth", "first family").set(4);
        let h = registry.histogram("nrslb_c_latency_us", "latency");
        h.observe(10);
        let text = registry.render_text();
        assert_eq!(text, registry.render_text(), "stable across renders");
        // Families in sorted order.
        let a = text.find("nrslb_a_depth").unwrap();
        let b = text.find("nrslb_b_total").unwrap();
        let c = text.find("nrslb_c_latency_us").unwrap();
        assert!(a < b && b < c);
        // Every non-comment line is `name{labels}? value` with a numeric
        // value — the shape a Prometheus scraper requires.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("metric line has value");
            value.parse::<f64>().expect("numeric value");
        }
        assert!(text.contains("# TYPE nrslb_c_latency_us summary"));
        assert!(text.contains("nrslb_c_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("nrslb_c_latency_us_count 1"));
    }
}
