//! # `nrslb-obs` — the observability substrate
//!
//! A from-scratch, zero-dependency metrics/tracing layer for the nrslb
//! workspace (DESIGN.md §6):
//!
//! * [`registry`] — a global-free [`Registry`] of named metric families:
//!   atomic [`Counter`]s and [`Gauge`]s, log-bucketed [`Histogram`]s
//!   with p50/p90/p99 extraction, and [`Span`] RAII guards that record
//!   durations into histograms. [`Registry::render_text`] emits the
//!   Prometheus text exposition format, served by the trust daemon and
//!   dumped by the benches.
//! * [`clock`] — the injectable [`Clock`] (moved here from `nrslb-rsf`,
//!   which re-exports it): [`WallClock`] in production, [`VirtualClock`]
//!   in tests and the deterministic simulator, so span durations under
//!   virtual time are exact, assertable numbers.
//!
//! The crate sits below every other nrslb crate (it depends on nothing,
//! not even the vendored shims), so the Datalog engine, the validator,
//! the sync engine and the daemon can all report into one registry
//! without dependency cycles.

#![warn(missing_docs)]

pub mod clock;
pub mod registry;

pub use clock::{Clock, VirtualClock, WallClock};
pub use registry::{Counter, Gauge, Histogram, Registry, Span};
