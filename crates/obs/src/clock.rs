//! Injectable time for the whole workspace.
//!
//! This module started life in `nrslb-rsf` (whose sans-IO sync engine
//! needed `now` and `sleep` it could virtualize) and moved here when the
//! observability layer grew spans that must be assertable under virtual
//! time. `nrslb-rsf` re-exports these types, so `nrslb_rsf::Clock` and
//! `nrslb_obs::Clock` are the same trait: a subscriber, a simulator and
//! a metric registry can all share one [`VirtualClock`].
//!
//! Production code uses [`WallClock`]; tests and the deterministic
//! simulator inject a [`VirtualClock`] whose `sleep_ms` advances virtual
//! time instantly, so resilience suites run in microseconds and span
//! durations are exact, reproducible numbers instead of jittery wall
//! readings.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A source of time plus the ability to wait, injectable wherever the
/// engine would otherwise reach for `SystemTime::now` or
/// `thread::sleep`.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Milliseconds since the clock's epoch.
    fn now_millis(&self) -> i64;

    /// Seconds since the clock's epoch (what feed timestamps use).
    fn now_secs(&self) -> i64 {
        self.now_millis() / 1_000
    }

    /// Microseconds since the clock's epoch (what span durations use).
    /// Defaults to millisecond resolution; [`WallClock`] overrides with
    /// the real sub-millisecond reading.
    fn now_micros(&self) -> i64 {
        self.now_millis().saturating_mul(1_000)
    }

    /// Wait for `ms` milliseconds. A wall clock blocks the thread; a
    /// virtual clock advances itself and returns immediately.
    fn sleep_ms(&self, ms: u64);
}

/// The real clock: unix time, real sleeping.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_millis(&self) -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0)
    }

    fn now_micros(&self) -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as i64)
            .unwrap_or(0)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// A deterministic clock that only moves when told to (or when someone
/// "sleeps" on it). Shared by `Arc`, so a simulator and the subscribers
/// it drives all observe the same instant.
#[derive(Debug, Default)]
pub struct VirtualClock {
    millis: AtomicI64,
}

impl VirtualClock {
    /// A virtual clock starting at `start_secs` (unix-like seconds).
    pub fn new(start_secs: i64) -> VirtualClock {
        VirtualClock {
            millis: AtomicI64::new(start_secs.saturating_mul(1_000)),
        }
    }

    /// A shared handle to a fresh virtual clock.
    pub fn shared(start_secs: i64) -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new(start_secs))
    }

    /// Move time forward by `ms` milliseconds.
    pub fn advance_ms(&self, ms: i64) {
        self.millis.fetch_add(ms.max(0), Ordering::SeqCst);
    }

    /// Move time forward by `secs` seconds.
    pub fn advance_secs(&self, secs: i64) {
        self.advance_ms(secs.saturating_mul(1_000));
    }

    /// Jump to an absolute time in milliseconds. Never moves backwards
    /// (a scheduler popping same-instant events may "jump" to now).
    pub fn set_millis(&self, millis: i64) {
        self.millis.fetch_max(millis, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_millis(&self) -> i64 {
        self.millis.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_ms(ms as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_sleep_advances_instead_of_blocking() {
        let clock = VirtualClock::shared(100);
        assert_eq!(clock.now_secs(), 100);
        let started = std::time::Instant::now();
        clock.sleep_ms(5_000);
        assert!(started.elapsed().as_millis() < 1_000, "must not block");
        assert_eq!(clock.now_secs(), 105);
    }

    #[test]
    fn virtual_clock_never_rewinds() {
        let clock = VirtualClock::new(10);
        clock.set_millis(50_000);
        clock.set_millis(20_000);
        assert_eq!(clock.now_millis(), 50_000);
    }

    #[test]
    fn wall_clock_reads_unix_time() {
        let now = WallClock.now_secs();
        assert!(now > 1_600_000_000, "wall clock should be past 2020");
    }

    #[test]
    fn micros_default_tracks_millis() {
        let clock = VirtualClock::new(2);
        assert_eq!(clock.now_micros(), 2_000_000);
        clock.advance_ms(3);
        assert_eq!(clock.now_micros(), 2_003_000);
    }
}
