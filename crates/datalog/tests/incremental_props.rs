//! Property tests for incremental delta maintenance: after any random
//! sequence of EDB insert/remove batches, the incrementally maintained
//! overlay must be byte-identical (canonical sorted fact text) to a
//! from-scratch evaluation over the post-delta base — in both the
//! counting path (`Auto`) and the delete-and-rederive path
//! (`ForceDRed`) — and effective insert-then-remove round-trips must
//! restore the database exactly.

use nrslb_datalog::intern::ITuple;
use nrslb_datalog::{
    delta_fact, CompiledProgram, Database, IncrementalState, LayeredDatabase, MaintenancePolicy,
    Program, Sym, Val,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Same family as `proptest_layered`'s generator: chains of derived
/// predicates over `e0`/`e1`, negation of strictly earlier strata,
/// optional positive recursion (`c{i}`) so `Auto` classifies some
/// strata counting and some DRed.
#[derive(Debug, Clone)]
struct RandomProgram {
    rules: Vec<String>,
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    proptest::collection::vec((0u8..5, any::<bool>(), any::<bool>()), 1..5).prop_map(|specs| {
        let mut rules = Vec::new();
        for (i, (template, negate, extra_edge)) in specs.into_iter().enumerate() {
            let head = format!("d{i}");
            let neg_part = if negate && i > 0 {
                format!(", \\+d{}(X)", i - 1)
            } else {
                String::new()
            };
            let body = match template {
                0 => format!("e0(X, Y){neg_part}"),
                1 => format!("e0(X, Z), e1(Z, Y){neg_part}"),
                2 if i > 0 => format!("d{}(X, Y){}", i - 1, neg_part.replace("(X)", "(Y)")),
                3 => format!("e1(X, Y), X < Y{neg_part}"),
                _ => format!("e0(X, Y), e0(Y, X){neg_part}"),
            };
            rules.push(format!("{head}(X, Y) :- {body}."));
            if negate && i > 0 {
                rules.push(format!("d{}(X) :- e0(X, _).", i - 1));
            }
            if extra_edge {
                rules.push(format!("c{i}(X, Y) :- e0(X, Y)."));
                rules.push(format!("c{i}(X, Z) :- c{i}(X, Y), e0(Y, Z)."));
            }
        }
        RandomProgram { rules }
    })
}

/// One EDB mutation: insert/remove one tuple of `e0`, `e1`, or the
/// derived-but-also-EDB predicate `d0` (exercising base support masking
/// derived tuples). The small value domain makes duplicate inserts,
/// removals of absent tuples, and insert-then-remove collisions across
/// batches common.
type Op = (bool, u8, i64, i64);

fn pred_of(rel: u8) -> &'static str {
    match rel {
        0 => "e0",
        1 => "e1",
        _ => "d0",
    }
}

fn op_fact(op: &Op) -> (Sym, ITuple) {
    delta_fact(pred_of(op.1), &[Val::int(op.2), Val::int(op.3)])
}

fn batches() -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0u8..3, 0i64..5, 0i64..5), 1..8),
        1..5,
    )
}

fn initial_base(facts: &[(u8, i64, i64)]) -> Database {
    let mut db = Database::new();
    for (rel, a, b) in facts {
        db.add_fact(pred_of(*rel), vec![Val::int(*a), Val::int(*b)]);
    }
    db
}

fn compile(rules: &[String]) -> Option<CompiledProgram> {
    let parsed = Program::parse(&rules.join("\n")).ok()?;
    CompiledProgram::compile(&parsed).ok()
}

/// The canonical form two maintenance paths must agree on.
fn canon(db: &Database) -> String {
    db.to_sorted_fact_text()
}

const POLICIES: [MaintenancePolicy; 2] = [MaintenancePolicy::Auto, MaintenancePolicy::ForceDRed];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // After every delta batch, the maintained overlay equals a
    // from-scratch evaluation over the same (mutated) base, byte for
    // byte — and the reported outcome matches reality: added tuples
    // visible, removed tuples gone, no overlap.
    #[test]
    fn delta_maintenance_matches_scratch(
        program in random_program(),
        facts in proptest::collection::vec((0u8..3, 0i64..5, 0i64..5), 0..15),
        deltas in batches(),
    ) {
        let Some(compiled) = compile(&program.rules) else { return Ok(()) };

        for policy in POLICIES {
            let mut db = LayeredDatabase::new(Arc::new(initial_base(&facts)));
            let mut state = IncrementalState::new(policy);
            // Baseline: must itself match scratch.
            prop_assume!(compiled.apply_delta(&mut db, &mut state, &[], &[]).is_ok());

            for batch in &deltas {
                let added: Vec<_> =
                    batch.iter().filter(|op| op.0).map(op_fact).collect();
                let removed: Vec<_> =
                    batch.iter().filter(|op| !op.0).map(op_fact).collect();
                let outcome = compiled
                    .apply_delta(&mut db, &mut state, &added, &removed)
                    .unwrap();

                for (p, t) in &outcome.added {
                    prop_assert!(
                        db.icontains(*p, t.as_slice()),
                        "{policy:?}: reported-added tuple is not visible"
                    );
                }
                for (p, t) in &outcome.removed {
                    prop_assert!(
                        !db.icontains(*p, t.as_slice()),
                        "{policy:?}: reported-removed tuple is still visible"
                    );
                }

                let scratch = compiled
                    .evaluate(Arc::new(db.base().clone()))
                    .unwrap();
                prop_assert_eq!(
                    canon(db.overlay()),
                    canon(scratch.overlay()),
                    "{:?}: incremental overlay diverged from scratch",
                    policy
                );
            }
        }
    }

    // Inserting a batch of genuinely new tuples and then removing the
    // same batch restores the database (base and overlay) exactly, and
    // the two outcomes mirror each other.
    #[test]
    fn effective_insert_then_remove_roundtrips(
        program in random_program(),
        facts in proptest::collection::vec((0u8..3, 0i64..5, 0i64..5), 0..12),
        batch in proptest::collection::vec((0u8..3, 0i64..5, 0i64..5), 1..8),
    ) {
        let Some(compiled) = compile(&program.rules) else { return Ok(()) };

        for policy in POLICIES {
            let mut db = LayeredDatabase::new(Arc::new(initial_base(&facts)));
            let mut state = IncrementalState::new(policy);
            prop_assume!(compiled.apply_delta(&mut db, &mut state, &[], &[]).is_ok());

            // Only tuples not already in the base round-trip: removing a
            // pre-existing tuple would (correctly) not restore it.
            let fresh: Vec<_> = batch
                .iter()
                .map(|(rel, a, b)| (*rel, *a, *b))
                .map(|op| op_fact(&(true, op.0, op.1, op.2)))
                .filter(|(p, t)| !db.base().icontains(*p, t.as_slice()))
                .collect();

            let before_base = canon(db.base());
            let before_overlay = canon(db.overlay());

            let ins = compiled.apply_delta(&mut db, &mut state, &fresh, &[]).unwrap();
            let rem = compiled.apply_delta(&mut db, &mut state, &[], &fresh).unwrap();

            prop_assert_eq!(canon(db.base()), before_base, "{:?}: base not restored", policy);
            prop_assert_eq!(
                canon(db.overlay()),
                before_overlay,
                "{:?}: overlay not restored",
                policy
            );
            // What the insert made visible is exactly what the removal
            // took away.
            let mut gained: Vec<String> =
                ins.added.iter().map(|(p, t)| format!("{p:?}{t:?}")).collect();
            let mut lost: Vec<String> =
                rem.removed.iter().map(|(p, t)| format!("{p:?}{t:?}")).collect();
            gained.sort();
            lost.sort();
            prop_assert_eq!(gained, lost, "{:?}: asymmetric round-trip", policy);
            prop_assert!(ins.removed.is_empty());
            prop_assert!(rem.added.is_empty());
        }
    }

    // A no-op delta (removing absent tuples, re-inserting present ones)
    // reports no changes and leaves the database untouched.
    #[test]
    fn noop_deltas_are_empty(
        program in random_program(),
        facts in proptest::collection::vec((0u8..3, 0i64..5, 0i64..5), 1..12),
    ) {
        let Some(compiled) = compile(&program.rules) else { return Ok(()) };

        for policy in POLICIES {
            let mut db = LayeredDatabase::new(Arc::new(initial_base(&facts)));
            let mut state = IncrementalState::new(policy);
            prop_assume!(compiled.apply_delta(&mut db, &mut state, &[], &[]).is_ok());

            let present: Vec<_> =
                facts.iter().map(|&(rel, a, b)| op_fact(&(true, rel, a, b))).collect();
            let absent: Vec<_> = (0..3u8)
                .map(|rel| delta_fact(pred_of(rel), &[Val::int(99), Val::int(99)]))
                .collect();

            let before_base = canon(db.base());
            let before_overlay = canon(db.overlay());
            let out = compiled
                .apply_delta(&mut db, &mut state, &present, &absent)
                .unwrap();
            prop_assert!(out.is_empty(), "{policy:?}: no-op delta reported {out:?}");
            prop_assert_eq!(canon(db.base()), before_base);
            prop_assert_eq!(canon(db.overlay()), before_overlay);
        }
    }
}
