//! Property test: the interned engine (both eval modes) is
//! tuple-identical to the independent string-path reference evaluator
//! over randomly generated safe, stratified programs — the in-crate
//! half of the `interned-vs-string` differential arm (the sim oracle
//! runs the same comparison over real chains and GCCs).

use nrslb_datalog::eval::DEFAULT_BUDGET;
use nrslb_datalog::{evaluate_strings, CompiledProgram, Database, EvalMode, Program, Val};
use proptest::prelude::*;
use std::sync::Arc;

/// Same program shape as `proptest_engine`: a chain of derived
/// predicates over `e0`/`e1` with optional negation of strictly earlier
/// predicates and positive recursive closures — plus string constants in
/// the EDB, so symbol interning itself is on the tested path.
#[derive(Debug, Clone)]
struct RandomProgram {
    rules: Vec<String>,
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    proptest::collection::vec((0u8..6, any::<bool>(), any::<bool>()), 1..6).prop_map(|specs| {
        let mut rules = Vec::new();
        for (i, (template, negate, extra_edge)) in specs.into_iter().enumerate() {
            let head = format!("d{i}");
            let neg_part = if negate && i > 0 {
                format!(", \\+d{}(X)", i - 1)
            } else {
                String::new()
            };
            let body = match template {
                0 => format!("e0(X, Y){neg_part}"),
                1 => format!("e0(X, Z), e1(Z, Y){neg_part}"),
                2 if i > 0 => format!("d{}(X, Y){}", i - 1, neg_part.replace("(X)", "(Y)")),
                3 => format!("e1(X, Y), X < Y{neg_part}"),
                4 => format!("e0(X, W), Y = W + 1{neg_part}"),
                _ => format!("e0(X, Y), e0(Y, X){neg_part}"),
            };
            rules.push(format!("{head}(X, Y) :- {body}."));
            if negate && i > 0 {
                rules.push(format!("d{}(X) :- e0(X, _).", i - 1));
            }
            if extra_edge {
                rules.push(format!("c{i}(X, Y) :- e0(X, Y)."));
                rules.push(format!("c{i}(X, Z) :- c{i}(X, Y), e0(Y, Z)."));
            }
        }
        RandomProgram { rules }
    })
}

/// EDB values mix integers and strings (handles intern, ints do not).
fn edb() -> impl Strategy<Value = Vec<(u8, u8, i64)>> {
    proptest::collection::vec((0u8..2, 0u8..5, 0i64..6), 0..20)
}

fn val_of(tag: u8, n: i64) -> Val {
    if tag.is_multiple_of(2) {
        Val::int(n)
    } else {
        Val::str(format!("h{n}"))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interned_matches_string_reference(
        program in random_program(),
        facts in edb(),
    ) {
        let src = program.rules.join("\n");
        let Ok(parsed) = Program::parse(&src) else { return Ok(()) };
        let Ok(compiled) = CompiledProgram::compile(&parsed) else { return Ok(()) };

        let mut db = Database::new();
        for (rel, tag, n) in &facts {
            db.add_fact(format!("e{rel}"), vec![val_of(*tag, *n), val_of(tag.wrapping_add(1), n + 1)]);
        }

        let reference = evaluate_strings(&parsed, &db, DEFAULT_BUDGET);
        let base = Arc::new(db);
        for mode in [EvalMode::SemiNaive, EvalMode::Naive] {
            let interned = compiled.evaluate_with(Arc::clone(&base), mode, DEFAULT_BUDGET);
            match (&reference, &interned) {
                (Ok(strings), Ok((layered, _))) => {
                    // Same predicates, same tuples, both directions.
                    let mut ipreds = layered.predicates();
                    ipreds.retain(|p| !layered.tuples(p).is_empty());
                    prop_assert_eq!(&strings.predicates(), &ipreds);
                    for pred in strings.predicates() {
                        let mut a = strings.tuples(&pred);
                        let mut b = layered.tuples(&pred);
                        a.sort();
                        b.sort();
                        prop_assert_eq!(a, b, "{} ({:?})", pred, mode);
                    }
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(
                    std::mem::discriminant(ea),
                    std::mem::discriminant(eb)
                ),
                (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
            }
        }
    }
}
