//! Property tests over the evaluation engine: randomly generated safe,
//! stratified programs must (a) agree between naive and semi-naive
//! modes and (b) terminate within the budget.

use nrslb_datalog::{Database, Engine, EvalMode, Program, Val};
use proptest::prelude::*;

/// A random non-recursive-with-negation program over a small EDB
/// vocabulary. Shape: a chain of derived predicates d0..dk where each
/// rule body uses EDB relations `e0`/`e1`, earlier derived predicates
/// positively, and optionally negates a *strictly earlier* derived
/// predicate — always stratifiable and safe by construction.
#[derive(Debug, Clone)]
struct RandomProgram {
    rules: Vec<String>,
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    // For each derived predicate i in 0..n: pick a body template.
    proptest::collection::vec((0u8..5, any::<bool>(), any::<bool>()), 1..6).prop_map(|specs| {
        let mut rules = Vec::new();
        for (i, (template, negate, extra_edge)) in specs.into_iter().enumerate() {
            let head = format!("d{i}");
            let neg_part = if negate && i > 0 {
                format!(", \\+d{}(X)", i - 1)
            } else {
                String::new()
            };
            let body = match template {
                0 => format!("e0(X, Y){neg_part}"),
                1 => format!("e0(X, Z), e1(Z, Y){neg_part}"),
                2 if i > 0 => format!("d{}(X, Y){}", i - 1, neg_part.replace("(X)", "(Y)")),
                3 => format!("e1(X, Y), X < Y{neg_part}"),
                _ => format!("e0(X, Y), e0(Y, X){neg_part}"),
            };
            // Heads are binary except the negated helper form.
            rules.push(format!("{head}(X, Y) :- {body}."));
            if negate && i > 0 {
                // Define the unary projection used under negation.
                rules.push(format!("d{}(X) :- e0(X, _).", i - 1));
            }
            if extra_edge {
                // A recursive (positive-only) closure over e0.
                rules.push(format!("c{i}(X, Y) :- e0(X, Y)."));
                rules.push(format!("c{i}(X, Z) :- c{i}(X, Y), e0(Y, Z)."));
            }
        }
        RandomProgram { rules }
    })
}

fn edb() -> impl Strategy<Value = Vec<(u8, i64, i64)>> {
    proptest::collection::vec((0u8..2, 0i64..6, 0i64..6), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn naive_equals_semi_naive_on_random_programs(
        program in random_program(),
        facts in edb(),
    ) {
        let src = program.rules.join("\n");
        // Some generated programs may fail safety (e.g. d{i-1}(X,Y) body
        // with unary negation projection conflicts) — skip those; the
        // property targets programs the checker admits.
        let Ok(parsed) = Program::parse(&src) else { return Ok(()) };
        let Ok(semi) = Engine::new(&parsed) else { return Ok(()) };
        let naive = Engine::new(&parsed).unwrap().with_mode(EvalMode::Naive);

        let mut db = Database::new();
        for (rel, a, b) in &facts {
            db.add_fact(format!("e{rel}"), vec![Val::int(*a), Val::int(*b)]);
        }
        let a = semi.run(db.clone());
        let b = naive.run(db);
        match (a, b) {
            (Ok(da), Ok(dbn)) => {
                prop_assert_eq!(da.len(), dbn.len());
                for pred in da.predicates() {
                    for tuple in da.tuples(&pred) {
                        prop_assert!(dbn.contains(&pred, &tuple), "{}{:?}", pred, tuple);
                    }
                }
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(
                std::mem::discriminant(&ea),
                std::mem::discriminant(&eb)
            ),
            (a, b) => prop_assert!(false, "modes disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_harmless(facts in edb()) {
        // Facts of mismatched arity in the same relation never panic the
        // join machinery; they simply fail to unify.
        let mut db = Database::new();
        for (rel, a, b) in &facts {
            db.add_fact(format!("e{rel}"), vec![Val::int(*a), Val::int(*b)]);
        }
        db.add_fact("e0", vec![Val::int(0)]); // arity 1 amid arity 2
        db.add_fact("e0", vec![Val::int(0), Val::int(1), Val::int(2)]);
        let program = Program::parse("p(X, Y) :- e0(X, Y).").unwrap();
        let out = Engine::new(&program).unwrap().run(db).unwrap();
        for t in out.tuples("p") {
            prop_assert_eq!(t.len(), 2);
        }
    }
}
