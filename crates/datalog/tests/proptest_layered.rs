//! Property tests for the layered execution model: evaluating a
//! compiled program over a base/overlay split of the EDB must produce
//! byte-identical results to the legacy path that owns one flat,
//! cloned database — in both semi-naive and naive modes, for any split
//! of the facts between the two layers.

use nrslb_datalog::eval::DEFAULT_BUDGET;
use nrslb_datalog::{CompiledProgram, Database, Engine, EvalMode, LayeredDatabase, Program, Val};
use proptest::prelude::*;
use std::sync::Arc;

/// Same shape as `proptest_engine`'s generator: chains of derived
/// predicates over `e0`/`e1`, negation only of strictly earlier
/// strata, optional positive recursion — always stratifiable.
#[derive(Debug, Clone)]
struct RandomProgram {
    rules: Vec<String>,
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    proptest::collection::vec((0u8..5, any::<bool>(), any::<bool>()), 1..6).prop_map(|specs| {
        let mut rules = Vec::new();
        for (i, (template, negate, extra_edge)) in specs.into_iter().enumerate() {
            let head = format!("d{i}");
            let neg_part = if negate && i > 0 {
                format!(", \\+d{}(X)", i - 1)
            } else {
                String::new()
            };
            let body = match template {
                0 => format!("e0(X, Y){neg_part}"),
                1 => format!("e0(X, Z), e1(Z, Y){neg_part}"),
                2 if i > 0 => format!("d{}(X, Y){}", i - 1, neg_part.replace("(X)", "(Y)")),
                3 => format!("e1(X, Y), X < Y{neg_part}"),
                _ => format!("e0(X, Y), e0(Y, X){neg_part}"),
            };
            rules.push(format!("{head}(X, Y) :- {body}."));
            if negate && i > 0 {
                rules.push(format!("d{}(X) :- e0(X, _).", i - 1));
            }
            if extra_edge {
                rules.push(format!("c{i}(X, Y) :- e0(X, Y)."));
                rules.push(format!("c{i}(X, Z) :- c{i}(X, Y), e0(Y, Z)."));
            }
        }
        RandomProgram { rules }
    })
}

fn edb() -> impl Strategy<Value = Vec<(u8, i64, i64)>> {
    proptest::collection::vec((0u8..2, 0i64..6, 0i64..6), 0..20)
}

/// A canonical, order-independent rendering of a database: one line
/// per tuple, sorted. Two databases are byte-identical iff these match.
fn canonical(db: &Database) -> Vec<String> {
    let mut lines = Vec::new();
    for pred in db.predicates() {
        for tuple in db.tuples(&pred) {
            lines.push(format!("{pred}{tuple:?}"));
        }
    }
    lines.sort();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // For every admitted random program, every eval mode, and every
    // split point of the EDB between the frozen base and the mutable
    // overlay, layered evaluation flattens to exactly the database the
    // legacy clone-and-own path computes.
    #[test]
    fn layered_split_matches_flat_clone_path(
        program in random_program(),
        facts in edb(),
        split in 0usize..21,
    ) {
        let src = program.rules.join("\n");
        let Ok(parsed) = Program::parse(&src) else { return Ok(()) };
        let Ok(compiled) = CompiledProgram::compile(&parsed) else { return Ok(()) };
        let split = split.min(facts.len());

        for mode in [EvalMode::SemiNaive, EvalMode::Naive] {
            // Legacy contract: the engine consumes an owned flat database
            // (internally Arc'd, but callers observe clone-and-own).
            let mut flat = Database::new();
            for (rel, a, b) in &facts {
                flat.add_fact(format!("e{rel}"), vec![Val::int(*a), Val::int(*b)]);
            }
            let engine = Engine::new(&parsed).unwrap().with_mode(mode);
            let legacy = engine.run(flat);

            // Layered path: facts split arbitrarily between the shared
            // base and the per-run overlay.
            let mut base = Database::new();
            for (rel, a, b) in &facts[..split] {
                base.add_fact(format!("e{rel}"), vec![Val::int(*a), Val::int(*b)]);
            }
            let base = Arc::new(base);
            let mut layered = LayeredDatabase::new(Arc::clone(&base));
            for (rel, a, b) in &facts[split..] {
                layered.add_fact(format!("e{rel}"), vec![Val::int(*a), Val::int(*b)]);
            }
            let result = compiled.evaluate_layered(&mut layered, mode, DEFAULT_BUDGET);

            match (legacy, result) {
                (Ok(flat_out), Ok(_stats)) => {
                    prop_assert_eq!(
                        canonical(&flat_out),
                        canonical(&layered.clone().flatten()),
                        "mode {:?}, split {}", mode, split
                    );
                    // The shared base was never touched.
                    prop_assert_eq!(base.len(), split_len(&facts[..split]));
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(
                    std::mem::discriminant(&ea),
                    std::mem::discriminant(&eb)
                ),
                (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
            }
        }
    }
}

/// Distinct facts in a slice (the EDB generator may repeat tuples).
fn split_len(facts: &[(u8, i64, i64)]) -> usize {
    let mut set = std::collections::BTreeSet::new();
    for f in facts {
        set.insert(*f);
    }
    set.len()
}
