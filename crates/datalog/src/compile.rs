//! Compile-once / evaluate-many execution of stratified programs.
//!
//! [`CompiledProgram`] is the immutable product of the safety and
//! stratification checks: rules grouped into strata, plus the set of
//! predicates derived in each stratum. Compiling happens once per GCC
//! (at parse/load time) and **lowers every rule to the interned IR**:
//! predicates and string constants become [`Sym`]s, variables become
//! dense per-rule slots, and the semi-naive join then compares `u32`
//! ids instead of hashing `Arc<str>`. Evaluation happens once per
//! (chain, usage) query and reads the chain's facts through a
//! [`LayeredDatabase`], so the shared fact base is never cloned per run.
//!
//! [`EvalScratch`] holds every transient buffer an evaluation needs
//! (derived-tuple overlay, variable bindings, semi-naive delta sets,
//! the pending queue). Reusing one scratch across evaluations via
//! [`CompiledProgram::evaluate_reusing`] makes a steady-state run
//! allocation-free: all buffers are cleared capacity-retained, and
//! small-arity tuples ([`crate::intern::ITuple`]) live inline.

use crate::ast::{ArithOp, BodyItem, CmpOp, Expr, Literal, Program, Rule, Term};
use crate::eval::{Database, EvalMode, EvalStats, DEFAULT_BUDGET};
use crate::intern::{intern, FxBuild, ITuple, ITupleSet, IVal, Sym, SymMap};
use crate::layered::LayeredDatabase;
use crate::{safety, stratify, DatalogError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A compiled term: an interned constant or a dense variable slot.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CTerm {
    Const(IVal),
    Var(u16),
}

/// A compiled literal: interned predicate plus compiled argument terms.
#[derive(Clone, Debug)]
pub(crate) struct CLit {
    pub(crate) pred: Sym,
    pub(crate) args: Vec<CTerm>,
}

/// A compiled arithmetic expression.
#[derive(Clone, Debug)]
pub(crate) enum CExpr {
    Term(CTerm),
    Bin(Box<CExpr>, ArithOp, Box<CExpr>),
}

/// One compiled body item.
#[derive(Clone, Debug)]
pub(crate) enum CItem {
    Pos(CLit),
    Neg(CLit),
    Cmp(CExpr, CmpOp, CExpr),
    Assign(u16, CExpr),
}

/// A rule lowered to the interned IR.
#[derive(Clone, Debug)]
pub(crate) struct CRule {
    pub(crate) head_pred: Sym,
    pub(crate) head_args: Vec<CTerm>,
    pub(crate) body: Vec<CItem>,
    /// Number of distinct variables (the env slot count).
    pub(crate) var_count: usize,
}

impl CRule {
    pub(crate) fn is_fact(&self) -> bool {
        self.body.is_empty()
    }
}

/// Reusable evaluation state: every buffer one run needs, retained
/// between runs so a warm evaluation performs no steady-state heap
/// allocation.
///
/// One scratch serves any number of sequential evaluations (of the same
/// or different programs). [`CompiledProgram::evaluate_reusing`] clears
/// the buffers capacity-retained at entry and leaves the derived tuples
/// in [`EvalScratch::overlay`] for the caller to query.
#[derive(Debug, Default)]
pub struct EvalScratch {
    overlay: Database,
    pending: Vec<(Sym, ITuple)>,
    delta: SymMap<ITupleSet>,
    next_delta: SymMap<ITupleSet>,
    env: Vec<Option<IVal>>,
}

impl EvalScratch {
    /// A fresh scratch (all buffers empty).
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    /// The overlay holding the most recent run's derived tuples.
    pub fn overlay(&self) -> &Database {
        &self.overlay
    }
}

/// A checked, pre-stratified program, ready to evaluate any number of
/// times against different fact bases.
///
/// Construction runs the safety (range-restriction) and stratification
/// checks; the result is immutable and cheap to share (`Arc`).
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    program: Program,
    /// Rules lowered to the interned IR, aligned with `program.rules`.
    pub(crate) crules: Vec<CRule>,
    /// Non-fact rule indices grouped by stratum, in evaluation order.
    pub(crate) strata: Vec<Vec<usize>>,
    /// Predicate symbols derived in each stratum (drives semi-naive
    /// deltas).
    pub(crate) derived_syms: Vec<HashSet<Sym, FxBuild>>,
}

impl CompiledProgram {
    /// Check `program`, pre-compute its strata and lower it to the
    /// interned IR.
    pub fn compile(program: &Program) -> Result<CompiledProgram, DatalogError> {
        safety::check_program(program)?;
        let strat = stratify::stratify(program)?;
        let crules: Vec<CRule> = program
            .rules
            .iter()
            .map(compile_rule)
            .collect::<Result<_, _>>()?;
        let mut strata: Vec<Vec<usize>> = vec![Vec::new(); strat.count];
        let mut derived_syms: Vec<HashSet<Sym, FxBuild>> = vec![HashSet::default(); strat.count];
        for (i, rule) in program.rules.iter().enumerate() {
            let s = strat.of(&rule.head.pred);
            derived_syms[s].insert(crules[i].head_pred);
            if !crules[i].is_fact() {
                strata[s].push(i);
            }
        }
        Ok(CompiledProgram {
            program: program.clone(),
            crules,
            strata,
            derived_syms,
        })
    }

    /// The source program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// Evaluate to fixpoint over the shared `base`, semi-naive, with the
    /// default budget. Derived tuples land in the returned overlay.
    pub fn evaluate(&self, base: Arc<crate::Database>) -> Result<LayeredDatabase, DatalogError> {
        self.evaluate_with(base, EvalMode::SemiNaive, DEFAULT_BUDGET)
            .map(|(db, _)| db)
    }

    /// Evaluate with an explicit mode and derived-tuple budget, also
    /// returning run statistics.
    pub fn evaluate_with(
        &self,
        base: Arc<crate::Database>,
        mode: EvalMode,
        budget: usize,
    ) -> Result<(LayeredDatabase, EvalStats), DatalogError> {
        let mut db = LayeredDatabase::new(base);
        let stats = self.evaluate_layered(&mut db, mode, budget)?;
        Ok((db, stats))
    }

    /// [`CompiledProgram::evaluate_with`], reporting into `metrics`: a
    /// span times the run (latency histogram), success records the
    /// [`EvalStats`] counters/rounds, and
    /// errors count into `eval_errors` — with the span still recording
    /// the aborted run's duration.
    pub fn evaluate_metered(
        &self,
        base: Arc<crate::Database>,
        mode: EvalMode,
        budget: usize,
        metrics: &crate::metrics::EvalMetrics,
    ) -> Result<(LayeredDatabase, EvalStats), DatalogError> {
        let _span = metrics.span();
        match self.evaluate_with(base, mode, budget) {
            Ok((db, stats)) => {
                metrics.record(&stats);
                Ok((db, stats))
            }
            Err(e) => {
                metrics.eval_errors.inc();
                Err(e)
            }
        }
    }

    /// Evaluate in place over an existing layered view (the overlay may
    /// already hold facts from an earlier program in a pipeline).
    pub fn evaluate_layered(
        &self,
        db: &mut LayeredDatabase,
        mode: EvalMode,
        budget: usize,
    ) -> Result<EvalStats, DatalogError> {
        let mut scratch = EvalScratch::new();
        self.evaluate_layered_scratch(db, mode, budget, &mut scratch)
    }

    /// [`CompiledProgram::evaluate_layered`] reusing a caller-provided
    /// scratch for all transient evaluation state.
    pub fn evaluate_layered_scratch(
        &self,
        db: &mut LayeredDatabase,
        mode: EvalMode,
        budget: usize,
        scratch: &mut EvalScratch,
    ) -> Result<EvalStats, DatalogError> {
        let (base, overlay) = db.split_mut();
        self.run(base, overlay, scratch, mode, budget)
    }

    /// Evaluate against `base`, writing derived tuples into the
    /// scratch's own overlay (cleared capacity-retained at entry; query
    /// it via [`EvalScratch::overlay`] afterwards).
    ///
    /// This is the warm serving path: with a warmed scratch, a run
    /// performs zero steady-state heap allocations — bindings, deltas,
    /// the pending queue and the overlay's relation storage are all
    /// reused, and small-arity tuples stay inline.
    pub fn evaluate_reusing(
        &self,
        base: &Database,
        scratch: &mut EvalScratch,
        mode: EvalMode,
        budget: usize,
    ) -> Result<EvalStats, DatalogError> {
        let mut overlay = std::mem::take(&mut scratch.overlay);
        overlay.clear_retaining();
        let result = self.run(base, &mut overlay, scratch, mode, budget);
        scratch.overlay = overlay;
        result
    }

    /// [`CompiledProgram::evaluate_reusing`], reporting into `metrics`
    /// exactly like [`CompiledProgram::evaluate_metered`].
    pub fn evaluate_reusing_metered(
        &self,
        base: &Database,
        scratch: &mut EvalScratch,
        mode: EvalMode,
        budget: usize,
        metrics: &crate::metrics::EvalMetrics,
    ) -> Result<EvalStats, DatalogError> {
        let _span = metrics.span();
        match self.evaluate_reusing(base, scratch, mode, budget) {
            Ok(stats) => {
                metrics.record(&stats);
                Ok(stats)
            }
            Err(e) => {
                metrics.eval_errors.inc();
                Err(e)
            }
        }
    }

    /// The full fixpoint loop over (base, overlay) with scratch state.
    fn run(
        &self,
        base: &Database,
        overlay: &mut Database,
        scratch: &mut EvalScratch,
        mode: EvalMode,
        budget: usize,
    ) -> Result<EvalStats, DatalogError> {
        // A failed previous run may have left residue.
        scratch.pending.clear();
        let mut stats = EvalStats::default();
        // Program facts (ground heads, checked by safety) seed the run.
        for crule in &self.crules {
            if crule.is_fact() {
                let mut tuple = ITuple::new();
                for arg in &crule.head_args {
                    tuple.push(match arg {
                        CTerm::Const(v) => *v,
                        CTerm::Var(_) => unreachable!("safety rejects non-ground facts"),
                    });
                }
                if !base.icontains(crule.head_pred, tuple.as_slice())
                    && overlay.add_ifact(crule.head_pred, tuple)
                {
                    stats.derived += 1;
                }
            }
        }
        for (stratum_idx, rule_indices) in self.strata.iter().enumerate() {
            if rule_indices.is_empty() {
                continue;
            }
            match mode {
                EvalMode::SemiNaive => self.run_stratum_semi_naive(
                    rule_indices,
                    &self.derived_syms[stratum_idx],
                    base,
                    overlay,
                    scratch,
                    budget,
                    &mut stats,
                )?,
                EvalMode::Naive => self.run_stratum_naive(
                    rule_indices,
                    base,
                    overlay,
                    scratch,
                    budget,
                    &mut stats,
                )?,
            }
        }
        Ok(stats)
    }

    fn run_stratum_naive(
        &self,
        rules: &[usize],
        base: &Database,
        overlay: &mut Database,
        scratch: &mut EvalScratch,
        budget: usize,
        stats: &mut EvalStats,
    ) -> Result<(), DatalogError> {
        loop {
            stats.rounds += 1;
            for &ri in rules {
                stats.rule_applications += 1;
                evaluate_crule(
                    &self.crules[ri],
                    base,
                    overlay,
                    None,
                    &mut scratch.env,
                    &mut scratch.pending,
                )?;
            }
            let mut changed = false;
            for (pred, tuple) in scratch.pending.drain(..) {
                if !base.icontains(pred, tuple.as_slice()) && overlay.add_ifact(pred, tuple) {
                    stats.derived += 1;
                    changed = true;
                    if stats.derived > budget {
                        return Err(DatalogError::BudgetExceeded { budget });
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_stratum_semi_naive(
        &self,
        rules: &[usize],
        stratum_syms: &HashSet<Sym, FxBuild>,
        base: &Database,
        overlay: &mut Database,
        scratch: &mut EvalScratch,
        budget: usize,
        stats: &mut EvalStats,
    ) -> Result<(), DatalogError> {
        // Round 0: full evaluation; derived tuples seed the delta. The
        // delta maps are reused across runs: sets are cleared
        // capacity-retained, and stale keys with empty sets are inert.
        stats.rounds += 1;
        for set in scratch.delta.values_mut() {
            set.clear();
        }
        for &ri in rules {
            stats.rule_applications += 1;
            evaluate_crule(
                &self.crules[ri],
                base,
                overlay,
                None,
                &mut scratch.env,
                &mut scratch.pending,
            )?;
        }
        for (pred, tuple) in scratch.pending.drain(..) {
            if !base.icontains(pred, tuple.as_slice()) && overlay.add_ifact(pred, tuple.clone()) {
                stats.derived += 1;
                scratch.delta.entry(pred).or_default().insert(tuple);
            }
        }
        check_budget(stats, budget)?;

        // Subsequent rounds: only rule instantiations touching the delta.
        while scratch.delta.values().any(|s| !s.is_empty()) {
            stats.rounds += 1;
            for set in scratch.next_delta.values_mut() {
                set.clear();
            }
            for &ri in rules {
                let rule = &self.crules[ri];
                // For each positive literal over a predicate in this
                // stratum, re-run with that literal restricted to delta.
                for (idx, item) in rule.body.iter().enumerate() {
                    let CItem::Pos(lit) = item else { continue };
                    if !stratum_syms.contains(&lit.pred) {
                        continue;
                    }
                    let Some(dset) = scratch.delta.get(&lit.pred) else {
                        continue;
                    };
                    if dset.is_empty() {
                        continue;
                    }
                    stats.rule_applications += 1;
                    evaluate_crule(
                        rule,
                        base,
                        overlay,
                        Some((idx, dset)),
                        &mut scratch.env,
                        &mut scratch.pending,
                    )?;
                }
            }
            for (pred, tuple) in scratch.pending.drain(..) {
                if !base.icontains(pred, tuple.as_slice()) && overlay.add_ifact(pred, tuple.clone())
                {
                    stats.derived += 1;
                    scratch.next_delta.entry(pred).or_default().insert(tuple);
                }
            }
            check_budget(stats, budget)?;
            std::mem::swap(&mut scratch.delta, &mut scratch.next_delta);
        }
        Ok(())
    }
}

pub(crate) fn check_budget(stats: &EvalStats, budget: usize) -> Result<(), DatalogError> {
    if stats.derived > budget {
        Err(DatalogError::BudgetExceeded { budget })
    } else {
        Ok(())
    }
}

/// Upper bound on per-literal arity: newly-bound argument positions are
/// tracked in a `u128` bitmask so backtracking never allocates.
const MAX_LITERAL_ARITY: usize = 128;

/// Dense per-rule variable slot assignment (first occurrence order).
struct VarSlots<'a> {
    map: HashMap<&'a str, u16>,
}

impl<'a> VarSlots<'a> {
    fn slot(&mut self, name: &'a str) -> Result<u16, DatalogError> {
        if let Some(&s) = self.map.get(name) {
            return Ok(s);
        }
        let next = u16::try_from(self.map.len()).map_err(|_| DatalogError::Eval {
            message: format!("rule exceeds {} variables", u16::MAX),
        })?;
        self.map.insert(name, next);
        Ok(next)
    }

    fn cterm(&mut self, term: &'a Term) -> Result<CTerm, DatalogError> {
        Ok(match term {
            Term::Const(v) => CTerm::Const(IVal::from_val(v)),
            Term::Var(v) => CTerm::Var(self.slot(v)?),
        })
    }

    fn clit(&mut self, lit: &'a Literal) -> Result<CLit, DatalogError> {
        if lit.args.len() > MAX_LITERAL_ARITY {
            return Err(DatalogError::Eval {
                message: format!("literal `{lit}` exceeds arity {MAX_LITERAL_ARITY}"),
            });
        }
        Ok(CLit {
            pred: intern(&lit.pred),
            args: lit
                .args
                .iter()
                .map(|t| self.cterm(t))
                .collect::<Result<_, _>>()?,
        })
    }

    fn cexpr(&mut self, expr: &'a Expr) -> Result<CExpr, DatalogError> {
        Ok(match expr {
            Expr::Term(t) => CExpr::Term(self.cterm(t)?),
            Expr::Bin(l, op, r) => {
                CExpr::Bin(Box::new(self.cexpr(l)?), *op, Box::new(self.cexpr(r)?))
            }
        })
    }
}

/// Lower one rule to the interned IR, assigning dense variable slots.
fn compile_rule(rule: &Rule) -> Result<CRule, DatalogError> {
    let mut slots = VarSlots {
        map: HashMap::new(),
    };
    let mut body = Vec::with_capacity(rule.body.len());
    for item in &rule.body {
        body.push(match item {
            BodyItem::Pos(lit) => CItem::Pos(slots.clit(lit)?),
            BodyItem::Neg(lit) => CItem::Neg(slots.clit(lit)?),
            BodyItem::Cmp(l, op, r) => CItem::Cmp(slots.cexpr(l)?, *op, slots.cexpr(r)?),
            BodyItem::Assign(var, expr) => {
                let e = slots.cexpr(expr)?;
                CItem::Assign(slots.slot(var)?, e)
            }
        });
    }
    let head_args = rule
        .head
        .args
        .iter()
        .map(|t| slots.cterm(t))
        .collect::<Result<Vec<_>, _>>()?;
    let var_count = slots.map.len();
    Ok(CRule {
        head_pred: intern(&rule.head.pred),
        head_args,
        body,
        var_count,
    })
}

/// Evaluate one compiled rule against the (base, overlay) view, pushing
/// each derived head tuple onto `pending`. When `delta` is
/// `Some((idx, tuples))`, body literal `idx` iterates over `tuples`
/// instead of the full relation.
fn evaluate_crule(
    rule: &CRule,
    base: &Database,
    overlay: &Database,
    delta: Option<(usize, &ITupleSet)>,
    env: &mut Vec<Option<IVal>>,
    pending: &mut Vec<(Sym, ITuple)>,
) -> Result<(), DatalogError> {
    env.clear();
    env.resize(rule.var_count, None);
    solve(rule, 0, base, overlay, delta, env, pending)
}

#[allow(clippy::too_many_arguments)]
fn solve(
    rule: &CRule,
    idx: usize,
    base: &Database,
    overlay: &Database,
    delta: Option<(usize, &ITupleSet)>,
    env: &mut Vec<Option<IVal>>,
    pending: &mut Vec<(Sym, ITuple)>,
) -> Result<(), DatalogError> {
    let Some(item) = rule.body.get(idx) else {
        // Body satisfied: instantiate the head (safety guarantees ground).
        let mut tuple = ITuple::new();
        for arg in &rule.head_args {
            tuple.push(match arg {
                CTerm::Const(v) => *v,
                CTerm::Var(i) => env[*i as usize].expect("safety: head vars bound"),
            });
        }
        pending.push((rule.head_pred, tuple));
        return Ok(());
    };
    match item {
        CItem::Pos(lit) => {
            // Iterate either the delta set (for the designated literal)
            // or the stored relation — in both layers, base first —
            // using the first-arg index when possible.
            if let Some((didx, dset)) = delta {
                if didx == idx {
                    for tuple in dset {
                        try_tuple(rule, idx, base, overlay, delta, env, pending, lit, tuple)?;
                    }
                    return Ok(());
                }
            }
            // Index lookup when the first argument is bound.
            let first_bound: Option<IVal> = lit.args.first().and_then(|t| match t {
                CTerm::Const(v) => Some(*v),
                CTerm::Var(i) => env[*i as usize],
            });
            for layer in [base, overlay] {
                let Some(rel) = layer.relation(lit.pred) else {
                    continue;
                };
                if let Some(key) = first_bound {
                    if let Some(indices) = rel.first_arg.get(&key) {
                        for &i in indices {
                            try_tuple(
                                rule,
                                idx,
                                base,
                                overlay,
                                delta,
                                env,
                                pending,
                                lit,
                                &rel.tuples[i as usize],
                            )?;
                        }
                    }
                    continue;
                }
                for tuple in &rel.tuples {
                    try_tuple(rule, idx, base, overlay, delta, env, pending, lit, tuple)?;
                }
            }
            Ok(())
        }
        CItem::Neg(lit) => {
            // Safety guarantees all vars bound; ground the literal.
            let mut tuple = ITuple::new();
            for arg in &lit.args {
                tuple.push(match arg {
                    CTerm::Const(v) => *v,
                    CTerm::Var(i) => env[*i as usize].expect("safety: negation vars bound"),
                });
            }
            if !overlay.icontains(lit.pred, tuple.as_slice())
                && !base.icontains(lit.pred, tuple.as_slice())
            {
                solve(rule, idx + 1, base, overlay, delta, env, pending)?;
            }
            Ok(())
        }
        CItem::Cmp(lhs, op, rhs) => {
            let l = eval_cexpr(lhs, env)?;
            let r = eval_cexpr(rhs, env)?;
            if compare(l, *op, r)? {
                solve(rule, idx + 1, base, overlay, delta, env, pending)?;
            }
            Ok(())
        }
        CItem::Assign(var, expr) => {
            let value = eval_cexpr(expr, env)?;
            match env[*var as usize] {
                Some(existing) => {
                    // Re-assignment acts as an equality check.
                    if existing == value {
                        solve(rule, idx + 1, base, overlay, delta, env, pending)?;
                    }
                    Ok(())
                }
                None => {
                    env[*var as usize] = Some(value);
                    solve(rule, idx + 1, base, overlay, delta, env, pending)?;
                    env[*var as usize] = None;
                    Ok(())
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_tuple(
    rule: &CRule,
    idx: usize,
    base: &Database,
    overlay: &Database,
    delta: Option<(usize, &ITupleSet)>,
    env: &mut Vec<Option<IVal>>,
    pending: &mut Vec<(Sym, ITuple)>,
    lit: &CLit,
    tuple: &ITuple,
) -> Result<(), DatalogError> {
    let vals = tuple.as_slice();
    if vals.len() != lit.args.len() {
        return Ok(());
    }
    // Track which argument positions bound a variable in a bitmask, so
    // backtracking unbinds without a heap-allocated list.
    let mut bound_mask: u128 = 0;
    let mut ok = true;
    for (i, (arg, val)) in lit.args.iter().zip(vals).enumerate() {
        match arg {
            CTerm::Const(c) => {
                if c != val {
                    ok = false;
                    break;
                }
            }
            CTerm::Var(v) => match env[*v as usize] {
                Some(existing) => {
                    if existing != *val {
                        ok = false;
                        break;
                    }
                }
                None => {
                    env[*v as usize] = Some(*val);
                    bound_mask |= 1 << i;
                }
            },
        }
    }
    if ok {
        solve(rule, idx + 1, base, overlay, delta, env, pending)?;
    }
    if bound_mask != 0 {
        for (i, arg) in lit.args.iter().enumerate() {
            if bound_mask & (1 << i) != 0 {
                if let CTerm::Var(v) = arg {
                    env[*v as usize] = None;
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn eval_cexpr(expr: &CExpr, env: &[Option<IVal>]) -> Result<IVal, DatalogError> {
    match expr {
        CExpr::Term(CTerm::Const(v)) => Ok(*v),
        CExpr::Term(CTerm::Var(i)) => Ok(env[*i as usize].expect("safety: expr vars bound")),
        CExpr::Bin(l, op, r) => {
            let l = eval_cexpr(l, env)?;
            let r = eval_cexpr(r, env)?;
            let (IVal::Int(a), IVal::Int(b)) = (l, r) else {
                return Err(DatalogError::Eval {
                    message: format!(
                        "arithmetic on non-integers: {} {op} {}",
                        l.to_val(),
                        r.to_val()
                    ),
                });
            };
            let out = match op {
                ArithOp::Add => a.checked_add(b),
                ArithOp::Sub => a.checked_sub(b),
                ArithOp::Mul => a.checked_mul(b),
            };
            out.map(IVal::Int).ok_or_else(|| DatalogError::Eval {
                message: format!("arithmetic overflow: {a} {op} {b}"),
            })
        }
    }
}

pub(crate) fn compare(l: IVal, op: CmpOp, r: IVal) -> Result<bool, DatalogError> {
    match op {
        CmpOp::Eq => Ok(l == r),
        CmpOp::Ne => Ok(l != r),
        _ => {
            let (IVal::Int(a), IVal::Int(b)) = (l, r) else {
                return Err(DatalogError::Eval {
                    message: format!(
                        "ordered comparison on non-integers: {} {op} {}",
                        l.to_val(),
                        r.to_val()
                    ),
                });
            };
            Ok(match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Val;
    use crate::Database;

    fn compiled(src: &str) -> CompiledProgram {
        CompiledProgram::compile(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn shared_base_evaluates_many_without_clone() {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let base = Arc::new(db);
        let reach = compiled("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let inv = compiled("back(X,Y) :- edge(Y,X).");
        // Two programs share one base; each gets its own overlay.
        let r1 = reach.evaluate(Arc::clone(&base)).unwrap();
        let r2 = inv.evaluate(Arc::clone(&base)).unwrap();
        assert!(r1.contains("reach", &[Val::str("a"), Val::str("d")]));
        assert!(r2.contains("back", &[Val::str("b"), Val::str("a")]));
        // Overlays are independent and the base saw no writes.
        assert!(!r1.contains("back", &[Val::str("b"), Val::str("a")]));
        assert_eq!(base.len(), 3);
        // Only the original strong count plus the two result layers.
        assert_eq!(Arc::strong_count(&base), 3);
    }

    #[test]
    fn program_facts_land_in_overlay() {
        let out = compiled("p(1). q(X) :- p(X).")
            .evaluate(Arc::new(Database::new()))
            .unwrap();
        assert!(out.base().is_empty());
        assert!(out.overlay().contains("p", &[Val::int(1)]));
        assert!(out.overlay().contains("q", &[Val::int(1)]));
    }

    #[test]
    fn naive_mode_and_budget_respected() {
        let mut db = Database::new();
        for i in 0..40 {
            for j in 0..40 {
                db.add_fact("edge", vec![Val::int(i), Val::int(j)]);
            }
        }
        let program = compiled("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let err = program
            .evaluate_with(Arc::new(db), EvalMode::SemiNaive, 100)
            .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { budget: 100 }));
    }

    #[test]
    fn metered_evaluation_reports_into_registry() {
        use crate::metrics::EvalMetrics;
        use nrslb_obs::{Registry, VirtualClock};

        let registry = Registry::with_clock(VirtualClock::shared(0));
        let metrics = EvalMetrics::new(&registry);
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let base = Arc::new(db);
        let program = compiled("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let (out, stats) = program
            .evaluate_metered(
                Arc::clone(&base),
                EvalMode::SemiNaive,
                DEFAULT_BUDGET,
                &metrics,
            )
            .unwrap();
        assert!(out.contains("reach", &[Val::str("a"), Val::str("c")]));
        assert_eq!(metrics.evaluations.get(), 1);
        assert_eq!(metrics.tuples_derived.get(), stats.derived as u64);
        assert_eq!(
            metrics.rule_applications.get(),
            stats.rule_applications as u64
        );
        assert_eq!(metrics.rounds.count(), 1);
        assert_eq!(metrics.latency_us.count(), 1, "span records the run");

        // A budget abort counts as an error and still times the run.
        let err = program
            .evaluate_metered(base, EvalMode::SemiNaive, 1, &metrics)
            .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { .. }));
        assert_eq!(
            metrics.evaluations.get(),
            1,
            "failed run not counted as success"
        );
        assert_eq!(metrics.eval_errors.get(), 1);
        assert_eq!(metrics.latency_us.count(), 2, "error path still recorded");
    }

    #[test]
    fn negation_sees_base_facts() {
        let mut db = Database::new();
        db.add_fact("cert", vec![Val::str("c1")]);
        db.add_fact("cert", vec![Val::str("c2")]);
        db.add_fact("revoked", vec![Val::str("c1")]);
        let out = compiled(
            "bad(X) :- cert(X), revoked(X).
             good(X) :- cert(X), \\+bad(X).",
        )
        .evaluate(Arc::new(db))
        .unwrap();
        assert!(out.contains("good", &[Val::str("c2")]));
        assert!(!out.contains("good", &[Val::str("c1")]));
    }

    #[test]
    fn pipeline_evaluation_over_one_overlay() {
        // Two compiled programs run into the same layered view: the
        // second sees the first's derivations.
        let mut db = Database::new();
        db.add_fact("edge", vec![Val::str("a"), Val::str("b")]);
        let mut layered = LayeredDatabase::new(Arc::new(db));
        compiled("reach(X,Y) :- edge(X,Y).")
            .evaluate_layered(&mut layered, EvalMode::SemiNaive, DEFAULT_BUDGET)
            .unwrap();
        compiled("seen(X) :- reach(X, _).")
            .evaluate_layered(&mut layered, EvalMode::SemiNaive, DEFAULT_BUDGET)
            .unwrap();
        assert!(layered.contains("seen", &[Val::str("a")]));
    }

    #[test]
    fn scratch_reuse_is_correct_across_programs_and_runs() {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let reach = compiled("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let inv = compiled("back(X,Y) :- edge(Y,X). lonely(X) :- edge(X, Y), \\+back(X, Y).");
        let mut scratch = EvalScratch::new();
        for _ in 0..3 {
            let stats = reach
                .evaluate_reusing(&db, &mut scratch, EvalMode::SemiNaive, DEFAULT_BUDGET)
                .unwrap();
            assert_eq!(stats.derived, 6);
            assert!(scratch
                .overlay()
                .contains("reach", &[Val::str("a"), Val::str("d")]));
            // A different program reuses the same buffers; no residue
            // from the previous run leaks into its results.
            inv.evaluate_reusing(&db, &mut scratch, EvalMode::SemiNaive, DEFAULT_BUDGET)
                .unwrap();
            assert!(scratch
                .overlay()
                .contains("back", &[Val::str("b"), Val::str("a")]));
            assert!(!scratch
                .overlay()
                .contains("reach", &[Val::str("a"), Val::str("d")]));
        }
    }

    #[test]
    fn scratch_matches_fresh_evaluation_in_both_modes() {
        let mut db = Database::new();
        for i in 0..10 {
            db.add_fact("edge", vec![Val::int(i), Val::int(i + 1)]);
        }
        let program = compiled(
            "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).
             source(X) :- edge(X, Y), \\+reach(Y, X).",
        );
        let base = Arc::new(db);
        let mut scratch = EvalScratch::new();
        for mode in [EvalMode::SemiNaive, EvalMode::Naive] {
            let fresh = program
                .evaluate_with(Arc::clone(&base), mode, DEFAULT_BUDGET)
                .unwrap()
                .0;
            program
                .evaluate_reusing(&base, &mut scratch, mode, DEFAULT_BUDGET)
                .unwrap();
            for pred in ["reach", "source"] {
                let mut a = fresh.overlay().tuples(pred);
                let mut b = scratch.overlay().tuples(pred);
                a.sort();
                b.sort();
                assert_eq!(a, b, "{pred} ({mode:?})");
            }
        }
    }
}
