//! Compile-once / evaluate-many execution of stratified programs.
//!
//! [`CompiledProgram`] is the immutable product of the safety and
//! stratification checks: rules grouped into strata, plus the set of
//! predicates derived in each stratum. Compiling happens once per GCC
//! (at parse/load time); evaluation happens once per (chain, usage)
//! query and reads the chain's facts through a [`LayeredDatabase`], so
//! the shared fact base is never cloned per run.

use crate::ast::{ArithOp, BodyItem, CmpOp, Expr, Literal, Program, Rule, Term, Val};
use crate::eval::{EvalMode, EvalStats, Tuple, DEFAULT_BUDGET};
use crate::layered::LayeredDatabase;
use crate::{safety, stratify, DatalogError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A checked, pre-stratified program, ready to evaluate any number of
/// times against different fact bases.
///
/// Construction runs the safety (range-restriction) and stratification
/// checks; the result is immutable and cheap to share (`Arc`).
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    program: Program,
    /// Rule indices grouped by stratum, in evaluation order.
    strata: Vec<Vec<usize>>,
    /// Predicates derived in each stratum (drives semi-naive deltas).
    derived_by_stratum: Vec<HashSet<Arc<str>>>,
}

impl CompiledProgram {
    /// Check `program` and pre-compute its strata.
    pub fn compile(program: &Program) -> Result<CompiledProgram, DatalogError> {
        safety::check_program(program)?;
        let strat = stratify::stratify(program)?;
        let mut strata: Vec<Vec<usize>> = vec![Vec::new(); strat.count];
        let mut derived_by_stratum: Vec<HashSet<Arc<str>>> = vec![HashSet::new(); strat.count];
        for (i, rule) in program.rules.iter().enumerate() {
            let s = strat.of(&rule.head.pred);
            strata[s].push(i);
            derived_by_stratum[s].insert(rule.head.pred.clone());
        }
        Ok(CompiledProgram {
            program: program.clone(),
            strata,
            derived_by_stratum,
        })
    }

    /// The source program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// Evaluate to fixpoint over the shared `base`, semi-naive, with the
    /// default budget. Derived tuples land in the returned overlay.
    pub fn evaluate(&self, base: Arc<crate::Database>) -> Result<LayeredDatabase, DatalogError> {
        self.evaluate_with(base, EvalMode::SemiNaive, DEFAULT_BUDGET)
            .map(|(db, _)| db)
    }

    /// Evaluate with an explicit mode and derived-tuple budget, also
    /// returning run statistics.
    pub fn evaluate_with(
        &self,
        base: Arc<crate::Database>,
        mode: EvalMode,
        budget: usize,
    ) -> Result<(LayeredDatabase, EvalStats), DatalogError> {
        let mut db = LayeredDatabase::new(base);
        let stats = self.evaluate_layered(&mut db, mode, budget)?;
        Ok((db, stats))
    }

    /// [`CompiledProgram::evaluate_with`], reporting into `metrics`: a
    /// span times the run (latency histogram), success records the
    /// [`EvalStats`] counters/rounds, and
    /// errors count into `eval_errors` — with the span still recording
    /// the aborted run's duration.
    pub fn evaluate_metered(
        &self,
        base: Arc<crate::Database>,
        mode: EvalMode,
        budget: usize,
        metrics: &crate::metrics::EvalMetrics,
    ) -> Result<(LayeredDatabase, EvalStats), DatalogError> {
        let _span = metrics.span();
        match self.evaluate_with(base, mode, budget) {
            Ok((db, stats)) => {
                metrics.record(&stats);
                Ok((db, stats))
            }
            Err(e) => {
                metrics.eval_errors.inc();
                Err(e)
            }
        }
    }

    /// Evaluate in place over an existing layered view (the overlay may
    /// already hold facts from an earlier program in a pipeline).
    pub fn evaluate_layered(
        &self,
        db: &mut LayeredDatabase,
        mode: EvalMode,
        budget: usize,
    ) -> Result<EvalStats, DatalogError> {
        let mut stats = EvalStats::default();
        // Program facts (ground heads, checked by safety) seed the run.
        for rule in &self.program.rules {
            if rule.is_fact() {
                let tuple: Tuple = rule
                    .head
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(v) => v.clone(),
                        Term::Var(_) => unreachable!("safety rejects non-ground facts"),
                    })
                    .collect();
                if db.add_fact(rule.head.pred.clone(), tuple) {
                    stats.derived += 1;
                }
            }
        }
        for (stratum_idx, rule_indices) in self.strata.iter().enumerate() {
            let rules: Vec<&Rule> = rule_indices
                .iter()
                .map(|&i| &self.program.rules[i])
                .filter(|r| !r.is_fact())
                .collect();
            if rules.is_empty() {
                continue;
            }
            match mode {
                EvalMode::SemiNaive => self.run_stratum_semi_naive(
                    &rules,
                    &self.derived_by_stratum[stratum_idx],
                    db,
                    budget,
                    &mut stats,
                )?,
                EvalMode::Naive => self.run_stratum_naive(&rules, db, budget, &mut stats)?,
            }
        }
        Ok(stats)
    }

    fn run_stratum_naive(
        &self,
        rules: &[&Rule],
        db: &mut LayeredDatabase,
        budget: usize,
        stats: &mut EvalStats,
    ) -> Result<(), DatalogError> {
        loop {
            stats.rounds += 1;
            let mut new_tuples: Vec<(Arc<str>, Tuple)> = Vec::new();
            for rule in rules {
                stats.rule_applications += 1;
                evaluate_rule(rule, db, None, &mut |pred, tuple| {
                    new_tuples.push((pred, tuple));
                })?;
            }
            let mut changed = false;
            for (pred, tuple) in new_tuples {
                if db.add_fact(pred, tuple) {
                    stats.derived += 1;
                    changed = true;
                    if stats.derived > budget {
                        return Err(DatalogError::BudgetExceeded { budget });
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    fn run_stratum_semi_naive(
        &self,
        rules: &[&Rule],
        stratum_preds: &HashSet<Arc<str>>,
        db: &mut LayeredDatabase,
        budget: usize,
        stats: &mut EvalStats,
    ) -> Result<(), DatalogError> {
        // Round 0: full evaluation; derived tuples seed the delta.
        stats.rounds += 1;
        let mut delta: HashMap<Arc<str>, HashSet<Tuple>> = HashMap::new();
        let mut pending: Vec<(Arc<str>, Tuple)> = Vec::new();
        for rule in rules {
            stats.rule_applications += 1;
            evaluate_rule(rule, db, None, &mut |pred, tuple| {
                pending.push((pred, tuple));
            })?;
        }
        for (pred, tuple) in pending.drain(..) {
            if db.add_fact(pred.clone(), tuple.clone()) {
                stats.derived += 1;
                delta.entry(pred).or_default().insert(tuple);
            }
        }
        check_budget(stats, budget)?;

        // Subsequent rounds: only rule instantiations touching the delta.
        while !delta.is_empty() {
            stats.rounds += 1;
            let mut next_delta: HashMap<Arc<str>, HashSet<Tuple>> = HashMap::new();
            for rule in rules {
                // For each positive literal over a predicate in this
                // stratum, re-run with that literal restricted to delta.
                for (idx, item) in rule.body.iter().enumerate() {
                    let BodyItem::Pos(lit) = item else { continue };
                    if !stratum_preds.contains(&lit.pred) {
                        continue;
                    }
                    let Some(dset) = delta.get(&lit.pred) else {
                        continue;
                    };
                    if dset.is_empty() {
                        continue;
                    }
                    stats.rule_applications += 1;
                    evaluate_rule(rule, db, Some((idx, dset)), &mut |p, t| {
                        pending.push((p, t));
                    })?;
                }
            }
            for (pred, tuple) in pending.drain(..) {
                if db.add_fact(pred.clone(), tuple.clone()) {
                    stats.derived += 1;
                    next_delta.entry(pred).or_default().insert(tuple);
                }
            }
            check_budget(stats, budget)?;
            delta = next_delta;
        }
        Ok(())
    }
}

fn check_budget(stats: &EvalStats, budget: usize) -> Result<(), DatalogError> {
    if stats.derived > budget {
        Err(DatalogError::BudgetExceeded { budget })
    } else {
        Ok(())
    }
}

type Env = HashMap<Arc<str>, Val>;

/// Evaluate one rule against the layered view, calling `emit` for each
/// derived head tuple. When `delta` is `Some((idx, tuples))`, body
/// literal `idx` iterates over `tuples` instead of the full relation.
fn evaluate_rule(
    rule: &Rule,
    db: &LayeredDatabase,
    delta: Option<(usize, &HashSet<Tuple>)>,
    emit: &mut dyn FnMut(Arc<str>, Tuple),
) -> Result<(), DatalogError> {
    let mut env: Env = HashMap::new();
    solve(rule, 0, db, delta, &mut env, emit)
}

fn solve(
    rule: &Rule,
    idx: usize,
    db: &LayeredDatabase,
    delta: Option<(usize, &HashSet<Tuple>)>,
    env: &mut Env,
    emit: &mut dyn FnMut(Arc<str>, Tuple),
) -> Result<(), DatalogError> {
    let Some(item) = rule.body.get(idx) else {
        // Body satisfied: instantiate the head (safety guarantees ground).
        let tuple: Tuple = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(v) => v.clone(),
                Term::Var(v) => env[v].clone(),
            })
            .collect();
        emit(rule.head.pred.clone(), tuple);
        return Ok(());
    };
    match item {
        BodyItem::Pos(lit) => {
            // Iterate either the delta set (for the designated literal)
            // or the stored relation — in both layers, base first —
            // using the first-arg index when possible.
            if let Some((didx, dset)) = delta {
                if didx == idx {
                    for tuple in dset {
                        try_tuple(rule, idx, db, delta, env, emit, lit, tuple)?;
                    }
                    return Ok(());
                }
            }
            // Index lookup when the first argument is bound.
            let first_bound: Option<Val> = lit.args.first().and_then(|t| match t {
                Term::Const(v) => Some(v.clone()),
                Term::Var(v) => env.get(v).cloned(),
            });
            for layer in db.layers() {
                let Some(rel) = layer.relation(&lit.pred) else {
                    continue;
                };
                if let Some(key) = &first_bound {
                    if let Some(indices) = rel.first_arg.get(key) {
                        for &i in indices {
                            try_tuple(
                                rule,
                                idx,
                                db,
                                delta,
                                env,
                                emit,
                                lit,
                                &rel.tuples[i as usize],
                            )?;
                        }
                    }
                    continue;
                }
                for tuple in &rel.tuples {
                    try_tuple(rule, idx, db, delta, env, emit, lit, tuple)?;
                }
            }
            Ok(())
        }
        BodyItem::Neg(lit) => {
            // Safety guarantees all vars bound; ground the literal.
            let tuple: Tuple = lit
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(v) => v.clone(),
                    Term::Var(v) => env[v].clone(),
                })
                .collect();
            if !db.contains(&lit.pred, &tuple) {
                solve(rule, idx + 1, db, delta, env, emit)?;
            }
            Ok(())
        }
        BodyItem::Cmp(lhs, op, rhs) => {
            let l = eval_expr(lhs, env)?;
            let r = eval_expr(rhs, env)?;
            if compare(&l, *op, &r)? {
                solve(rule, idx + 1, db, delta, env, emit)?;
            }
            Ok(())
        }
        BodyItem::Assign(var, expr) => {
            let value = eval_expr(expr, env)?;
            match env.get(var) {
                Some(existing) => {
                    // Re-assignment acts as an equality check.
                    if *existing == value {
                        solve(rule, idx + 1, db, delta, env, emit)?;
                    }
                    Ok(())
                }
                None => {
                    env.insert(var.clone(), value);
                    solve(rule, idx + 1, db, delta, env, emit)?;
                    env.remove(var);
                    Ok(())
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_tuple(
    rule: &Rule,
    idx: usize,
    db: &LayeredDatabase,
    delta: Option<(usize, &HashSet<Tuple>)>,
    env: &mut Env,
    emit: &mut dyn FnMut(Arc<str>, Tuple),
    lit: &Literal,
    tuple: &[Val],
) -> Result<(), DatalogError> {
    if tuple.len() != lit.args.len() {
        return Ok(());
    }
    let mut bound_here: Vec<Arc<str>> = Vec::new();
    let mut ok = true;
    for (arg, val) in lit.args.iter().zip(tuple) {
        match arg {
            Term::Const(c) => {
                if c != val {
                    ok = false;
                    break;
                }
            }
            Term::Var(v) => match env.get(v) {
                Some(existing) => {
                    if existing != val {
                        ok = false;
                        break;
                    }
                }
                None => {
                    env.insert(v.clone(), val.clone());
                    bound_here.push(v.clone());
                }
            },
        }
    }
    if ok {
        solve(rule, idx + 1, db, delta, env, emit)?;
    }
    for v in bound_here {
        env.remove(&v);
    }
    Ok(())
}

fn eval_expr(expr: &Expr, env: &Env) -> Result<Val, DatalogError> {
    match expr {
        Expr::Term(Term::Const(v)) => Ok(v.clone()),
        Expr::Term(Term::Var(v)) => Ok(env[v].clone()),
        Expr::Bin(l, op, r) => {
            let l = eval_expr(l, env)?;
            let r = eval_expr(r, env)?;
            let (Val::Int(a), Val::Int(b)) = (&l, &r) else {
                return Err(DatalogError::Eval {
                    message: format!("arithmetic on non-integers: {l} {op} {r}"),
                });
            };
            let out = match op {
                ArithOp::Add => a.checked_add(*b),
                ArithOp::Sub => a.checked_sub(*b),
                ArithOp::Mul => a.checked_mul(*b),
            };
            out.map(Val::Int).ok_or_else(|| DatalogError::Eval {
                message: format!("arithmetic overflow: {a} {op} {b}"),
            })
        }
    }
}

fn compare(l: &Val, op: CmpOp, r: &Val) -> Result<bool, DatalogError> {
    match op {
        CmpOp::Eq => Ok(l == r),
        CmpOp::Ne => Ok(l != r),
        _ => {
            let (Val::Int(a), Val::Int(b)) = (l, r) else {
                return Err(DatalogError::Eval {
                    message: format!("ordered comparison on non-integers: {l} {op} {r}"),
                });
            };
            Ok(match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn compiled(src: &str) -> CompiledProgram {
        CompiledProgram::compile(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn shared_base_evaluates_many_without_clone() {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let base = Arc::new(db);
        let reach = compiled("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let inv = compiled("back(X,Y) :- edge(Y,X).");
        // Two programs share one base; each gets its own overlay.
        let r1 = reach.evaluate(Arc::clone(&base)).unwrap();
        let r2 = inv.evaluate(Arc::clone(&base)).unwrap();
        assert!(r1.contains("reach", &[Val::str("a"), Val::str("d")]));
        assert!(r2.contains("back", &[Val::str("b"), Val::str("a")]));
        // Overlays are independent and the base saw no writes.
        assert!(!r1.contains("back", &[Val::str("b"), Val::str("a")]));
        assert_eq!(base.len(), 3);
        // Only the original strong count plus the two result layers.
        assert_eq!(Arc::strong_count(&base), 3);
    }

    #[test]
    fn program_facts_land_in_overlay() {
        let out = compiled("p(1). q(X) :- p(X).")
            .evaluate(Arc::new(Database::new()))
            .unwrap();
        assert!(out.base().is_empty());
        assert!(out.overlay().contains("p", &[Val::int(1)]));
        assert!(out.overlay().contains("q", &[Val::int(1)]));
    }

    #[test]
    fn naive_mode_and_budget_respected() {
        let mut db = Database::new();
        for i in 0..40 {
            for j in 0..40 {
                db.add_fact("edge", vec![Val::int(i), Val::int(j)]);
            }
        }
        let program = compiled("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let err = program
            .evaluate_with(Arc::new(db), EvalMode::SemiNaive, 100)
            .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { budget: 100 }));
    }

    #[test]
    fn metered_evaluation_reports_into_registry() {
        use crate::metrics::EvalMetrics;
        use nrslb_obs::{Registry, VirtualClock};

        let registry = Registry::with_clock(VirtualClock::shared(0));
        let metrics = EvalMetrics::new(&registry);
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let base = Arc::new(db);
        let program = compiled("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let (out, stats) = program
            .evaluate_metered(
                Arc::clone(&base),
                EvalMode::SemiNaive,
                DEFAULT_BUDGET,
                &metrics,
            )
            .unwrap();
        assert!(out.contains("reach", &[Val::str("a"), Val::str("c")]));
        assert_eq!(metrics.evaluations.get(), 1);
        assert_eq!(metrics.tuples_derived.get(), stats.derived as u64);
        assert_eq!(
            metrics.rule_applications.get(),
            stats.rule_applications as u64
        );
        assert_eq!(metrics.rounds.count(), 1);
        assert_eq!(metrics.latency_us.count(), 1, "span records the run");

        // A budget abort counts as an error and still times the run.
        let err = program
            .evaluate_metered(base, EvalMode::SemiNaive, 1, &metrics)
            .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { .. }));
        assert_eq!(
            metrics.evaluations.get(),
            1,
            "failed run not counted as success"
        );
        assert_eq!(metrics.eval_errors.get(), 1);
        assert_eq!(metrics.latency_us.count(), 2, "error path still recorded");
    }

    #[test]
    fn negation_sees_base_facts() {
        let mut db = Database::new();
        db.add_fact("cert", vec![Val::str("c1")]);
        db.add_fact("cert", vec![Val::str("c2")]);
        db.add_fact("revoked", vec![Val::str("c1")]);
        let out = compiled(
            "bad(X) :- cert(X), revoked(X).
             good(X) :- cert(X), \\+bad(X).",
        )
        .evaluate(Arc::new(db))
        .unwrap();
        assert!(out.contains("good", &[Val::str("c2")]));
        assert!(!out.contains("good", &[Val::str("c1")]));
    }

    #[test]
    fn pipeline_evaluation_over_one_overlay() {
        // Two compiled programs run into the same layered view: the
        // second sees the first's derivations.
        let mut db = Database::new();
        db.add_fact("edge", vec![Val::str("a"), Val::str("b")]);
        let mut layered = LayeredDatabase::new(Arc::new(db));
        compiled("reach(X,Y) :- edge(X,Y).")
            .evaluate_layered(&mut layered, EvalMode::SemiNaive, DEFAULT_BUDGET)
            .unwrap();
        compiled("seen(X) :- reach(X, _).")
            .evaluate_layered(&mut layered, EvalMode::SemiNaive, DEFAULT_BUDGET)
            .unwrap();
        assert!(layered.contains("seen", &[Val::str("a")]));
    }
}
