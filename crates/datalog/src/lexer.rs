//! Tokenizer for the paper's Datalog syntax.
//!
//! Notable syntax (all taken from the paper's listings):
//! `%` line comments, `:-` rule separator, `\+` negation, quoted strings,
//! and the comparison/arithmetic operators used in Listings 1–3.

use crate::DatalogError;

/// A lexical token with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Byte offset in the source, for error reporting.
    pub offset: usize,
    /// The token kind and payload.
    pub kind: TokenKind,
}

/// The token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier starting with a lowercase letter: predicate or symbol.
    Ident(String),
    /// Variable starting with an uppercase letter or `_`.
    Var(String),
    /// Integer literal (sign handled by the parser).
    Int(i64),
    /// Quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Turnstile,
    /// `\+`
    Naf,
    /// `<`
    Lt,
    /// `<=` or `=<`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=` or `\=`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `?` (query terminator, accepted for completeness)
    Question,
}

/// Tokenize `src` into a vector of tokens.
pub fn tokenize(src: &str) -> Result<Vec<Token>, DatalogError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(tok(i, TokenKind::LParen));
                i += 1;
            }
            b')' => {
                tokens.push(tok(i, TokenKind::RParen));
                i += 1;
            }
            b',' => {
                tokens.push(tok(i, TokenKind::Comma));
                i += 1;
            }
            b'.' => {
                tokens.push(tok(i, TokenKind::Dot));
                i += 1;
            }
            b'?' => {
                tokens.push(tok(i, TokenKind::Question));
                i += 1;
            }
            b'+' => {
                tokens.push(tok(i, TokenKind::Plus));
                i += 1;
            }
            b'-' => {
                tokens.push(tok(i, TokenKind::Minus));
                i += 1;
            }
            b'*' => {
                tokens.push(tok(i, TokenKind::Star));
                i += 1;
            }
            b':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(tok(i, TokenKind::Turnstile));
                    i += 2;
                } else {
                    return Err(lex_err(i, "expected `:-`"));
                }
            }
            b'\\' => match bytes.get(i + 1) {
                Some(b'+') => {
                    tokens.push(tok(i, TokenKind::Naf));
                    i += 2;
                }
                Some(b'=') => {
                    tokens.push(tok(i, TokenKind::Ne));
                    i += 2;
                }
                _ => return Err(lex_err(i, "expected `\\+` or `\\=`")),
            },
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(tok(i, TokenKind::Le));
                    i += 2;
                } else {
                    tokens.push(tok(i, TokenKind::Lt));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(tok(i, TokenKind::Ge));
                    i += 2;
                } else {
                    tokens.push(tok(i, TokenKind::Gt));
                    i += 1;
                }
            }
            b'=' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(tok(i, TokenKind::EqEq));
                    i += 2;
                }
                Some(b'<') => {
                    tokens.push(tok(i, TokenKind::Le));
                    i += 2;
                }
                _ => {
                    tokens.push(tok(i, TokenKind::Assign));
                    i += 1;
                }
            },
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(tok(i, TokenKind::Ne));
                    i += 2;
                } else {
                    return Err(lex_err(i, "expected `!=`"));
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(lex_err(start, "unterminated string")),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                _ => return Err(lex_err(i, "bad string escape")),
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Copy the full UTF-8 character.
                            let ch_start = i;
                            i += 1;
                            while i < bytes.len() && bytes[i] & 0xc0 == 0x80 {
                                i += 1;
                            }
                            s.push_str(&src[ch_start..i]);
                        }
                    }
                }
                tokens.push(tok(start, TokenKind::Str(s)));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: i64 = text
                    .parse()
                    .map_err(|_| lex_err(start, "integer literal overflows i64"))?;
                tokens.push(tok(start, TokenKind::Int(value)));
            }
            b'a'..=b'z' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                tokens.push(tok(start, TokenKind::Ident(src[start..i].to_string())));
            }
            b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                tokens.push(tok(start, TokenKind::Var(src[start..i].to_string())));
            }
            _ => {
                return Err(lex_err(
                    i,
                    &format!(
                        "unexpected character {:?}",
                        src[i..].chars().next().unwrap()
                    ),
                ))
            }
        }
    }
    Ok(tokens)
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'\''
}

fn tok(offset: usize, kind: TokenKind) -> Token {
    Token { offset, kind }
}

fn lex_err(offset: usize, message: &str) -> DatalogError {
    DatalogError::Lex {
        offset,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::TokenKind::*;
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn paper_listing_fragment() {
        let toks = kinds(r#"valid(Chain, "S/MIME") :- leaf(Chain, Cert), NB < T."#);
        assert_eq!(
            toks,
            vec![
                Ident("valid".into()),
                LParen,
                Var("Chain".into()),
                Comma,
                Str("S/MIME".into()),
                RParen,
                Turnstile,
                Ident("leaf".into()),
                LParen,
                Var("Chain".into()),
                Comma,
                Var("Cert".into()),
                RParen,
                Comma,
                Var("NB".into()),
                Lt,
                Var("T".into()),
                Dot,
            ]
        );
    }

    #[test]
    fn negation_and_comments() {
        let toks = kinds("\\+EV(Cert), % the not operator\n x");
        assert_eq!(
            toks,
            vec![
                Naf,
                Var("EV".into()),
                LParen,
                Var("Cert".into()),
                RParen,
                Comma,
                Ident("x".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("< <= =< > >= = == != \\= + - *"),
            vec![Lt, Le, Le, Gt, Ge, Assign, EqEq, Ne, Ne, Plus, Minus, Star]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds(r#"1669784400 "with \"quote\" and \\backslash""#),
            vec![
                Int(1_669_784_400),
                Str("with \"quote\" and \\backslash".into()),
            ]
        );
    }

    #[test]
    fn unicode_strings_pass_through() {
        assert_eq!(kinds("\"héllo\""), vec![Str("héllo".into())]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("@").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize(":x").is_err());
        assert!(tokenize("!x").is_err());
        assert!(tokenize("99999999999999999999999").is_err());
    }

    #[test]
    fn offsets_reported() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
