//! Provenance: *why* does a derived fact hold?
//!
//! The paper picks Datalog because its semantics are "easy to reason
//! about" (§3); this module makes that operational. After evaluation,
//! [`explain`] reconstructs a derivation tree for any derived tuple —
//! which rule fired, under which variable bindings, supported by which
//! facts — producing the audit trail an operator wants when a GCC
//! accepts or rejects a chain (`nrslb-core` exposes this as
//! `explain_gcc`).
//!
//! Reconstruction re-runs individual rule bodies against the *final*
//! database, which is sound for stratified programs: every tuple in the
//! fixpoint has at least one rule instantiation supported by the
//! fixpoint itself.

use crate::ast::{BodyItem, Program, Rule, Term, Val};
use crate::eval::{Database, Tuple};
use crate::DatalogError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A derivation tree for one tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Derivation {
    /// The tuple is a base (EDB) fact: present in the database but not
    /// derivable by any rule head.
    Fact {
        /// Predicate name.
        pred: Arc<str>,
        /// The tuple.
        tuple: Tuple,
    },
    /// The tuple was derived by a rule.
    Rule {
        /// Predicate name.
        pred: Arc<str>,
        /// The tuple.
        tuple: Tuple,
        /// The rule, pretty-printed.
        rule: String,
        /// Sub-derivations for each positive body literal, in order.
        premises: Vec<Derivation>,
        /// Negative literals that held (shown ground).
        negations: Vec<String>,
        /// Comparisons/assignments that held (shown ground).
        guards: Vec<String>,
    },
}

impl Derivation {
    /// The derived tuple's predicate.
    pub fn pred(&self) -> &str {
        match self {
            Derivation::Fact { pred, .. } | Derivation::Rule { pred, .. } => pred,
        }
    }

    /// Render as an indented proof tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let indent = "  ".repeat(depth);
        match self {
            Derivation::Fact { pred, tuple } => {
                writeln!(out, "{indent}{pred}{} [fact]", render_tuple(tuple)).unwrap();
            }
            Derivation::Rule {
                pred,
                tuple,
                rule,
                premises,
                negations,
                guards,
            } => {
                writeln!(out, "{indent}{pred}{} because {rule}", render_tuple(tuple)).unwrap();
                for guard in guards {
                    writeln!(out, "{indent}  | {guard} [holds]").unwrap();
                }
                for negation in negations {
                    writeln!(out, "{indent}  | not {negation} [absent]").unwrap();
                }
                for premise in premises {
                    premise.render_into(out, depth + 1);
                }
            }
        }
    }
}

fn render_tuple(tuple: &[Val]) -> String {
    let mut out = String::from("(");
    for (i, v) in tuple.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(')');
    out
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Explain why `pred(tuple)` holds in `db` under `program`.
///
/// Returns `None` when the tuple is not in the database at all. The
/// `db` must be a fixpoint of the program (the output of
/// [`crate::Engine::run`]).
///
/// ```
/// use nrslb_datalog::{explain::explain, Database, Engine, Program, Val};
///
/// let program = Program::parse("p(X) :- q(X), \\+r(X).").unwrap();
/// let mut db = Database::new();
/// db.add_fact("q", vec![Val::int(1)]);
/// let out = Engine::new(&program).unwrap().run(db).unwrap();
/// let tree = explain(&program, &out, "p", &[Val::int(1)]).unwrap().unwrap();
/// assert!(tree.render().contains("not r(1) [absent]"));
/// ```
pub fn explain(
    program: &Program,
    db: &Database,
    pred: &str,
    tuple: &[Val],
) -> Result<Option<Derivation>, DatalogError> {
    let mut depth_guard = 0usize;
    explain_inner(program, db, pred, tuple, &mut depth_guard)
}

const MAX_EXPLAIN_DEPTH: usize = 10_000;

fn explain_inner(
    program: &Program,
    db: &Database,
    pred: &str,
    tuple: &[Val],
    budget: &mut usize,
) -> Result<Option<Derivation>, DatalogError> {
    if !db.contains(pred, tuple) {
        return Ok(None);
    }
    *budget += 1;
    if *budget > MAX_EXPLAIN_DEPTH {
        return Err(DatalogError::Eval {
            message: "explanation exceeded depth budget".to_string(),
        });
    }
    // Try each rule whose head matches; prefer rules with fewer body
    // atoms (facts first) so explanations stay small.
    let mut rules: Vec<&Rule> = program
        .rules
        .iter()
        .filter(|r| &*r.head.pred == pred && r.head.args.len() == tuple.len())
        .collect();
    rules.sort_by_key(|r| r.body.len());
    for rule in rules {
        if let Some(derivation) = try_rule(program, db, rule, tuple, budget)? {
            return Ok(Some(derivation));
        }
    }
    // No rule derives it: a base fact.
    Ok(Some(Derivation::Fact {
        pred: Arc::from(pred),
        tuple: tuple.to_vec(),
    }))
}

type Env = HashMap<Arc<str>, Val>;

fn try_rule(
    program: &Program,
    db: &Database,
    rule: &Rule,
    tuple: &[Val],
    budget: &mut usize,
) -> Result<Option<Derivation>, DatalogError> {
    // Bind the head against the tuple.
    let mut env: Env = HashMap::new();
    for (arg, val) in rule.head.args.iter().zip(tuple) {
        match arg {
            Term::Const(c) => {
                if c != val {
                    return Ok(None);
                }
            }
            Term::Var(v) => match env.get(v) {
                Some(existing) if existing != val => return Ok(None),
                _ => {
                    env.insert(v.clone(), val.clone());
                }
            },
        }
    }
    // Search for a satisfying body instantiation against the fixpoint.
    match solve_body(db, rule, 0, &mut env)? {
        Some(bindings) => {
            // Build sub-derivations under the found bindings.
            let mut premises = Vec::new();
            let mut negations = Vec::new();
            let mut guards = Vec::new();
            for item in &rule.body {
                match item {
                    BodyItem::Pos(lit) => {
                        let ground: Tuple = lit
                            .args
                            .iter()
                            .map(|t| ground_term(t, &bindings))
                            .collect::<Option<_>>()
                            .expect("solved body is ground");
                        let sub = explain_inner(program, db, &lit.pred, &ground, budget)?
                            .expect("premise tuple is in the fixpoint");
                        premises.push(sub);
                    }
                    BodyItem::Neg(lit) => {
                        let ground: Tuple = lit
                            .args
                            .iter()
                            .map(|t| ground_term(t, &bindings))
                            .collect::<Option<_>>()
                            .expect("solved body is ground");
                        negations.push(format!("{}{}", lit.pred, render_tuple(&ground)));
                    }
                    BodyItem::Cmp(l, op, r) => {
                        guards.push(format!(
                            "{} {op} {}",
                            render_expr(l, &bindings),
                            render_expr(r, &bindings)
                        ));
                    }
                    BodyItem::Assign(var, expr) => {
                        guards.push(format!(
                            "{} = {} = {}",
                            var,
                            expr,
                            bindings
                                .get(var)
                                .map(|v| v.to_string())
                                .unwrap_or_else(|| "?".into())
                        ));
                    }
                }
            }
            Ok(Some(Derivation::Rule {
                pred: rule.head.pred.clone(),
                tuple: tuple.to_vec(),
                rule: rule.to_string(),
                premises,
                negations,
                guards,
            }))
        }
        None => Ok(None),
    }
}

fn ground_term(term: &Term, env: &Env) -> Option<Val> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(v) => env.get(v).cloned(),
    }
}

fn render_expr(expr: &crate::ast::Expr, env: &Env) -> String {
    use crate::ast::Expr;
    match expr {
        Expr::Term(t) => ground_term(t, env)
            .map(|v| v.to_string())
            .unwrap_or_else(|| t.to_string()),
        Expr::Bin(l, op, r) => format!("({} {op} {})", render_expr(l, env), render_expr(r, env)),
    }
}

/// Depth-first search for one satisfying instantiation of the body
/// against the fixpoint database; returns the complete bindings.
fn solve_body(
    db: &Database,
    rule: &Rule,
    idx: usize,
    env: &mut Env,
) -> Result<Option<Env>, DatalogError> {
    use crate::ast::CmpOp;
    let Some(item) = rule.body.get(idx) else {
        return Ok(Some(env.clone()));
    };
    match item {
        BodyItem::Pos(lit) => {
            for stored in db.tuples(&lit.pred) {
                if stored.len() != lit.args.len() {
                    continue;
                }
                let mut bound_here = Vec::new();
                let mut ok = true;
                for (arg, val) in lit.args.iter().zip(&stored) {
                    match arg {
                        Term::Const(c) => {
                            if c != val {
                                ok = false;
                                break;
                            }
                        }
                        Term::Var(v) => match env.get(v) {
                            Some(existing) => {
                                if existing != val {
                                    ok = false;
                                    break;
                                }
                            }
                            None => {
                                env.insert(v.clone(), val.clone());
                                bound_here.push(v.clone());
                            }
                        },
                    }
                }
                if ok {
                    if let Some(found) = solve_body(db, rule, idx + 1, env)? {
                        return Ok(Some(found));
                    }
                }
                for v in bound_here {
                    env.remove(&v);
                }
            }
            Ok(None)
        }
        BodyItem::Neg(lit) => {
            let ground: Option<Tuple> = lit.args.iter().map(|t| ground_term(t, env)).collect();
            let ground = ground.ok_or_else(|| DatalogError::Eval {
                message: "unsafe negation during explanation".to_string(),
            })?;
            if db.contains(&lit.pred, &ground) {
                Ok(None)
            } else {
                solve_body(db, rule, idx + 1, env)
            }
        }
        BodyItem::Cmp(l, op, r) => {
            let lv = eval_expr(l, env)?;
            let rv = eval_expr(r, env)?;
            let holds = match (op, &lv, &rv) {
                (CmpOp::Eq, a, b) => a == b,
                (CmpOp::Ne, a, b) => a != b,
                (_, Val::Int(a), Val::Int(b)) => match op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    _ => unreachable!(),
                },
                _ => false,
            };
            if holds {
                solve_body(db, rule, idx + 1, env)
            } else {
                Ok(None)
            }
        }
        BodyItem::Assign(var, expr) => {
            let value = eval_expr(expr, env)?;
            match env.get(var) {
                Some(existing) if *existing != value => Ok(None),
                Some(_) => solve_body(db, rule, idx + 1, env),
                None => {
                    env.insert(var.clone(), value);
                    let result = solve_body(db, rule, idx + 1, env)?;
                    if result.is_none() {
                        env.remove(var);
                    }
                    Ok(result)
                }
            }
        }
    }
}

fn eval_expr(expr: &crate::ast::Expr, env: &Env) -> Result<Val, DatalogError> {
    use crate::ast::{ArithOp, Expr};
    match expr {
        Expr::Term(t) => ground_term(t, env).ok_or_else(|| DatalogError::Eval {
            message: "unbound variable during explanation".to_string(),
        }),
        Expr::Bin(l, op, r) => {
            let (Val::Int(a), Val::Int(b)) = (eval_expr(l, env)?, eval_expr(r, env)?) else {
                return Err(DatalogError::Eval {
                    message: "arithmetic on non-integers".to_string(),
                });
            };
            let out = match op {
                ArithOp::Add => a.checked_add(b),
                ArithOp::Sub => a.checked_sub(b),
                ArithOp::Mul => a.checked_mul(b),
            };
            out.map(Val::Int).ok_or_else(|| DatalogError::Eval {
                message: "arithmetic overflow".to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Program};

    fn fixpoint(src: &str, facts: &[(&str, Vec<Val>)]) -> (Program, Database) {
        let program = Program::parse(src).unwrap();
        let mut db = Database::new();
        for (pred, tuple) in facts {
            db.add_fact(*pred, tuple.clone());
        }
        let out = Engine::new(&program).unwrap().run(db).unwrap();
        (program, out)
    }

    #[test]
    fn fact_explanation() {
        let (program, db) = fixpoint("p(X) :- q(X).", &[("q", vec![Val::int(1)])]);
        let d = explain(&program, &db, "q", &[Val::int(1)])
            .unwrap()
            .unwrap();
        assert_eq!(
            d,
            Derivation::Fact {
                pred: Arc::from("q"),
                tuple: vec![Val::int(1)]
            }
        );
    }

    #[test]
    fn rule_explanation_with_premises() {
        let (program, db) = fixpoint(
            "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).",
            &[
                ("edge", vec![Val::str("a"), Val::str("b")]),
                ("edge", vec![Val::str("b"), Val::str("c")]),
            ],
        );
        let d = explain(&program, &db, "reach", &[Val::str("a"), Val::str("c")])
            .unwrap()
            .unwrap();
        let Derivation::Rule { premises, .. } = &d else {
            panic!("expected a rule derivation");
        };
        assert_eq!(premises.len(), 2);
        let rendered = d.render();
        assert!(rendered.contains("reach(\"a\", \"c\")"));
        assert!(rendered.contains("edge(\"b\", \"c\")"));
        assert!(rendered.contains("[fact]"));
    }

    #[test]
    fn negation_and_guard_shown() {
        let (program, db) = fixpoint(
            r#"valid(C) :- cert(C), notBefore(C, NB), \+revoked(C), NB < 100."#,
            &[
                ("cert", vec![Val::str("x")]),
                ("notBefore", vec![Val::str("x"), Val::int(50)]),
            ],
        );
        let d = explain(&program, &db, "valid", &[Val::str("x")])
            .unwrap()
            .unwrap();
        let rendered = d.render();
        assert!(
            rendered.contains("not revoked(\"x\") [absent]"),
            "{rendered}"
        );
        assert!(rendered.contains("50 < 100 [holds]"), "{rendered}");
    }

    #[test]
    fn arithmetic_binding_shown() {
        let (program, db) = fixpoint(
            "short(C) :- span(C, A, B), L = B - A, L < 10.",
            &[("span", vec![Val::str("c"), Val::int(3), Val::int(8)])],
        );
        let d = explain(&program, &db, "short", &[Val::str("c")])
            .unwrap()
            .unwrap();
        let rendered = d.render();
        assert!(rendered.contains("L = (B - A) = 5"), "{rendered}");
    }

    #[test]
    fn absent_tuple_returns_none() {
        let (program, db) = fixpoint("p(X) :- q(X).", &[("q", vec![Val::int(1)])]);
        assert_eq!(explain(&program, &db, "p", &[Val::int(2)]).unwrap(), None);
    }

    #[test]
    fn recursive_explanation_terminates() {
        // Cyclic graph: the explanation must not loop forever.
        let (program, db) = fixpoint(
            "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).",
            &[
                ("edge", vec![Val::str("a"), Val::str("b")]),
                ("edge", vec![Val::str("b"), Val::str("a")]),
            ],
        );
        let d = explain(&program, &db, "reach", &[Val::str("a"), Val::str("a")]).unwrap();
        assert!(d.is_some());
    }
}
