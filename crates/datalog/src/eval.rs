//! Fact storage and the classic single-database [`Engine`] entry point.
//!
//! Storage is **interned**: relations are keyed by [`Sym`] and hold
//! [`ITuple`]s, so joins and dedup compare `u32` ids instead of hashing
//! `Arc<str>` (see [`mod@crate::intern`]). The [`Val`]-based methods remain
//! the parse/display boundary and convert at the edge — membership
//! probes use the non-inserting lookup, so asking about a never-seen
//! string cannot grow the symbol table.
//!
//! The evaluator itself lives in [`crate::compile`]: an [`Engine`] is a
//! thin wrapper pairing an `Arc<CompiledProgram>` with an evaluation
//! mode and budget. `Engine::run` keeps the original take-a-database /
//! return-a-database contract (used by the ablation benchmarks and the
//! Hammurabi-style per-chain programs), while shared hot paths evaluate
//! the compiled program directly over a layered view.

use crate::ast::Val;
use crate::compile::CompiledProgram;
use crate::intern::{ITuple, ITupleSet, IVal, IValMap, Sym, SymMap};
use crate::DatalogError;
use crate::Program;
use std::sync::Arc;

/// A ground tuple at the AST boundary.
pub type Tuple = Vec<Val>;

/// A single relation: deduplicated interned tuples plus a first-argument
/// index.
#[derive(Clone, Debug, Default)]
pub(crate) struct Relation {
    pub(crate) tuples: Vec<ITuple>,
    pub(crate) seen: ITupleSet,
    /// Maps first argument -> indices into `tuples`, accelerating joins
    /// where the first argument is already bound (the common shape for
    /// certificate facts like `notBefore(Cert, NB)`).
    pub(crate) first_arg: IValMap<Vec<u32>>,
}

impl Relation {
    fn insert(&mut self, tuple: ITuple) -> bool {
        if self.seen.contains(&tuple) {
            return false;
        }
        if let Some(first) = tuple.as_slice().first() {
            self.first_arg
                .entry(*first)
                .or_default()
                .push(self.tuples.len() as u32);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    fn contains(&self, tuple: &[IVal]) -> bool {
        self.seen.contains(tuple)
    }

    /// Remove a tuple if present; returns `true` when it was stored.
    ///
    /// The backing vec removes by swap, so the displaced tuple's
    /// first-argument index entry is repaired in place — the index stays
    /// exact under interleaved inserts and removes (the incremental
    /// maintenance workload, [`crate::incremental`]).
    fn remove(&mut self, tuple: &[IVal]) -> bool {
        if !self.seen.remove(tuple) {
            return false;
        }
        let Relation {
            tuples, first_arg, ..
        } = self;
        let pos = match tuple.first() {
            Some(first) => {
                let hits = first_arg
                    .get_mut(first)
                    .expect("index tracks stored tuples");
                let slot = hits
                    .iter()
                    .position(|&i| tuples[i as usize].as_slice() == tuple)
                    .expect("index tracks stored tuples");
                let pos = hits[slot] as usize;
                hits.swap_remove(slot);
                pos
            }
            // Arity-0 relations hold at most one tuple.
            None => tuples
                .iter()
                .position(|t| t.as_slice() == tuple)
                .expect("seen tracks stored tuples"),
        };
        let last = tuples.len() - 1;
        tuples.swap_remove(pos);
        if pos != last {
            // The former last tuple now lives at `pos`; repair its
            // index entry.
            if let Some(first) = tuples[pos].as_slice().first().copied() {
                let hits = first_arg
                    .get_mut(&first)
                    .expect("index tracks stored tuples");
                let slot = hits
                    .iter()
                    .position(|&i| i as usize == last)
                    .expect("index tracks stored tuples");
                hits[slot] = pos as u32;
            }
        }
        true
    }

    /// Empty the relation, retaining every allocation (tuple vec, seen
    /// set, index vecs) for the next run.
    fn clear_retaining(&mut self) {
        self.tuples.clear();
        self.seen.clear();
        for hits in self.first_arg.values_mut() {
            hits.clear();
        }
    }
}

/// A fact database: named relations over ground tuples, stored interned.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: SymMap<Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Add a ground fact; returns `true` if it was new. Interns the
    /// predicate and any string values.
    pub fn add_fact(&mut self, pred: impl AsRef<str>, tuple: Tuple) -> bool {
        let pred = crate::intern::intern(pred.as_ref());
        let tuple: ITuple = tuple.iter().map(IVal::from_val).collect();
        self.add_ifact(pred, tuple)
    }

    /// Add an already-interned fact; returns `true` if it was new. This
    /// is the zero-conversion path fact emitters use.
    pub fn add_ifact(&mut self, pred: Sym, tuple: ITuple) -> bool {
        self.relations.entry(pred).or_default().insert(tuple)
    }

    /// Remove an already-interned fact; returns `true` if it was
    /// stored. This is the EDB-delta path of incremental maintenance
    /// ([`crate::incremental`]).
    pub fn remove_ifact(&mut self, pred: Sym, tuple: &[IVal]) -> bool {
        self.relations
            .get_mut(&pred)
            .map(|r| r.remove(tuple))
            .unwrap_or(false)
    }

    /// Remove a ground fact; returns `true` if it was stored. Uses the
    /// non-inserting symbol lookup, so removing a never-seen fact cannot
    /// grow the symbol table.
    pub fn remove_fact(&mut self, pred: impl AsRef<str>, tuple: &[Val]) -> bool {
        let Some(pred) = crate::intern::lookup(pred.as_ref()) else {
            return false;
        };
        let mut interned = ITuple::new();
        for v in tuple {
            match IVal::lookup_val(v) {
                Some(iv) => interned.push(iv),
                None => return false,
            }
        }
        self.remove_ifact(pred, interned.as_slice())
    }

    /// Is `tuple` present in relation `pred`?
    pub fn contains(&self, pred: &str, tuple: &[Val]) -> bool {
        let Some(pred) = crate::intern::lookup(pred) else {
            return false;
        };
        let mut interned = ITuple::new();
        for v in tuple {
            match IVal::lookup_val(v) {
                Some(iv) => interned.push(iv),
                // A never-interned string cannot be stored anywhere.
                None => return false,
            }
        }
        self.icontains(pred, interned.as_slice())
    }

    /// Is the interned `tuple` present in relation `pred`?
    pub fn icontains(&self, pred: Sym, tuple: &[IVal]) -> bool {
        self.relations
            .get(&pred)
            .map(|r| r.contains(tuple))
            .unwrap_or(false)
    }

    /// All tuples of `pred`, materialized at the AST boundary (empty if
    /// absent). The evaluator reads interned storage directly via
    /// [`Database::ituples`]; this accessor serves explain/tests/CLI.
    pub fn tuples(&self, pred: &str) -> Vec<Tuple> {
        crate::intern::lookup(pred)
            .and_then(|p| self.relations.get(&p))
            .map(|r| r.tuples.iter().map(|t| t.to_vals()).collect())
            .unwrap_or_default()
    }

    /// All interned tuples of `pred` (empty slice if absent).
    pub fn ituples(&self, pred: Sym) -> &[ITuple] {
        self.relations
            .get(&pred)
            .map(|r| r.tuples.as_slice())
            .unwrap_or(&[])
    }

    /// Tuples of `pred` whose first argument is `first`, served from the
    /// first-argument index (evaluator internals).
    pub(crate) fn ituples_first(&self, pred: Sym, first: IVal) -> impl Iterator<Item = &ITuple> {
        self.relations.get(&pred).into_iter().flat_map(move |r| {
            r.first_arg
                .get(&first)
                .map(|hits| hits.as_slice())
                .unwrap_or(&[])
                .iter()
                .map(|&i| &r.tuples[i as usize])
        })
    }

    /// The relation named `pred`, if present (evaluator internals).
    pub(crate) fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Tuples of `pred` matching a pattern (`None` = wildcard),
    /// materialized at the AST boundary.
    pub fn query(&self, pred: &str, pattern: &[Option<Val>]) -> Vec<Tuple> {
        let ipattern: Vec<Option<Option<IVal>>> = pattern
            .iter()
            .map(|p| p.as_ref().map(IVal::lookup_val))
            .collect();
        // A bound pattern slot with a never-interned string matches
        // nothing.
        if ipattern.iter().any(|p| matches!(p, Some(None))) {
            return Vec::new();
        }
        let Some(pred) = crate::intern::lookup(pred) else {
            return Vec::new();
        };
        self.ituples(pred)
            .iter()
            .filter(|t| {
                t.len() == ipattern.len()
                    && t.as_slice()
                        .iter()
                        .zip(&ipattern)
                        .all(|(v, p)| p.map(|p| p == Some(*v)).unwrap_or(true))
                // `p` is `Option<Option<IVal>>`: outer None = wildcard,
                // inner always Some here (checked above).
            })
            .map(|t| t.to_vals())
            .collect()
    }

    /// Total number of stored tuples.
    pub fn len(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }

    /// True when no relation has tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names of all non-empty relations, sorted.
    pub fn predicates(&self) -> Vec<Arc<str>> {
        let mut names: Vec<Arc<str>> = self
            .relations
            .iter()
            .filter(|(_, r)| !r.tuples.is_empty())
            .map(|(k, _)| k.resolve())
            .collect();
        names.sort();
        names
    }

    /// Symbols of all non-empty relations (evaluator/merge internals).
    pub fn predicate_syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.relations
            .iter()
            .filter(|(_, r)| !r.tuples.is_empty())
            .map(|(k, _)| *k)
    }

    /// Move every fact of `other` into `self`, deduplicating.
    pub fn merge(&mut self, other: Database) {
        for (pred, rel) in other.relations {
            let target = self.relations.entry(pred).or_default();
            for tuple in rel.tuples {
                target.insert(tuple);
            }
        }
    }

    /// Empty every relation while retaining allocations — the scratch
    /// overlay reset between evaluations (see
    /// [`crate::compile::EvalScratch`]).
    pub fn clear_retaining(&mut self) {
        for rel in self.relations.values_mut() {
            rel.clear_retaining();
        }
    }

    /// Render the database as Datalog fact text (used by the paper-E1
    /// "unoptimized conversion" path, which serializes facts to text and
    /// re-parses them). Relations are emitted in name order for
    /// deterministic output.
    pub fn to_fact_text(&self) -> String {
        use std::fmt::Write;
        let mut rels: Vec<(Arc<str>, &Relation)> = self
            .relations
            .iter()
            .map(|(k, r)| (k.resolve(), r))
            .collect();
        rels.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (pred, rel) in rels {
            for tuple in &rel.tuples {
                write!(out, "{pred}(").unwrap();
                for (i, v) in tuple.as_slice().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write!(out, "{}", v.to_val()).unwrap();
                }
                out.push_str(").\n");
            }
        }
        out
    }

    /// [`Database::to_fact_text`] with the fact lines fully sorted: a
    /// canonical form independent of insertion order, so two databases
    /// holding the same facts render byte-identically. This is the
    /// comparison form the incremental-vs-scratch differential oracle
    /// and proptests use.
    pub fn to_sorted_fact_text(&self) -> String {
        let text = self.to_fact_text();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        let mut out = String::with_capacity(text.len());
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Semi-naive: per-round deltas drive recursive rules.
    #[default]
    SemiNaive,
    /// Naive: every round re-derives from full relations. Kept for the
    /// ablation benchmark.
    Naive,
}

/// Counters from one evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds across all strata.
    pub rounds: usize,
    /// Tuples newly derived (not counting duplicates).
    pub derived: usize,
    /// Rule body evaluations attempted.
    pub rule_applications: usize,
}

/// Default budget on derived tuples: defense in depth on top of the
/// stratification-level termination guarantees.
pub const DEFAULT_BUDGET: usize = 1_000_000;

/// A checked, ready-to-run Datalog program.
///
/// Construction performs the safety and stratification checks (via
/// [`CompiledProgram::compile`]); [`Engine::run`] evaluates against a
/// fact database and returns the extended database. The compiled
/// program is shared — cloning an `Engine`, or building several from
/// one `Arc<CompiledProgram>`, does not re-run the checks.
#[derive(Clone)]
pub struct Engine {
    compiled: Arc<CompiledProgram>,
    mode: EvalMode,
    budget: usize,
}

impl Engine {
    /// Check `program` and build an engine.
    pub fn new(program: &Program) -> Result<Engine, DatalogError> {
        Ok(Engine::from_compiled(Arc::new(CompiledProgram::compile(
            program,
        )?)))
    }

    /// Wrap an already-compiled program (no checks re-run).
    pub fn from_compiled(compiled: Arc<CompiledProgram>) -> Engine {
        Engine {
            compiled,
            mode: EvalMode::SemiNaive,
            budget: DEFAULT_BUDGET,
        }
    }

    /// The underlying compiled program.
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    /// Select naive or semi-naive evaluation.
    pub fn with_mode(mut self, mode: EvalMode) -> Engine {
        self.mode = mode;
        self
    }

    /// Override the derived-tuple budget.
    pub fn with_budget(mut self, budget: usize) -> Engine {
        self.budget = budget;
        self
    }

    /// Evaluate to fixpoint over `db`, returning the extended database.
    pub fn run(&self, db: Database) -> Result<Database, DatalogError> {
        self.run_with_stats(db).map(|(db, _)| db)
    }

    /// Like [`Engine::run`] but also returns evaluation statistics.
    ///
    /// `db` is taken by value and handed back extended; because this
    /// wrapper holds the only reference, no relation is cloned.
    pub fn run_with_stats(&self, db: Database) -> Result<(Database, EvalStats), DatalogError> {
        let (layered, stats) = self
            .compiled
            .evaluate_with(Arc::new(db), self.mode, self.budget)?;
        Ok((layered.flatten(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, db: Database) -> Database {
        Engine::new(&Program::parse(src).unwrap())
            .unwrap()
            .run(db)
            .unwrap()
    }

    #[test]
    fn facts_from_program() {
        let db = run("p(1). p(2). q(\"a\").", Database::new());
        assert!(db.contains("p", &[Val::int(1)]));
        assert!(db.contains("p", &[Val::int(2)]));
        assert!(db.contains("q", &[Val::str("a")]));
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn transitive_closure() {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let out = run(
            "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).",
            db,
        );
        assert!(out.contains("reach", &[Val::str("a"), Val::str("d")]));
        assert_eq!(out.tuples("reach").len(), 6);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "a")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let out = run(
            "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).",
            db,
        );
        assert_eq!(out.tuples("reach").len(), 9); // complete 3x3
    }

    #[test]
    fn negation_across_strata() {
        let mut db = Database::new();
        db.add_fact("cert", vec![Val::str("c1")]);
        db.add_fact("cert", vec![Val::str("c2")]);
        db.add_fact("revoked", vec![Val::str("c1")]);
        let out = run(
            "bad(X) :- cert(X), revoked(X).
             good(X) :- cert(X), \\+bad(X).",
            db,
        );
        assert!(out.contains("good", &[Val::str("c2")]));
        assert!(!out.contains("good", &[Val::str("c1")]));
    }

    #[test]
    fn listing_1_trustcor_semantics() {
        // Full paper Listing 1 executed against two synthetic chains.
        let src = r#"
            nov30th2022(1669784400).
            valid(Chain, "S/MIME") :-
              leaf(Chain, Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
            valid(Chain, "TLS") :-
              leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
        "#;
        let mut db = Database::new();
        // Chain 1: issued before the cutoff, not EV -> valid for both.
        db.add_fact("leaf", vec![Val::str("chain1"), Val::str("leaf1")]);
        db.add_fact(
            "notBefore",
            vec![Val::str("leaf1"), Val::int(1_600_000_000)],
        );
        // Chain 2: issued before cutoff but EV -> S/MIME only.
        db.add_fact("leaf", vec![Val::str("chain2"), Val::str("leaf2")]);
        db.add_fact(
            "notBefore",
            vec![Val::str("leaf2"), Val::int(1_600_000_000)],
        );
        db.add_fact("EV", vec![Val::str("leaf2")]);
        // Chain 3: issued after cutoff -> invalid for both.
        db.add_fact("leaf", vec![Val::str("chain3"), Val::str("leaf3")]);
        db.add_fact(
            "notBefore",
            vec![Val::str("leaf3"), Val::int(1_700_000_000)],
        );

        let out = run(src, db);
        assert!(out.contains("valid", &[Val::str("chain1"), Val::str("S/MIME")]));
        assert!(out.contains("valid", &[Val::str("chain1"), Val::str("TLS")]));
        assert!(out.contains("valid", &[Val::str("chain2"), Val::str("S/MIME")]));
        assert!(!out.contains("valid", &[Val::str("chain2"), Val::str("TLS")]));
        assert!(!out.contains("valid", &[Val::str("chain3"), Val::str("S/MIME")]));
        assert!(!out.contains("valid", &[Val::str("chain3"), Val::str("TLS")]));
    }

    #[test]
    fn listing_3_lifetime_arithmetic() {
        let src = r#"
            oneMonthInSeconds(2630000).
            lifetimeValid(Leaf) :-
              notBefore(Leaf, NB), notAfter(Leaf, NA),
              Lifetime = NA - NB, oneMonthInSeconds(Limit), Lifetime <= Limit.
        "#;
        let mut db = Database::new();
        db.add_fact("notBefore", vec![Val::str("short"), Val::int(0)]);
        db.add_fact("notAfter", vec![Val::str("short"), Val::int(2_000_000)]);
        db.add_fact("notBefore", vec![Val::str("long"), Val::int(0)]);
        db.add_fact("notAfter", vec![Val::str("long"), Val::int(90 * 86_400)]);
        let out = run(src, db);
        assert!(out.contains("lifetimeValid", &[Val::str("short")]));
        assert!(!out.contains("lifetimeValid", &[Val::str("long")]));
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let src = "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).
                   isolated(X) :- node(X), \\+reach(X, X).";
        let mut db = Database::new();
        let nodes = ["a", "b", "c", "d", "e"];
        for n in nodes {
            db.add_fact("node", vec![Val::str(n)]);
        }
        for (a, b) in [("a", "b"), ("b", "a"), ("c", "d"), ("d", "e")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let program = Program::parse(src).unwrap();
        let semi = Engine::new(&program).unwrap().run(db.clone()).unwrap();
        let naive = Engine::new(&program)
            .unwrap()
            .with_mode(EvalMode::Naive)
            .run(db)
            .unwrap();
        for pred in ["reach", "isolated"] {
            let mut a: Vec<_> = semi.tuples(pred);
            let mut b: Vec<_> = naive.tuples(pred);
            a.sort();
            b.sort();
            assert_eq!(a, b, "{pred}");
        }
    }

    #[test]
    fn semi_naive_does_less_work_on_chains() {
        // A long path: naive evaluation re-derives everything each round.
        let mut db = Database::new();
        for i in 0..60 {
            db.add_fact("edge", vec![Val::int(i), Val::int(i + 1)]);
        }
        let program =
            Program::parse("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).")
                .unwrap();
        let (_, semi) = Engine::new(&program)
            .unwrap()
            .run_with_stats(db.clone())
            .unwrap();
        let (_, naive) = Engine::new(&program)
            .unwrap()
            .with_mode(EvalMode::Naive)
            .run_with_stats(db)
            .unwrap();
        assert!(semi.derived == naive.derived);
        assert!(
            semi.rule_applications < naive.rule_applications * 2,
            "semi={} naive={}",
            semi.rule_applications,
            naive.rule_applications
        );
    }

    #[test]
    fn budget_exceeded() {
        let mut db = Database::new();
        for i in 0..40 {
            for j in 0..40 {
                db.add_fact("edge", vec![Val::int(i), Val::int(j)]);
            }
        }
        let program =
            Program::parse("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).")
                .unwrap();
        let err = Engine::new(&program)
            .unwrap()
            .with_budget(100)
            .run(db)
            .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { budget: 100 }));
    }

    #[test]
    fn arithmetic_overflow_is_an_error() {
        let mut db = Database::new();
        db.add_fact("n", vec![Val::int(i64::MAX)]);
        let program = Program::parse("big(Y) :- n(X), Y = X + 1.").unwrap();
        let err = Engine::new(&program).unwrap().run(db).unwrap_err();
        assert!(matches!(err, DatalogError::Eval { .. }));
    }

    #[test]
    fn comparison_type_error() {
        let mut db = Database::new();
        db.add_fact("v", vec![Val::str("notanint")]);
        let program = Program::parse("p(X) :- v(X), X < 5.").unwrap();
        let err = Engine::new(&program).unwrap().run(db).unwrap_err();
        assert!(matches!(err, DatalogError::Eval { .. }));
    }

    #[test]
    fn equality_works_on_strings() {
        let mut db = Database::new();
        db.add_fact("u", vec![Val::str("TLS")]);
        db.add_fact("u", vec![Val::str("S/MIME")]);
        let program = Program::parse(r#"tls(X) :- u(X), X == "TLS"."#).unwrap();
        let out = Engine::new(&program).unwrap().run(db).unwrap();
        assert_eq!(out.tuples("tls").len(), 1);
    }

    #[test]
    fn assign_acts_as_check_when_bound() {
        let mut db = Database::new();
        db.add_fact("pair", vec![Val::int(2), Val::int(4)]);
        db.add_fact("pair", vec![Val::int(3), Val::int(5)]);
        // Y must equal X * 2.
        let program = Program::parse("double(X, Y) :- pair(X, Y), Y = X * 2.").unwrap();
        let out = Engine::new(&program).unwrap().run(db).unwrap();
        assert_eq!(out.tuples("double").len(), 1);
        assert!(out.contains("double", &[Val::int(2), Val::int(4)]));
    }

    #[test]
    fn query_patterns() {
        let db = run("p(1, \"a\"). p(2, \"b\"). p(1, \"c\").", Database::new());
        let hits = db.query("p", &[Some(Val::int(1)), None]);
        assert_eq!(hits.len(), 2);
        let hits = db.query("p", &[None, Some(Val::str("b"))]);
        assert_eq!(hits.len(), 1);
        // A never-interned string in a bound slot matches nothing (and
        // does not grow the symbol table).
        let hits = db.query("p", &[None, Some(Val::str("eval-query-unseen-sym"))]);
        assert!(hits.is_empty());
    }

    #[test]
    fn fact_text_roundtrip() {
        let db = run(
            r#"p(1, "a"). q(-5). r("with \"quotes\"")."#,
            Database::new(),
        );
        let text = db.to_fact_text();
        let reparsed = run(&text, Database::new());
        assert_eq!(reparsed.len(), db.len());
        assert!(reparsed.contains("p", &[Val::int(1), Val::str("a")]));
        assert!(reparsed.contains("q", &[Val::int(-5)]));
        assert!(reparsed.contains("r", &[Val::str("with \"quotes\"")]));
    }

    #[test]
    fn duplicate_facts_dedupe() {
        let mut db = Database::new();
        assert!(db.add_fact("p", vec![Val::int(1)]));
        assert!(!db.add_fact("p", vec![Val::int(1)]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn merge_moves_and_dedupes() {
        let mut a = Database::new();
        a.add_fact("p", vec![Val::int(1)]);
        let mut b = Database::new();
        b.add_fact("p", vec![Val::int(1)]);
        b.add_fact("p", vec![Val::int(2)]);
        b.add_fact("q", vec![Val::int(3)]);
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert!(a.contains("p", &[Val::int(2)]));
        assert!(a.contains("q", &[Val::int(3)]));
    }

    #[test]
    fn clear_retaining_empties_but_reuses() {
        let mut db = Database::new();
        db.add_fact("p", vec![Val::int(1), Val::int(2)]);
        db.add_fact("p", vec![Val::int(3), Val::int(4)]);
        db.clear_retaining();
        assert!(db.is_empty());
        assert!(!db.contains("p", &[Val::int(1), Val::int(2)]));
        // Re-inserting after the reset behaves like a fresh database,
        // including the first-arg index.
        assert!(db.add_fact("p", vec![Val::int(1), Val::int(2)]));
        assert!(db.contains("p", &[Val::int(1), Val::int(2)]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn contains_with_unseen_string_is_false() {
        let db = run("p(\"x\").", Database::new());
        assert!(!db.contains("p", &[Val::str("eval-contains-unseen-sym")]));
        assert!(!db.contains("eval-unseen-pred-sym", &[Val::int(1)]));
    }

    #[test]
    fn engines_share_one_compiled_program() {
        let program = Program::parse("p(X) :- q(X).").unwrap();
        let compiled = Arc::new(CompiledProgram::compile(&program).unwrap());
        let a = Engine::from_compiled(Arc::clone(&compiled));
        let b = Engine::from_compiled(Arc::clone(&compiled)).with_mode(EvalMode::Naive);
        let mut db = Database::new();
        db.add_fact("q", vec![Val::int(7)]);
        assert!(a.run(db.clone()).unwrap().contains("p", &[Val::int(7)]));
        assert!(b.run(db).unwrap().contains("p", &[Val::int(7)]));
        assert_eq!(Arc::strong_count(&compiled), 3);
    }
}
