//! Registry-backed instruments for the Datalog engine.
//!
//! [`EvalMetrics`] bundles the handles one evaluation site needs:
//! counters for evaluations/derivations/rule applications, a rounds
//! histogram, and a latency histogram timed by the registry's injected
//! clock (so virtual-time tests see exact durations). Construction is
//! get-or-create — many `EvalMetrics` against one registry share the
//! same underlying series.

use crate::eval::EvalStats;
use nrslb_obs::{Clock, Counter, Histogram, Registry, Span};
use std::sync::Arc;

/// Instrument handles for [`CompiledProgram`](crate::CompiledProgram)
/// evaluation, created against an [`nrslb_obs::Registry`].
#[derive(Clone, Debug)]
pub struct EvalMetrics {
    /// Evaluations completed successfully.
    pub evaluations: Counter,
    /// Evaluations that returned an error (budget, arithmetic, …).
    pub eval_errors: Counter,
    /// Tuples derived across all evaluations.
    pub tuples_derived: Counter,
    /// Rule applications (body re-evaluations) across all evaluations.
    pub rule_applications: Counter,
    /// Fixpoint rounds per evaluation.
    pub rounds: Histogram,
    /// Evaluation wall (or virtual) time in microseconds.
    pub latency_us: Histogram,
    clock: Arc<dyn Clock>,
}

impl EvalMetrics {
    /// Create (or re-attach to) the engine's metric series in `registry`.
    pub fn new(registry: &Registry) -> EvalMetrics {
        EvalMetrics {
            evaluations: registry.counter(
                "nrslb_datalog_evaluations_total",
                "datalog evaluations completed",
            ),
            eval_errors: registry.counter(
                "nrslb_datalog_eval_errors_total",
                "datalog evaluations that returned an error",
            ),
            tuples_derived: registry.counter(
                "nrslb_datalog_tuples_derived_total",
                "tuples derived across all evaluations",
            ),
            rule_applications: registry.counter(
                "nrslb_datalog_rule_applications_total",
                "rule applications across all evaluations",
            ),
            rounds: registry.histogram(
                "nrslb_datalog_eval_rounds",
                "fixpoint rounds per evaluation",
            ),
            latency_us: registry.histogram(
                "nrslb_datalog_eval_latency_us",
                "evaluation latency in microseconds",
            ),
            clock: Arc::clone(registry.clock()),
        }
    }

    /// A span timing one evaluation into `latency_us`.
    pub fn span(&self) -> Span {
        Span::enter(self.latency_us.clone(), Arc::clone(&self.clock))
    }

    /// Record a finished evaluation's statistics (the span records the
    /// latency on drop; this records everything else).
    pub fn record(&self, stats: &EvalStats) {
        self.evaluations.inc();
        self.tuples_derived.add(stats.derived as u64);
        self.rule_applications.add(stats.rule_applications as u64);
        self.rounds.observe(stats.rounds as u64);
    }
}
