//! Incremental maintenance of derived facts under EDB deltas.
//!
//! A root-store feed publishes small deltas, but until this module the
//! only way to refresh derived state was from scratch: throw the overlay
//! away and re-run the full semi-naive fixpoint. Here a
//! [`CompiledProgram`] maintains its derived tuples *incrementally*:
//! [`CompiledProgram::apply_delta`] takes the EDB facts a delta inserts
//! and removes, propagates the change through the strata, and returns
//! exactly which visible tuples appeared and disappeared.
//!
//! Two classic maintenance algorithms are used, chosen per stratum:
//!
//! * **Counting** — for strata whose rules never reference a predicate
//!   derived in the *same* stratum (the common case: GCC policies are
//!   small and non-recursive). Each derived tuple carries the number of
//!   rule instantiations currently deriving it; a delta adjusts counts
//!   via the telescoping rule (body position `i` ranges over the signed
//!   delta, positions before `i` read the *new* state, positions after
//!   read the *old* state) and a tuple is visible exactly while its
//!   count is positive or it has EDB support. Deletion is as cheap as
//!   insertion and never re-derives anything.
//! * **DRed** (delete-and-rederive) — the fallback for strata with
//!   intra-stratum (e.g. recursive) references, where counts diverge
//!   (a cyclic derivation can support itself). Deletions are
//!   over-approximated over the old state, candidates are rescued by
//!   re-derivation over the new state, then insertions run semi-naive.
//!   Stratification guarantees negation only ever references strictly
//!   lower strata, so intra-stratum propagation is purely positive.
//!
//! [`MaintenancePolicy::ForceDRed`] routes *every* stratum through DRed
//! so differential tests can exercise both code paths on the same
//! programs. The from-scratch evaluator
//! ([`CompiledProgram::evaluate_layered_scratch`]) remains the reference
//! and ablation arm; the delta-vs-scratch proptests and the simulator's
//! differential oracle hold the two byte-identical.
//!
//! ## Database contract
//!
//! The maintained [`LayeredDatabase`] splits exactly as in per-run
//! evaluation: the **base** holds the EDB, the **overlay** holds derived
//! tuples not present in the base (the overlay invariant
//! `overlay ∩ base = ∅` is preserved across deltas). The first
//! [`CompiledProgram::apply_delta`] call on a fresh
//! [`IncrementalState`] rebuilds the overlay from scratch (establishing
//! the baseline — those tuples are *not* reported as changes), then
//! applies the delta incrementally. One state tracks one
//! `(program, database)` pair; feeding it a different database or
//! program produces garbage, and [`IncrementalState::reset`] forces
//! re-initialization after out-of-band edits.

use crate::compile::{
    check_budget, compare, eval_cexpr, CItem, CLit, CRule, CTerm, CompiledProgram,
};
use crate::eval::{EvalStats, DEFAULT_BUDGET};
use crate::intern::{intern, FxBuild, ITuple, ITupleSet, IVal, Sym, SymMap};
use crate::layered::LayeredDatabase;
use crate::{DatalogError, Val};
use std::collections::HashMap;

/// How strata are assigned to maintenance algorithms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Counting for strata without intra-stratum references, DRed for
    /// the rest (the production default).
    #[default]
    Auto,
    /// Delete-and-rederive everywhere — the differential-testing arm
    /// that exercises the DRed path on programs counting would handle.
    ForceDRed,
}

/// Persistent bookkeeping for incrementally maintaining one
/// `(program, database)` pair across deltas.
#[derive(Clone, Debug, Default)]
pub struct IncrementalState {
    policy: MaintenancePolicy,
    ready: bool,
    /// Per stratum: `true` = counting, `false` = DRed.
    counting: Vec<bool>,
    /// Which stratum derives each IDB predicate.
    stratum_of: SymMap<usize>,
    /// Signed derivation counts for tuples of counting strata.
    counts: SymMap<HashMap<ITuple, i64, FxBuild>>,
}

impl IncrementalState {
    /// A fresh state under `policy`; the first
    /// [`CompiledProgram::apply_delta`] call initializes it against the
    /// program and database it is handed.
    pub fn new(policy: MaintenancePolicy) -> IncrementalState {
        IncrementalState {
            policy,
            ..IncrementalState::default()
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Has the baseline evaluation run yet?
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Per-stratum algorithm assignment (`true` = counting), empty until
    /// initialized. Exposed so tests can assert which path a program
    /// exercises.
    pub fn counting_strata(&self) -> &[bool] {
        &self.counting
    }

    /// Drop all derived bookkeeping; the next
    /// [`CompiledProgram::apply_delta`] re-runs the baseline evaluation.
    pub fn reset(&mut self) {
        self.ready = false;
        self.counting.clear();
        self.stratum_of.clear();
        self.counts.clear();
    }
}

/// What one [`CompiledProgram::apply_delta`] call changed: every tuple
/// that became visible or stopped being visible in the combined
/// (base + overlay) view — derived tuples plus the effective EDB
/// changes themselves. Order is unspecified (compare as sets).
#[derive(Clone, Debug, Default)]
pub struct DeltaOutcome {
    /// Tuples now visible that were not before.
    pub added: Vec<(Sym, ITuple)>,
    /// Tuples no longer visible.
    pub removed: Vec<(Sym, ITuple)>,
    /// Work counters (shared shape with full evaluation).
    pub stats: EvalStats,
}

impl DeltaOutcome {
    /// Did the delta change anything visible?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Intern a `(predicate, tuple)` pair for [`CompiledProgram::apply_delta`]
/// — the test/bench convenience mirroring [`Database::add_fact`](crate::Database::add_fact).
pub fn delta_fact(pred: impl AsRef<str>, tuple: &[Val]) -> (Sym, ITuple) {
    (
        intern(pred.as_ref()),
        tuple.iter().map(IVal::from_val).collect(),
    )
}

impl CompiledProgram {
    /// Apply an EDB delta — `added` inserted into and `removed` deleted
    /// from the base layer — and incrementally maintain the derived
    /// overlay, with the default derived-tuple budget. Returns the
    /// visible changes. See the module docs for the database contract.
    ///
    /// Set semantics: inserting a present tuple or removing an absent
    /// one is a no-op, and a tuple named in both lists stays present
    /// (addition wins).
    pub fn apply_delta(
        &self,
        db: &mut LayeredDatabase,
        state: &mut IncrementalState,
        added: &[(Sym, ITuple)],
        removed: &[(Sym, ITuple)],
    ) -> Result<DeltaOutcome, DatalogError> {
        self.apply_delta_metered(db, state, added, removed, DEFAULT_BUDGET)
    }

    /// [`CompiledProgram::apply_delta`] with an explicit budget.
    pub fn apply_delta_metered(
        &self,
        db: &mut LayeredDatabase,
        state: &mut IncrementalState,
        added: &[(Sym, ITuple)],
        removed: &[(Sym, ITuple)],
        budget: usize,
    ) -> Result<DeltaOutcome, DatalogError> {
        let strata_count = self.strata.len();
        let mut m = Maintainer {
            compiled: self,
            db,
            state,
            dplus: SymMap::default(),
            dminus: SymMap::default(),
            dred_seed_add: vec![Vec::new(); strata_count],
            dred_seed_rem: vec![Vec::new(); strata_count],
            stats: EvalStats::default(),
            budget,
        };
        m.ensure_ready()?;
        m.apply_edb(added, removed);
        for s in 0..strata_count {
            if m.state.counting[s] {
                m.process_counting(s)?;
            } else {
                m.process_dred(s)?;
            }
        }
        Ok(m.finish())
    }
}

/// Which state a database read observes.
#[derive(Clone, Copy, Debug)]
enum View {
    /// The current layered view.
    New,
    /// The pre-delta view, reconstructed as
    /// `(new \ Δ⁺) ∪ Δ⁻` from the recorded visible changes.
    Old,
}

/// How body literals map to views during one rule evaluation.
#[derive(Clone, Copy, Debug)]
enum Split {
    /// Every literal reads the current state (insertion / re-derivation
    /// / baseline evaluation).
    AllNew,
    /// Every literal reads the pre-delta state (over-deletion).
    AllOld,
    /// Literals before the pinned position read the new state, literals
    /// after read the old state — the telescoping split of the counting
    /// algorithm.
    AtPin,
}

/// Immutable evaluation context for one rule solve.
struct Ctx<'a> {
    db: &'a LayeredDatabase,
    dplus: &'a SymMap<ITupleSet>,
    dminus: &'a SymMap<ITupleSet>,
    split: Split,
    /// Body item index pinned to a single changed tuple, if any.
    pin: Option<(usize, &'a [IVal])>,
    budget: usize,
}

impl Ctx<'_> {
    fn view_at(&self, idx: usize) -> View {
        match self.split {
            Split::AllNew => View::New,
            Split::AllOld => View::Old,
            Split::AtPin => match self.pin {
                Some((p, _)) if idx > p => View::Old,
                _ => View::New,
            },
        }
    }

    fn member(&self, view: View, pred: Sym, tuple: &[IVal]) -> bool {
        match view {
            View::New => self.db.icontains(pred, tuple),
            View::Old => {
                if set_contains(self.dplus.get(&pred), tuple) {
                    false
                } else if set_contains(self.dminus.get(&pred), tuple) {
                    true
                } else {
                    self.db.icontains(pred, tuple)
                }
            }
        }
    }

    /// All tuples of `pred` under `view`, materialized (the incremental
    /// solver trades the per-run index for view flexibility; these
    /// relations are feed-delta sized, not chain-fact sized).
    fn tuples_under(&self, view: View, pred: Sym) -> Vec<ITuple> {
        let stored = self
            .db
            .base()
            .ituples(pred)
            .iter()
            .chain(self.db.overlay().ituples(pred));
        match view {
            View::New => stored.cloned().collect(),
            View::Old => {
                let plus = self.dplus.get(&pred);
                let mut out: Vec<ITuple> = stored
                    .filter(|t| !set_contains(plus, t.as_slice()))
                    .cloned()
                    .collect();
                if let Some(minus) = self.dminus.get(&pred) {
                    out.extend(minus.iter().cloned());
                }
                out
            }
        }
    }

    /// Tuples of `pred` under `view` whose first argument is `first`,
    /// served from the relations' first-argument index — the join fast
    /// path when unification has already bound the leading position.
    fn tuples_under_first(&self, view: View, pred: Sym, first: IVal) -> Vec<ITuple> {
        let stored = self
            .db
            .base()
            .ituples_first(pred, first)
            .chain(self.db.overlay().ituples_first(pred, first));
        match view {
            View::New => stored.cloned().collect(),
            View::Old => {
                let plus = self.dplus.get(&pred);
                let mut out: Vec<ITuple> = stored
                    .filter(|t| !set_contains(plus, t.as_slice()))
                    .cloned()
                    .collect();
                if let Some(minus) = self.dminus.get(&pred) {
                    out.extend(
                        minus
                            .iter()
                            .filter(|t| t.as_slice().first() == Some(&first))
                            .cloned(),
                    );
                }
                out
            }
        }
    }
}

fn set_contains(set: Option<&ITupleSet>, tuple: &[IVal]) -> bool {
    set.map(|s| s.contains(tuple)).unwrap_or(false)
}

fn resolve_term(term: &CTerm, env: &[Option<IVal>]) -> IVal {
    match term {
        CTerm::Const(v) => *v,
        CTerm::Var(i) => env[*i as usize].expect("safety: vars bound"),
    }
}

/// Recursive backtracking solve of `rule.body[idx..]` under the context's
/// view split, pushing every ground head instantiation onto `out`
/// (duplicates included — the counting algorithm needs multiplicity).
fn solve(
    ctx: &Ctx<'_>,
    rule: &CRule,
    idx: usize,
    env: &mut Vec<Option<IVal>>,
    stats: &mut EvalStats,
    out: &mut Vec<ITuple>,
) -> Result<(), DatalogError> {
    if idx == rule.body.len() {
        let mut head = ITuple::new();
        for arg in &rule.head_args {
            head.push(resolve_term(arg, env));
        }
        out.push(head);
        stats.derived += 1;
        return check_budget(stats, ctx.budget);
    }
    stats.rule_applications += 1;
    match &rule.body[idx] {
        CItem::Pos(lit) => match ctx.pin {
            Some((p, tuple)) if p == idx => {
                try_tuple(ctx, rule, idx, lit, tuple, env, stats, out)?;
            }
            _ => {
                let view = ctx.view_at(idx);
                // Ground fast path: every argument already resolves, so
                // the literal is a membership test (at most one match —
                // identical to what the scan would visit).
                let mut ground = ITuple::new();
                let mut all_bound = true;
                for arg in &lit.args {
                    match arg {
                        CTerm::Const(v) => ground.push(*v),
                        CTerm::Var(i) => match env[*i as usize] {
                            Some(v) => ground.push(v),
                            None => {
                                all_bound = false;
                                break;
                            }
                        },
                    }
                }
                if all_bound {
                    if ctx.member(view, lit.pred, ground.as_slice()) {
                        solve(ctx, rule, idx + 1, env, stats, out)?;
                    }
                } else if let Some(first) = lit.args.first().and_then(|arg| match arg {
                    CTerm::Const(v) => Some(*v),
                    CTerm::Var(i) => env[*i as usize],
                }) {
                    // Leading argument bound: join through the first-arg
                    // index instead of scanning the relation.
                    for tuple in ctx.tuples_under_first(view, lit.pred, first) {
                        try_tuple(ctx, rule, idx, lit, tuple.as_slice(), env, stats, out)?;
                    }
                } else {
                    for tuple in ctx.tuples_under(view, lit.pred) {
                        try_tuple(ctx, rule, idx, lit, tuple.as_slice(), env, stats, out)?;
                    }
                }
            }
        },
        CItem::Neg(lit) => match ctx.pin {
            // A pinned negated literal: the membership flip *is* the
            // trigger, so unify (binding any free variables) and move
            // on — the caller accounts for the flip's direction.
            Some((p, tuple)) if p == idx => {
                try_tuple(ctx, rule, idx, lit, tuple, env, stats, out)?;
            }
            _ => {
                // Safety guarantees all vars bound; ground the literal.
                let mut tuple = ITuple::new();
                for arg in &lit.args {
                    tuple.push(resolve_term(arg, env));
                }
                if !ctx.member(ctx.view_at(idx), lit.pred, tuple.as_slice()) {
                    solve(ctx, rule, idx + 1, env, stats, out)?;
                }
            }
        },
        CItem::Cmp(l, op, r) => {
            let lv = eval_cexpr(l, env)?;
            let rv = eval_cexpr(r, env)?;
            if compare(lv, *op, rv)? {
                solve(ctx, rule, idx + 1, env, stats, out)?;
            }
        }
        CItem::Assign(v, e) => {
            let val = eval_cexpr(e, env)?;
            match env[*v as usize] {
                // Re-assignment acts as an equality check.
                Some(bound) => {
                    if bound == val {
                        solve(ctx, rule, idx + 1, env, stats, out)?;
                    }
                }
                None => {
                    env[*v as usize] = Some(val);
                    solve(ctx, rule, idx + 1, env, stats, out)?;
                    env[*v as usize] = None;
                }
            }
        }
    }
    Ok(())
}

/// Unify literal `idx` against one concrete tuple and recurse; newly
/// bound argument positions are tracked in a bitmask (arity ≤ 128,
/// enforced at compile time) so backtracking never allocates.
#[allow(clippy::too_many_arguments)]
fn try_tuple(
    ctx: &Ctx<'_>,
    rule: &CRule,
    idx: usize,
    lit: &CLit,
    tuple: &[IVal],
    env: &mut Vec<Option<IVal>>,
    stats: &mut EvalStats,
    out: &mut Vec<ITuple>,
) -> Result<(), DatalogError> {
    if lit.args.len() != tuple.len() {
        return Ok(());
    }
    let mut newly: u128 = 0;
    let mut ok = true;
    for (pos, (arg, val)) in lit.args.iter().zip(tuple).enumerate() {
        match arg {
            CTerm::Const(c) => {
                if c != val {
                    ok = false;
                    break;
                }
            }
            CTerm::Var(i) => match env[*i as usize] {
                Some(bound) => {
                    if bound != *val {
                        ok = false;
                        break;
                    }
                }
                None => {
                    env[*i as usize] = Some(*val);
                    newly |= 1 << pos;
                }
            },
        }
    }
    let result = if ok {
        solve(ctx, rule, idx + 1, env, stats, out)
    } else {
        Ok(())
    };
    for (pos, arg) in lit.args.iter().enumerate() {
        if newly & (1 << pos) != 0 {
            if let CTerm::Var(i) = arg {
                env[*i as usize] = None;
            }
        }
    }
    result
}

/// How a predicate is maintained.
enum Class {
    /// Pure EDB: never derived, changes are visible directly.
    Edb,
    /// Derived in a counting stratum.
    Counting,
    /// Derived in a DRed stratum (carries the stratum index).
    DRed(usize),
}

/// The working set of one `apply_delta` call.
struct Maintainer<'a> {
    compiled: &'a CompiledProgram,
    db: &'a mut LayeredDatabase,
    state: &'a mut IncrementalState,
    /// Visible additions recorded so far this delta, per predicate.
    dplus: SymMap<ITupleSet>,
    /// Visible removals recorded so far this delta, per predicate.
    dminus: SymMap<ITupleSet>,
    /// EDB changes to DRed-stratum predicates, deferred into that
    /// stratum's own phases.
    dred_seed_add: Vec<Vec<(Sym, ITuple)>>,
    dred_seed_rem: Vec<Vec<(Sym, ITuple)>>,
    stats: EvalStats,
    budget: usize,
}

impl Maintainer<'_> {
    /// Run the baseline (from-scratch, counting-aware) evaluation if the
    /// state has not been initialized yet.
    fn ensure_ready(&mut self) -> Result<(), DatalogError> {
        if self.state.ready {
            return Ok(());
        }
        let compiled = self.compiled;
        let strata_count = compiled.strata.len();
        // Classify strata: counting unless some rule references a
        // predicate derived in its own stratum (or the policy forces
        // DRed everywhere).
        self.state.counting = (0..strata_count)
            .map(|s| {
                if matches!(self.state.policy, MaintenancePolicy::ForceDRed) {
                    return false;
                }
                !compiled.strata[s].iter().any(|&ri| {
                    compiled.crules[ri].body.iter().any(|item| match item {
                        CItem::Pos(l) | CItem::Neg(l) => compiled.derived_syms[s].contains(&l.pred),
                        _ => false,
                    })
                })
            })
            .collect();
        self.state.stratum_of.clear();
        for (s, syms) in compiled.derived_syms.iter().enumerate() {
            for sym in syms {
                self.state.stratum_of.insert(*sym, s);
            }
        }
        self.state.counts.clear();
        self.db.clear_overlay_retaining();

        // Fact rules grouped by their head's stratum.
        let mut fact_heads: Vec<Vec<(Sym, ITuple)>> = vec![Vec::new(); strata_count];
        for rule in &compiled.crules {
            if !rule.is_fact() {
                continue;
            }
            let head: ITuple = rule
                .head_args
                .iter()
                .map(|a| resolve_term(a, &[]))
                .collect();
            let s = self.state.stratum_of[&rule.head_pred];
            fact_heads[s].push((rule.head_pred, head));
        }

        for (s, heads) in fact_heads.iter().enumerate() {
            for (p, h) in heads {
                if self.state.counting[s] {
                    *self
                        .state
                        .counts
                        .entry(*p)
                        .or_default()
                        .entry(h.clone())
                        .or_insert(0) += 1;
                }
                self.db.add_ifact(*p, h.clone());
            }
            if self.state.counting[s] {
                // No intra-stratum references: a single pass computes
                // both the fixpoint and the exact instantiation counts.
                for &ri in &compiled.strata[s] {
                    let rule = &compiled.crules[ri];
                    let mut out = Vec::new();
                    self.solve_rule(rule, None, Split::AllNew, &mut out)?;
                    for h in out {
                        *self
                            .state
                            .counts
                            .entry(rule.head_pred)
                            .or_default()
                            .entry(h.clone())
                            .or_insert(0) += 1;
                        self.db.add_ifact(rule.head_pred, h);
                    }
                }
            } else {
                // Naive fixpoint (initialization only; steady state goes
                // through the delta phases).
                loop {
                    let mut changed = false;
                    for &ri in &compiled.strata[s] {
                        let rule = &compiled.crules[ri];
                        let mut out = Vec::new();
                        self.solve_rule(rule, None, Split::AllNew, &mut out)?;
                        for h in out {
                            if !self.db.icontains(rule.head_pred, h.as_slice()) {
                                self.db.add_ifact(rule.head_pred, h);
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                    self.stats.rounds += 1;
                }
            }
        }
        self.state.ready = true;
        Ok(())
    }

    fn classify(&self, pred: Sym) -> Class {
        match self.state.stratum_of.get(&pred) {
            None => Class::Edb,
            Some(&s) if self.state.counting[s] => Class::Counting,
            Some(&s) => Class::DRed(s),
        }
    }

    /// Record a tuple becoming visible, cancelling against an earlier
    /// removal in the same delta.
    fn record_add(&mut self, pred: Sym, tuple: ITuple) {
        if let Some(set) = self.dminus.get_mut(&pred) {
            if set.remove(tuple.as_slice()) {
                return;
            }
        }
        self.dplus.entry(pred).or_default().insert(tuple);
    }

    /// Record a tuple becoming invisible, cancelling against an earlier
    /// addition in the same delta.
    fn record_rem(&mut self, pred: Sym, tuple: ITuple) {
        if let Some(set) = self.dplus.get_mut(&pred) {
            if set.remove(tuple.as_slice()) {
                return;
            }
        }
        self.dminus.entry(pred).or_default().insert(tuple);
    }

    fn count_of(&self, pred: Sym, tuple: &ITuple) -> i64 {
        self.state
            .counts
            .get(&pred)
            .and_then(|m| m.get(tuple))
            .copied()
            .unwrap_or(0)
    }

    /// Normalize the request to effective set changes, apply them to the
    /// base layer, and classify each into immediate visibility changes
    /// (EDB / counting predicates) or deferred DRed seeds.
    fn apply_edb(&mut self, added: &[(Sym, ITuple)], removed: &[(Sym, ITuple)]) {
        let mut add_req: SymMap<ITupleSet> = SymMap::default();
        for (p, t) in added {
            add_req.entry(*p).or_default().insert(t.clone());
        }
        let mut eff_rem: Vec<(Sym, ITuple)> = Vec::new();
        let mut seen: SymMap<ITupleSet> = SymMap::default();
        for (p, t) in removed {
            if set_contains(add_req.get(p), t.as_slice()) {
                continue; // re-added in the same delta: net no-op
            }
            if !self.db.base().icontains(*p, t.as_slice()) {
                continue; // never stored: removal is a no-op
            }
            if seen.entry(*p).or_default().insert(t.clone()) {
                eff_rem.push((*p, t.clone()));
            }
        }
        let mut eff_add: Vec<(Sym, ITuple)> = Vec::new();
        seen.clear();
        for (p, t) in added {
            if self.db.base().icontains(*p, t.as_slice()) {
                continue; // already stored: insertion is a no-op
            }
            if seen.entry(*p).or_default().insert(t.clone()) {
                eff_add.push((*p, t.clone()));
            }
        }

        for (p, t) in eff_rem {
            self.db.base_mut().remove_ifact(p, t.as_slice());
            match self.classify(p) {
                Class::Edb => self.record_rem(p, t),
                Class::Counting => {
                    if self.count_of(p, &t) > 0 {
                        // Still derivable: visibility is unchanged, but
                        // the tuple now lives in the overlay.
                        self.db.add_ifact(p, t);
                    } else {
                        self.record_rem(p, t);
                    }
                }
                Class::DRed(s) => {
                    // Tentatively invisible; the stratum's re-derivation
                    // phase rescues it (cancelling this record) when it
                    // is still derivable.
                    self.record_rem(p, t.clone());
                    self.dred_seed_rem[s].push((p, t));
                }
            }
        }
        for (p, t) in eff_add {
            self.db.base_mut().add_ifact(p, t.clone());
            match self.classify(p) {
                Class::Edb => self.record_add(p, t),
                Class::Counting => {
                    if self.count_of(p, &t) > 0 {
                        // Was already visible via the overlay; the base
                        // now masks it (overlay invariant).
                        self.db.remove_overlay_ifact(p, t.as_slice());
                    } else {
                        self.record_add(p, t);
                    }
                }
                Class::DRed(s) => {
                    if self.db.remove_overlay_ifact(p, t.as_slice()) {
                        // Already derivable: visible before and after.
                    } else {
                        self.record_add(p, t.clone());
                        self.dred_seed_add[s].push((p, t));
                    }
                }
            }
        }
    }

    fn solve_rule(
        &mut self,
        rule: &CRule,
        pin: Option<(usize, &[IVal])>,
        split: Split,
        out: &mut Vec<ITuple>,
    ) -> Result<(), DatalogError> {
        let Maintainer {
            db,
            dplus,
            dminus,
            stats,
            budget,
            ..
        } = self;
        let ctx = Ctx {
            db,
            dplus,
            dminus,
            split,
            pin,
            budget: *budget,
        };
        let mut env: Vec<Option<IVal>> = vec![None; rule.var_count];
        solve(&ctx, rule, 0, &mut env, stats, out)
    }

    /// Query-driven derivability: unify `rule`'s head against `tuple`
    /// (pre-binding the shared variables) and solve the body under
    /// `split`. Keeps DRed's rescue phase proportional to the delta's
    /// blast radius instead of the database size.
    fn rule_derives(
        &mut self,
        rule: &CRule,
        tuple: &ITuple,
        split: Split,
    ) -> Result<bool, DatalogError> {
        if rule.head_args.len() != tuple.len() {
            return Ok(false);
        }
        let mut env: Vec<Option<IVal>> = vec![None; rule.var_count];
        for (arg, val) in rule.head_args.iter().zip(tuple.as_slice().iter().copied()) {
            match arg {
                CTerm::Const(c) => {
                    if *c != val {
                        return Ok(false);
                    }
                }
                CTerm::Var(i) => {
                    let slot = &mut env[*i as usize];
                    match slot {
                        Some(bound) if *bound != val => return Ok(false),
                        _ => *slot = Some(val),
                    }
                }
            }
        }
        let Maintainer {
            db,
            dplus,
            dminus,
            stats,
            budget,
            ..
        } = self;
        let ctx = Ctx {
            db,
            dplus,
            dminus,
            split,
            pin: None,
            budget: *budget,
        };
        let mut out = Vec::new();
        solve(&ctx, rule, 0, &mut env, stats, &mut out)?;
        Ok(!out.is_empty())
    }

    /// The signed visible changes of `pred` so far, snapshotted for
    /// trigger iteration.
    fn changes_of(&self, pred: Sym) -> Vec<(ITuple, i64)> {
        let plus = self
            .dplus
            .get(&pred)
            .into_iter()
            .flat_map(|s| s.iter().map(|t| (t.clone(), 1)));
        let minus = self
            .dminus
            .get(&pred)
            .into_iter()
            .flat_map(|s| s.iter().map(|t| (t.clone(), -1)));
        plus.chain(minus).collect()
    }

    /// Counting maintenance for stratum `s`: telescoping signed count
    /// adjustments, then aggregated visibility transitions.
    fn process_counting(&mut self, s: usize) -> Result<(), DatalogError> {
        let compiled = self.compiled;
        let mut pending: HashMap<(Sym, ITuple), i64, FxBuild> = HashMap::default();
        for &ri in &compiled.strata[s] {
            let rule = &compiled.crules[ri];
            for (i, item) in rule.body.iter().enumerate() {
                let (pred, lit_sign) = match item {
                    CItem::Pos(l) => (l.pred, 1i64),
                    CItem::Neg(l) => (l.pred, -1i64),
                    _ => continue,
                };
                for (t, dir) in self.changes_of(pred) {
                    let mut out = Vec::new();
                    self.solve_rule(rule, Some((i, t.as_slice())), Split::AtPin, &mut out)?;
                    for h in out {
                        *pending.entry((rule.head_pred, h)).or_insert(0) += lit_sign * dir;
                    }
                }
            }
        }
        for ((p, t), dc) in pending {
            if dc == 0 {
                continue;
            }
            let counts = self.state.counts.entry(p).or_default();
            let slot = counts.entry(t.clone()).or_insert(0);
            let old = *slot;
            let new = old + dc;
            debug_assert!(new >= 0, "negative derivation count for {p:?}");
            if new == 0 {
                counts.remove(&t);
            } else {
                *slot = new;
            }
            let base_has = self.db.base().icontains(p, t.as_slice());
            if old <= 0 && new > 0 {
                if !base_has && self.db.add_ifact(p, t.clone()) {
                    self.record_add(p, t);
                }
            } else if old > 0 && new <= 0 {
                // EDB support masks the loss of all derivations.
                if !base_has && self.db.remove_overlay_ifact(p, t.as_slice()) {
                    self.record_rem(p, t);
                }
            }
        }
        Ok(())
    }

    /// DRed maintenance for stratum `s`: over-delete (old state) →
    /// apply → re-derive (new state, restricted to candidates) → insert
    /// (semi-naive over the new state).
    fn process_dred(&mut self, s: usize) -> Result<(), DatalogError> {
        let compiled = self.compiled;

        // ---- Phase 1: over-delete, evaluated entirely over the OLD
        // state, collecting candidates without mutating anything. ----
        let mut over: SymMap<ITupleSet> = SymMap::default();
        let mut frontier: Vec<(Sym, ITuple)> = Vec::new();
        for (p, t) in std::mem::take(&mut self.dred_seed_rem[s]) {
            if over.entry(p).or_default().insert(t.clone()) {
                frontier.push((p, t));
            }
        }
        for &ri in &compiled.strata[s] {
            let rule = &compiled.crules[ri];
            for (i, item) in rule.body.iter().enumerate() {
                let triggers: Vec<ITuple> = match item {
                    // A lower-stratum (or EDB) positive literal fires on
                    // removals; same-stratum literals go through the
                    // frontier below.
                    CItem::Pos(l) if !compiled.derived_syms[s].contains(&l.pred) => self
                        .dminus
                        .get(&l.pred)
                        .map(|set| set.iter().cloned().collect())
                        .unwrap_or_default(),
                    // Negation references strictly lower strata; it
                    // fires on additions (the negation just turned
                    // false).
                    CItem::Neg(l) => self
                        .dplus
                        .get(&l.pred)
                        .map(|set| set.iter().cloned().collect())
                        .unwrap_or_default(),
                    _ => Vec::new(),
                };
                for t in triggers {
                    let mut out = Vec::new();
                    self.solve_rule(rule, Some((i, t.as_slice())), Split::AllOld, &mut out)?;
                    for h in out {
                        self.mark_overdeleted(rule.head_pred, h, &mut over, &mut frontier);
                    }
                }
            }
        }
        while let Some((p, t)) = frontier.pop() {
            for &ri in &compiled.strata[s] {
                let rule = &compiled.crules[ri];
                for (i, item) in rule.body.iter().enumerate() {
                    let CItem::Pos(l) = item else { continue };
                    if l.pred != p {
                        continue;
                    }
                    let mut out = Vec::new();
                    self.solve_rule(rule, Some((i, t.as_slice())), Split::AllOld, &mut out)?;
                    for h in out {
                        self.mark_overdeleted(rule.head_pred, h, &mut over, &mut frontier);
                    }
                }
            }
        }

        // ---- Phase 2: apply the over-deletions. Base-removal seeds
        // recorded their visibility change in apply_edb; everything else
        // leaves the overlay here. ----
        for (p, set) in &over {
            for t in set {
                if self.db.remove_overlay_ifact(*p, t.as_slice()) {
                    self.record_rem(*p, t.clone());
                }
            }
        }

        // ---- Phase 3: re-derive, restricted to over-deleted
        // candidates, over the NEW state. Query-driven: each candidate
        // is checked by unifying it against rule heads, so the cost
        // tracks the blast radius, not the database. ----
        if over.values().any(|set| !set.is_empty()) {
            let mut work: Vec<(Sym, ITuple)> = Vec::new();
            // Fact rules of this stratum hold unconditionally.
            for rule in &compiled.crules {
                if !rule.is_fact() || self.state.stratum_of.get(&rule.head_pred) != Some(&s) {
                    continue;
                }
                let head: ITuple = rule
                    .head_args
                    .iter()
                    .map(|a| resolve_term(a, &[]))
                    .collect();
                self.rescue(rule.head_pred, head, &over, &mut work);
            }
            let candidates: Vec<(Sym, ITuple)> = over
                .iter()
                .flat_map(|(p, set)| set.iter().map(move |t| (*p, t.clone())))
                .collect();
            for (p, t) in candidates {
                if self.db.icontains(p, t.as_slice()) {
                    continue; // already rescued (e.g. by a fact rule)
                }
                for &ri in &compiled.strata[s] {
                    let rule = &compiled.crules[ri];
                    if rule.head_pred != p {
                        continue;
                    }
                    if self.rule_derives(rule, &t, Split::AllNew)? {
                        self.rescue(p, t.clone(), &over, &mut work);
                        break;
                    }
                }
            }
            while let Some((p, t)) = work.pop() {
                for &ri in &compiled.strata[s] {
                    let rule = &compiled.crules[ri];
                    for (i, item) in rule.body.iter().enumerate() {
                        let CItem::Pos(l) = item else { continue };
                        if l.pred != p {
                            continue;
                        }
                        let mut out = Vec::new();
                        self.solve_rule(rule, Some((i, t.as_slice())), Split::AllNew, &mut out)?;
                        for h in out {
                            self.rescue(rule.head_pred, h, &over, &mut work);
                        }
                    }
                }
            }
        }

        // ---- Phase 4: insert, semi-naive over the NEW state. ----
        let mut work: Vec<(Sym, ITuple)> = std::mem::take(&mut self.dred_seed_add[s]);
        for &ri in &compiled.strata[s] {
            let rule = &compiled.crules[ri];
            for (i, item) in rule.body.iter().enumerate() {
                let triggers: Vec<ITuple> = match item {
                    CItem::Pos(l) if !compiled.derived_syms[s].contains(&l.pred) => self
                        .dplus
                        .get(&l.pred)
                        .map(|set| set.iter().cloned().collect())
                        .unwrap_or_default(),
                    // The negation just turned true.
                    CItem::Neg(l) => self
                        .dminus
                        .get(&l.pred)
                        .map(|set| set.iter().cloned().collect())
                        .unwrap_or_default(),
                    _ => Vec::new(),
                };
                for t in triggers {
                    let mut out = Vec::new();
                    self.solve_rule(rule, Some((i, t.as_slice())), Split::AllNew, &mut out)?;
                    for h in out {
                        self.try_insert(rule.head_pred, h, &mut work);
                    }
                }
            }
        }
        while let Some((p, t)) = work.pop() {
            for &ri in &compiled.strata[s] {
                let rule = &compiled.crules[ri];
                for (i, item) in rule.body.iter().enumerate() {
                    let CItem::Pos(l) = item else { continue };
                    if l.pred != p {
                        continue;
                    }
                    let mut out = Vec::new();
                    self.solve_rule(rule, Some((i, t.as_slice())), Split::AllNew, &mut out)?;
                    for h in out {
                        self.try_insert(rule.head_pred, h, &mut work);
                    }
                }
            }
        }
        Ok(())
    }

    /// Queue a tuple that lost a derivation in the old state. Tuples
    /// with EDB support in the new base stay visible regardless, so
    /// deletion never propagates through them.
    fn mark_overdeleted(
        &self,
        pred: Sym,
        tuple: ITuple,
        over: &mut SymMap<ITupleSet>,
        frontier: &mut Vec<(Sym, ITuple)>,
    ) {
        if self.db.base().icontains(pred, tuple.as_slice()) {
            return;
        }
        if over.entry(pred).or_default().insert(tuple.clone()) {
            frontier.push((pred, tuple));
        }
    }

    /// Restore an over-deleted candidate that is still derivable in the
    /// new state, cancelling its tentative removal record.
    fn rescue(
        &mut self,
        pred: Sym,
        tuple: ITuple,
        over: &SymMap<ITupleSet>,
        work: &mut Vec<(Sym, ITuple)>,
    ) {
        if !set_contains(over.get(&pred), tuple.as_slice()) {
            return;
        }
        if self.db.icontains(pred, tuple.as_slice()) {
            return;
        }
        if self.db.add_ifact(pred, tuple.clone()) {
            self.record_add(pred, tuple.clone());
            work.push((pred, tuple));
        }
    }

    /// Add a newly derived tuple during the insertion phase.
    fn try_insert(&mut self, pred: Sym, tuple: ITuple, work: &mut Vec<(Sym, ITuple)>) {
        if self.db.icontains(pred, tuple.as_slice()) {
            return;
        }
        if self.db.add_ifact(pred, tuple.clone()) {
            self.record_add(pred, tuple.clone());
            work.push((pred, tuple));
        }
    }

    fn finish(self) -> DeltaOutcome {
        let mut outcome = DeltaOutcome {
            stats: self.stats,
            ..DeltaOutcome::default()
        };
        for (p, set) in self.dplus {
            outcome.added.extend(set.into_iter().map(|t| (p, t)));
        }
        for (p, set) in self.dminus {
            outcome.removed.extend(set.into_iter().map(|t| (p, t)));
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Database;
    use crate::Program;
    use std::sync::Arc;

    fn compiled(src: &str) -> CompiledProgram {
        CompiledProgram::compile(&Program::parse(src).unwrap()).unwrap()
    }

    fn s(v: &str) -> Val {
        Val::str(v)
    }

    /// The incremental overlay must match a from-scratch evaluation over
    /// the (post-delta) base, byte for byte in canonical form.
    fn assert_matches_scratch(program: &CompiledProgram, db: &LayeredDatabase) {
        let scratch = program
            .evaluate(Arc::new(db.base().clone()))
            .expect("scratch evaluation");
        assert_eq!(
            db.overlay().to_sorted_fact_text(),
            scratch.overlay().to_sorted_fact_text(),
            "incremental overlay diverged from scratch"
        );
    }

    fn both_policies(run: impl Fn(MaintenancePolicy)) {
        run(MaintenancePolicy::Auto);
        run(MaintenancePolicy::ForceDRed);
    }

    #[test]
    fn counting_insert_and_remove_roundtrip() {
        both_policies(|policy| {
            let program = compiled("path(X, Y) :- edge(X, Y).\npair(X) :- edge(X, _), edge(_, X).");
            let mut base = Database::new();
            base.add_fact("edge", vec![s("a"), s("b")]);
            let mut db = LayeredDatabase::new(Arc::new(base));
            let mut state = IncrementalState::new(policy);

            let out = program
                .apply_delta(
                    &mut db,
                    &mut state,
                    &[delta_fact("edge", &[s("b"), s("a")])],
                    &[],
                )
                .unwrap();
            assert!(db.contains("pair", &[s("a")]));
            assert!(db.contains("pair", &[s("b")]));
            assert_eq!(out.removed, vec![]);
            assert_matches_scratch(&program, &db);

            let out = program
                .apply_delta(
                    &mut db,
                    &mut state,
                    &[],
                    &[delta_fact("edge", &[s("b"), s("a")])],
                )
                .unwrap();
            assert!(!db.contains("pair", &[s("a")]));
            assert!(!db.contains("path", &[s("b"), s("a")]));
            assert!(db.contains("path", &[s("a"), s("b")]));
            assert!(out.added.is_empty());
            assert_matches_scratch(&program, &db);
        });
    }

    #[test]
    fn auto_policy_counts_nonrecursive_and_dreds_recursive() {
        let flat = compiled("p(X) :- e(X, _).");
        let mut db = LayeredDatabase::new(Arc::new(Database::new()));
        let mut state = IncrementalState::new(MaintenancePolicy::Auto);
        flat.apply_delta(&mut db, &mut state, &[], &[]).unwrap();
        assert_eq!(state.counting_strata(), &[true]);

        let rec = compiled("reach(X, Y) :- edge(X, Y).\nreach(X, Z) :- reach(X, Y), edge(Y, Z).");
        let mut db = LayeredDatabase::new(Arc::new(Database::new()));
        let mut state = IncrementalState::new(MaintenancePolicy::Auto);
        rec.apply_delta(&mut db, &mut state, &[], &[]).unwrap();
        assert_eq!(state.counting_strata(), &[false]);
    }

    #[test]
    fn dred_deletes_break_and_rederive_paths() {
        let program =
            compiled("reach(X, Y) :- edge(X, Y).\nreach(X, Z) :- reach(X, Y), edge(Y, Z).");
        let mut base = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c")] {
            base.add_fact("edge", vec![s(a), s(b)]);
        }
        let mut db = LayeredDatabase::new(Arc::new(base));
        let mut state = IncrementalState::new(MaintenancePolicy::Auto);
        program.apply_delta(&mut db, &mut state, &[], &[]).unwrap();
        assert!(db.contains("reach", &[s("a"), s("c")]));

        // Removing edge(b, c) over-deletes reach(a, c), but the direct
        // edge(a, c) re-derives it: the only visible loss is the edge
        // itself plus reach(b, c).
        let out = program
            .apply_delta(
                &mut db,
                &mut state,
                &[],
                &[delta_fact("edge", &[s("b"), s("c")])],
            )
            .unwrap();
        assert!(
            db.contains("reach", &[s("a"), s("c")]),
            "rescued by re-derivation"
        );
        assert!(!db.contains("reach", &[s("b"), s("c")]));
        assert_eq!(out.added, vec![]);
        assert_eq!(out.removed.len(), 2, "{:?}", out.removed);
        assert_matches_scratch(&program, &db);

        // Deleting the rescue edge finally kills reach(a, c).
        program
            .apply_delta(
                &mut db,
                &mut state,
                &[],
                &[delta_fact("edge", &[s("a"), s("c")])],
            )
            .unwrap();
        assert!(!db.contains("reach", &[s("a"), s("c")]));
        assert_matches_scratch(&program, &db);
    }

    #[test]
    fn negation_flips_both_ways() {
        both_policies(|policy| {
            let program =
                compiled("flagged(X) :- node(X), bad(X).\nok(X) :- node(X), \\+flagged(X).");
            let mut base = Database::new();
            base.add_fact("node", vec![s("n1")]);
            let mut db = LayeredDatabase::new(Arc::new(base));
            let mut state = IncrementalState::new(policy);
            program.apply_delta(&mut db, &mut state, &[], &[]).unwrap();
            assert!(db.contains("ok", &[s("n1")]));

            // Marking the node bad flips ok(n1) off through the negation.
            let out = program
                .apply_delta(&mut db, &mut state, &[delta_fact("bad", &[s("n1")])], &[])
                .unwrap();
            assert!(!db.contains("ok", &[s("n1")]));
            assert!(db.contains("flagged", &[s("n1")]));
            assert!(out
                .removed
                .iter()
                .any(|(p, _)| p.resolve().as_ref() == "ok"));
            assert_matches_scratch(&program, &db);

            // And back.
            program
                .apply_delta(&mut db, &mut state, &[], &[delta_fact("bad", &[s("n1")])])
                .unwrap();
            assert!(db.contains("ok", &[s("n1")]));
            assert!(!db.contains("flagged", &[s("n1")]));
            assert_matches_scratch(&program, &db);
        });
    }

    #[test]
    fn duplicate_and_noop_deltas_change_nothing() {
        both_policies(|policy| {
            let program = compiled("p(X) :- e(X).");
            let mut base = Database::new();
            base.add_fact("e", vec![s("a")]);
            let mut db = LayeredDatabase::new(Arc::new(base));
            let mut state = IncrementalState::new(policy);
            program.apply_delta(&mut db, &mut state, &[], &[]).unwrap();

            // Duplicate insert, absent removal, insert+remove of the
            // same tuple: all no-ops.
            let dup = delta_fact("e", &[s("a")]);
            let ghost = delta_fact("e", &[s("ghost")]);
            let out = program
                .apply_delta(
                    &mut db,
                    &mut state,
                    &[dup.clone(), dup.clone(), ghost.clone()],
                    &[ghost.clone(), delta_fact("e", &[s("never")])],
                )
                .unwrap();
            // `ghost` is both added and removed: addition wins.
            assert!(db.contains("e", &[s("ghost")]));
            assert!(db.contains("p", &[s("ghost")]));
            assert_eq!(out.added.len(), 2, "{out:?}");
            assert!(out.removed.is_empty());
            assert_matches_scratch(&program, &db);

            let out = program
                .apply_delta(&mut db, &mut state, &[], &[ghost.clone(), ghost])
                .unwrap();
            assert!(!db.contains("p", &[s("ghost")]));
            assert_eq!(out.removed.len(), 2);
            assert_matches_scratch(&program, &db);
        });
    }

    #[test]
    fn edb_support_masks_derived_loss() {
        both_policies(|policy| {
            // `p` is derived but also receives EDB facts directly.
            let program = compiled("p(X) :- e(X).");
            let mut base = Database::new();
            base.add_fact("e", vec![s("a")]);
            base.add_fact("p", vec![s("a")]);
            let mut db = LayeredDatabase::new(Arc::new(base));
            let mut state = IncrementalState::new(policy);
            program.apply_delta(&mut db, &mut state, &[], &[]).unwrap();

            // Dropping the derivation leaves the EDB copy visible.
            let out = program
                .apply_delta(&mut db, &mut state, &[], &[delta_fact("e", &[s("a")])])
                .unwrap();
            assert!(db.contains("p", &[s("a")]), "EDB support remains");
            assert_eq!(out.removed.len(), 1, "only e(a) disappears: {out:?}");
            assert_matches_scratch(&program, &db);

            // Dropping the EDB copy too finally removes it.
            let out = program
                .apply_delta(&mut db, &mut state, &[], &[delta_fact("p", &[s("a")])])
                .unwrap();
            assert!(!db.contains("p", &[s("a")]));
            assert_eq!(out.removed.len(), 1);
            assert_matches_scratch(&program, &db);
        });
    }

    #[test]
    fn arithmetic_and_comparison_bodies_maintain() {
        both_policies(|policy| {
            let program = compiled(
                "lifetime(C, L) :- notBefore(C, NB), notAfter(C, NA), L = NA - NB.\n\
                 shortlived(C) :- lifetime(C, L), L < 90.",
            );
            let mut base = Database::new();
            base.add_fact("notBefore", vec![s("c1"), Val::Int(0)]);
            base.add_fact("notAfter", vec![s("c1"), Val::Int(30)]);
            let mut db = LayeredDatabase::new(Arc::new(base));
            let mut state = IncrementalState::new(policy);
            program.apply_delta(&mut db, &mut state, &[], &[]).unwrap();
            assert!(db.contains("shortlived", &[s("c1")]));

            // Reissue with a longer lifetime: remove + add notAfter.
            program
                .apply_delta(
                    &mut db,
                    &mut state,
                    &[delta_fact("notAfter", &[s("c1"), Val::Int(365)])],
                    &[delta_fact("notAfter", &[s("c1"), Val::Int(30)])],
                )
                .unwrap();
            assert!(!db.contains("shortlived", &[s("c1")]));
            assert!(db.contains("lifetime", &[s("c1"), Val::Int(365)]));
            assert_matches_scratch(&program, &db);
        });
    }

    #[test]
    fn fact_rules_survive_unrelated_deltas() {
        both_policies(|policy| {
            let program = compiled("pinned(\"root\").\np(X) :- e(X), \\+pinned(X).");
            let mut base = Database::new();
            base.add_fact("e", vec![s("root")]);
            base.add_fact("e", vec![s("leaf")]);
            let mut db = LayeredDatabase::new(Arc::new(base));
            let mut state = IncrementalState::new(policy);
            program.apply_delta(&mut db, &mut state, &[], &[]).unwrap();
            assert!(db.contains("p", &[s("leaf")]));
            assert!(!db.contains("p", &[s("root")]));

            program
                .apply_delta(&mut db, &mut state, &[], &[delta_fact("e", &[s("leaf")])])
                .unwrap();
            assert!(db.contains("pinned", &[s("root")]), "fact rule persists");
            assert!(!db.contains("p", &[s("leaf")]));
            assert_matches_scratch(&program, &db);
        });
    }

    #[test]
    fn budget_bounds_delta_work() {
        let program =
            compiled("reach(X, Y) :- edge(X, Y).\nreach(X, Z) :- reach(X, Y), edge(Y, Z).");
        let mut base = Database::new();
        for i in 0..20i64 {
            base.add_fact("edge", vec![Val::Int(i), Val::Int(i + 1)]);
        }
        let mut db = LayeredDatabase::new(Arc::new(base));
        let mut state = IncrementalState::new(MaintenancePolicy::Auto);
        let err = program.apply_delta_metered(&mut db, &mut state, &[], &[], 10);
        assert!(matches!(err, Err(DatalogError::BudgetExceeded { .. })));
    }
}
