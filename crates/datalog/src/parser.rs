//! Recursive-descent parser for the paper's Datalog syntax.
//!
//! Grammar (body items evaluated left to right):
//!
//! ```text
//! program   := clause*
//! clause    := literal ( ":-" body )? "."
//! body      := item ( "," item )*
//! item      := "\+" literal
//!            | literal
//!            | expr cmp expr            % comparison
//!            | VAR "=" expr             % arithmetic binding
//! literal   := name "(" term ("," term)* ")"
//! name      := IDENT | VAR-followed-by-"(" (the paper writes EV(Cert))
//! expr      := mul ( ("+" | "-") mul )*
//! mul       := atom ( "*" atom )*
//! atom      := INT | "-" INT | STR | VAR | "(" expr ")"
//! cmp       := "<" | "<=" | ">" | ">=" | "==" | "!="
//! ```
//!
//! A bare `=` between a variable and an expression is an arithmetic
//! binding (`Lifetime = NA - NB`); `==` is a comparison of two bound
//! expressions. The anonymous variable `_` is renamed apart per clause.

use crate::ast::{ArithOp, BodyItem, CmpOp, Expr, Literal, Program, Rule, Term};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::DatalogError;
use std::sync::Arc;

/// Parse a complete program.
pub fn parse_program(src: &str) -> Result<Program, DatalogError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        anon_counter: 0,
    };
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.clause()?);
    }
    Ok(Program { rules })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), DatalogError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn clause(&mut self) -> Result<Rule, DatalogError> {
        self.anon_counter = 0;
        let head = self.literal()?;
        let body = if self.peek() == Some(&TokenKind::Turnstile) {
            self.pos += 1;
            let mut items = vec![self.body_item()?];
            while self.peek() == Some(&TokenKind::Comma) {
                self.pos += 1;
                items.push(self.body_item()?);
            }
            items
        } else {
            Vec::new()
        };
        // Accept `?` before `.` so pasted queries parse too.
        if self.peek() == Some(&TokenKind::Question) {
            self.pos += 1;
        }
        self.expect(&TokenKind::Dot, "`.` at end of clause")?;
        Ok(Rule { head, body })
    }

    fn body_item(&mut self) -> Result<BodyItem, DatalogError> {
        if self.peek() == Some(&TokenKind::Naf) {
            self.pos += 1;
            return Ok(BodyItem::Neg(self.literal()?));
        }
        // A literal begins with a name token directly followed by `(`.
        let is_literal = matches!(
            (self.peek(), self.peek2()),
            (Some(TokenKind::Ident(_)), Some(TokenKind::LParen))
                | (Some(TokenKind::Var(_)), Some(TokenKind::LParen))
        );
        if is_literal {
            return Ok(BodyItem::Pos(self.literal()?));
        }
        // Otherwise: comparison or assignment.
        let lhs = self.expr()?;
        let op = match self.bump() {
            Some(TokenKind::Lt) => Some(CmpOp::Lt),
            Some(TokenKind::Le) => Some(CmpOp::Le),
            Some(TokenKind::Gt) => Some(CmpOp::Gt),
            Some(TokenKind::Ge) => Some(CmpOp::Ge),
            Some(TokenKind::EqEq) => Some(CmpOp::Eq),
            Some(TokenKind::Ne) => Some(CmpOp::Ne),
            Some(TokenKind::Assign) => None,
            _ => return Err(self.err("expected comparison or `=`")),
        };
        match op {
            Some(op) => {
                let rhs = self.expr()?;
                Ok(BodyItem::Cmp(lhs, op, rhs))
            }
            None => {
                let var = match lhs {
                    Expr::Term(Term::Var(v)) => v,
                    other => {
                        return Err(self.err(format!(
                            "left side of `=` must be a variable, found `{other}`"
                        )))
                    }
                };
                let rhs = self.expr()?;
                Ok(BodyItem::Assign(var, rhs))
            }
        }
    }

    fn literal(&mut self) -> Result<Literal, DatalogError> {
        let pred: Arc<str> = match self.bump() {
            Some(TokenKind::Ident(name)) => Arc::from(name.as_str()),
            Some(TokenKind::Var(name)) => Arc::from(name.as_str()),
            _ => return Err(self.err("expected predicate name")),
        };
        self.expect(&TokenKind::LParen, "`(` after predicate name")?;
        let mut args = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            args.push(self.term()?);
            while self.peek() == Some(&TokenKind::Comma) {
                self.pos += 1;
                args.push(self.term()?);
            }
        }
        self.expect(&TokenKind::RParen, "`)` after arguments")?;
        Ok(Literal { pred, args })
    }

    fn term(&mut self) -> Result<Term, DatalogError> {
        match self.bump() {
            Some(TokenKind::Int(i)) => Ok(Term::int(i)),
            Some(TokenKind::Minus) => match self.bump() {
                Some(TokenKind::Int(i)) => Ok(Term::int(-i)),
                _ => Err(self.err("expected integer after `-`")),
            },
            Some(TokenKind::Str(s)) => Ok(Term::str(s)),
            Some(TokenKind::Ident(s)) => {
                // Unquoted lowercase identifiers in term position are
                // symbolic constants (strings).
                Ok(Term::str(s))
            }
            Some(TokenKind::Var(v)) => {
                if v == "_" {
                    self.anon_counter += 1;
                    Ok(Term::var(format!("_anon{}", self.anon_counter)))
                } else {
                    Ok(Term::var(v))
                }
            }
            _ => Err(self.err("expected term")),
        }
    }

    fn expr(&mut self) -> Result<Expr, DatalogError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => ArithOp::Add,
                Some(TokenKind::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, DatalogError> {
        let mut lhs = self.atom_expr()?;
        while self.peek() == Some(&TokenKind::Star) {
            self.pos += 1;
            let rhs = self.atom_expr()?;
            lhs = Expr::Bin(Box::new(lhs), ArithOp::Mul, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom_expr(&mut self) -> Result<Expr, DatalogError> {
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen, "`)` in expression")?;
            return Ok(e);
        }
        Ok(Expr::Term(self.term()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Val;

    #[test]
    fn parses_listing_1() {
        // Paper Listing 1: TrustCor constraints.
        let src = r#"
            nov30th2022(1669784400). % Unix timestamp
            valid(Chain, "S/MIME") :- % Valid rule for S/MIME usage
              leaf(Chain, Cert), % Get the chain's leaf certificate
              nov30th2022(T), % Get November 30th, 2022
              notBefore(Cert, NB), % Get the leaf's notBefore date
              NB < T. % Holds if notBefore before November 30th, 2022
            valid(Chain, "TLS") :- % Valid rule for TLS usage
              leaf(Chain, Cert),
              \+EV(Cert), % Assert that leaf is not EV
              nov30th2022(T),
              notBefore(Cert, NB),
              NB < T.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 3);
        assert!(p.rules[0].is_fact());
        assert_eq!(p.rules[0].head.args[0], Term::int(1_669_784_400));
        let tls = &p.rules[2];
        assert_eq!(tls.head.args[1], Term::str("TLS"));
        assert!(matches!(&tls.body[1], BodyItem::Neg(l) if &*l.pred == "EV"));
        assert!(matches!(&tls.body[4], BodyItem::Cmp(_, CmpOp::Lt, _)));
    }

    #[test]
    fn parses_listing_2_with_wildcard() {
        // Paper Listing 2: Symantec constraints; uses `_` for any usage.
        let src = r#"
            june1st2016(1464753600).
            exempt("aabbcc").
            valid(Chain, _) :-
              leaf(Chain, Cert),
              notBefore(Cert, NB),
              june1st2016(T),
              NB < T.
            valid(Chain, _) :-
              root(Chain, Root),
              signs(Root, Int),
              hash(Int, H),
              exempt(H).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 4);
        // The two `_` are distinct fresh variables.
        let v1 = &p.rules[2].head.args[1];
        let v2 = &p.rules[3].head.args[1];
        assert!(matches!(v1, Term::Var(_)));
        assert_eq!(v1, v2); // counter resets per clause, so same name...
    }

    #[test]
    fn anonymous_vars_distinct_within_clause() {
        let p = parse_program("p(_, _) :- q(_, _).").unwrap();
        let args = &p.rules[0].head.args;
        assert_ne!(args[0], args[1]);
    }

    #[test]
    fn parses_listing_3_arithmetic() {
        // Paper Listing 3: pre-emptive constraint with lifetime arithmetic.
        let src = r#"
            oneMonthInSeconds(2630000).
            lifetimeValid(Leaf) :-
              notBefore(Leaf, NB),
              notAfter(Leaf, NA),
              Lifetime = NA - NB,
              oneMonthInSeconds(Limit),
              Lifetime <= Limit.
            validUsage(Leaf) :-
              extendedKeyUsage(Leaf, "id-kp-serverAuth"),
              keyUsage(Leaf, "digitalSignature").
            valid(Chain, "TLS") :-
              leaf(Chain, Cert),
              lifetimeValid(Cert),
              validUsage(Cert).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 4);
        let lv = &p.rules[1];
        assert!(
            matches!(&lv.body[2], BodyItem::Assign(v, Expr::Bin(_, ArithOp::Sub, _)) if &**v == "Lifetime")
        );
    }

    #[test]
    fn negative_integers_and_symbols() {
        let p = parse_program("p(-5, tls).").unwrap();
        assert_eq!(p.rules[0].head.args[0], Term::int(-5));
        assert_eq!(p.rules[0].head.args[1], Term::Const(Val::str("tls")));
    }

    #[test]
    fn query_question_mark_tolerated() {
        let p = parse_program("valid(Chain, Usage)?.").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn parse_errors_have_offsets() {
        let err = parse_program("p(a) :- q(").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
        let err = parse_program("p(a)").unwrap_err(); // missing dot
        assert!(matches!(err, DatalogError::Parse { .. }));
        let err = parse_program("5 = X.").unwrap_err(); // head must be literal
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn assignment_lhs_must_be_variable() {
        let err = parse_program("p(X) :- q(X), 5 = X + 1.").unwrap_err();
        match err {
            DatalogError::Parse { message, .. } => {
                assert!(message.contains("left side"), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesized_arithmetic() {
        let p = parse_program("p(X) :- q(X, A, B, C), X == (A + B) * C.").unwrap();
        assert!(matches!(
            &p.rules[0].body[1],
            BodyItem::Cmp(_, CmpOp::Eq, Expr::Bin(_, ArithOp::Mul, _))
        ));
    }
}
