//! A deliberately simple **string-path reference evaluator**.
//!
//! This is the pre-interning execution model kept alive as an oracle:
//! relations are keyed by `Arc<str>`, tuples are `Vec<Val>`, bindings
//! live in a `HashMap<Arc<str>, Val>`, and evaluation is naive
//! bottom-up iteration to fixpoint. It shares **no** code with the
//! interned engine in [`crate::compile`] — same AST in, independent
//! machinery underneath — which is exactly what makes it useful:
//!
//! * the `interned-vs-string` proptest and the sim differential oracle
//!   compare the two paths tuple-for-tuple over generated programs;
//! * the `e17_alloc_throughput` bench uses it as the ablation arm to
//!   quantify what interning buys.
//!
//! It applies the same safety/stratification checks and the same
//! derived-tuple budget and arithmetic error semantics, so error cases
//! are comparable too.

use crate::ast::{ArithOp, BodyItem, CmpOp, Expr, Literal, Program, Rule, Term, Val};
use crate::eval::{Database, Tuple};
use crate::{safety, stratify, DatalogError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The result of a string-path evaluation: input facts plus everything
/// derived, in plain string-keyed storage.
#[derive(Clone, Debug, Default)]
pub struct StringEvaluation {
    relations: HashMap<Arc<str>, HashSet<Tuple>>,
    /// Tuples derived by rules (excluding seeded input facts).
    pub derived: usize,
}

impl StringEvaluation {
    /// Is `tuple` present in relation `pred` (input or derived)?
    pub fn contains(&self, pred: &str, tuple: &[Val]) -> bool {
        self.relations
            .get(pred)
            .is_some_and(|rel| rel.contains(tuple))
    }

    /// All tuples of `pred`, in arbitrary order.
    pub fn tuples(&self, pred: &str) -> Vec<Tuple> {
        self.relations
            .get(pred)
            .map(|rel| rel.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Names of all non-empty relations, sorted.
    pub fn predicates(&self) -> Vec<Arc<str>> {
        let mut preds: Vec<Arc<str>> = self
            .relations
            .iter()
            .filter(|(_, rel)| !rel.is_empty())
            .map(|(p, _)| Arc::clone(p))
            .collect();
        preds.sort();
        preds
    }

    fn insert(&mut self, pred: Arc<str>, tuple: Tuple) -> bool {
        self.relations.entry(pred).or_default().insert(tuple)
    }
}

/// Evaluate `program` over `base` on the string path, to fixpoint.
///
/// Runs the same safety and stratification checks as
/// [`crate::CompiledProgram::compile`] and honors the same derived-tuple
/// `budget`. The base facts are materialized into string storage up
/// front (this path is an oracle, not a serving path).
pub fn evaluate_strings(
    program: &Program,
    base: &Database,
    budget: usize,
) -> Result<StringEvaluation, DatalogError> {
    safety::check_program(program)?;
    let strat = stratify::stratify(program)?;
    let mut strata: Vec<Vec<&Rule>> = vec![Vec::new(); strat.count];
    for rule in &program.rules {
        strata[strat.of(&rule.head.pred)].push(rule);
    }

    let mut out = StringEvaluation::default();
    for pred in base.predicates() {
        for tuple in base.tuples(&pred) {
            out.insert(Arc::clone(&pred), tuple);
        }
    }
    // Program facts (ground heads, checked by safety) seed the run.
    for rule in &program.rules {
        if rule.is_fact() {
            let tuple: Tuple = rule
                .head
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(v) => v.clone(),
                    Term::Var(_) => unreachable!("safety rejects non-ground facts"),
                })
                .collect();
            if out.insert(rule.head.pred.clone(), tuple) {
                out.derived += 1;
            }
        }
    }

    let mut pending: Vec<(Arc<str>, Tuple)> = Vec::new();
    for rules in &strata {
        loop {
            for rule in rules {
                if rule.is_fact() {
                    continue;
                }
                evaluate_rule(rule, &out, &mut pending)?;
            }
            let mut changed = false;
            for (pred, tuple) in pending.drain(..) {
                if out.insert(pred, tuple) {
                    out.derived += 1;
                    changed = true;
                    if out.derived > budget {
                        return Err(DatalogError::BudgetExceeded { budget });
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    Ok(out)
}

type Env = HashMap<Arc<str>, Val>;

fn evaluate_rule(
    rule: &Rule,
    db: &StringEvaluation,
    pending: &mut Vec<(Arc<str>, Tuple)>,
) -> Result<(), DatalogError> {
    let mut env: Env = HashMap::new();
    solve(rule, 0, db, &mut env, pending)
}

fn solve(
    rule: &Rule,
    idx: usize,
    db: &StringEvaluation,
    env: &mut Env,
    pending: &mut Vec<(Arc<str>, Tuple)>,
) -> Result<(), DatalogError> {
    let Some(item) = rule.body.get(idx) else {
        // Body satisfied: instantiate the head (safety guarantees ground).
        let tuple: Tuple = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(v) => v.clone(),
                Term::Var(v) => env[v].clone(),
            })
            .collect();
        pending.push((rule.head.pred.clone(), tuple));
        return Ok(());
    };
    match item {
        BodyItem::Pos(lit) => {
            if let Some(rel) = db.relations.get(&lit.pred) {
                for tuple in rel {
                    try_tuple(rule, idx, db, env, pending, lit, tuple)?;
                }
            }
            Ok(())
        }
        BodyItem::Neg(lit) => {
            // Safety guarantees all vars bound; ground the literal.
            let tuple: Tuple = lit
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(v) => v.clone(),
                    Term::Var(v) => env[v].clone(),
                })
                .collect();
            if !db.contains(&lit.pred, &tuple) {
                solve(rule, idx + 1, db, env, pending)?;
            }
            Ok(())
        }
        BodyItem::Cmp(lhs, op, rhs) => {
            let l = eval_expr(lhs, env)?;
            let r = eval_expr(rhs, env)?;
            if compare(&l, *op, &r)? {
                solve(rule, idx + 1, db, env, pending)?;
            }
            Ok(())
        }
        BodyItem::Assign(var, expr) => {
            let value = eval_expr(expr, env)?;
            match env.get(var) {
                Some(existing) => {
                    // Re-assignment acts as an equality check.
                    if *existing == value {
                        solve(rule, idx + 1, db, env, pending)?;
                    }
                    Ok(())
                }
                None => {
                    env.insert(var.clone(), value);
                    solve(rule, idx + 1, db, env, pending)?;
                    env.remove(var);
                    Ok(())
                }
            }
        }
    }
}

fn try_tuple(
    rule: &Rule,
    idx: usize,
    db: &StringEvaluation,
    env: &mut Env,
    pending: &mut Vec<(Arc<str>, Tuple)>,
    lit: &Literal,
    tuple: &[Val],
) -> Result<(), DatalogError> {
    if tuple.len() != lit.args.len() {
        return Ok(());
    }
    let mut bound_here: Vec<Arc<str>> = Vec::new();
    let mut ok = true;
    for (arg, val) in lit.args.iter().zip(tuple) {
        match arg {
            Term::Const(c) => {
                if c != val {
                    ok = false;
                    break;
                }
            }
            Term::Var(v) => match env.get(v) {
                Some(existing) => {
                    if existing != val {
                        ok = false;
                        break;
                    }
                }
                None => {
                    env.insert(v.clone(), val.clone());
                    bound_here.push(v.clone());
                }
            },
        }
    }
    if ok {
        solve(rule, idx + 1, db, env, pending)?;
    }
    for v in bound_here {
        env.remove(&v);
    }
    Ok(())
}

fn eval_expr(expr: &Expr, env: &Env) -> Result<Val, DatalogError> {
    match expr {
        Expr::Term(Term::Const(v)) => Ok(v.clone()),
        Expr::Term(Term::Var(v)) => Ok(env[v].clone()),
        Expr::Bin(l, op, r) => {
            let l = eval_expr(l, env)?;
            let r = eval_expr(r, env)?;
            let (Val::Int(a), Val::Int(b)) = (&l, &r) else {
                return Err(DatalogError::Eval {
                    message: format!("arithmetic on non-integers: {l} {op} {r}"),
                });
            };
            let out = match op {
                ArithOp::Add => a.checked_add(*b),
                ArithOp::Sub => a.checked_sub(*b),
                ArithOp::Mul => a.checked_mul(*b),
            };
            out.map(Val::Int).ok_or_else(|| DatalogError::Eval {
                message: format!("arithmetic overflow: {a} {op} {b}"),
            })
        }
    }
}

fn compare(l: &Val, op: CmpOp, r: &Val) -> Result<bool, DatalogError> {
    match op {
        CmpOp::Eq => Ok(l == r),
        CmpOp::Ne => Ok(l != r),
        _ => {
            let (Val::Int(a), Val::Int(b)) = (l, r) else {
                return Err(DatalogError::Eval {
                    message: format!("ordered comparison on non-integers: {l} {op} {r}"),
                });
            };
            Ok(match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledProgram;
    use crate::eval::{EvalMode, DEFAULT_BUDGET};

    fn program(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    #[test]
    fn reference_matches_interned_on_recursion_and_negation() {
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")] {
            db.add_fact("edge", vec![Val::str(a), Val::str(b)]);
        }
        let p = program(
            "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).
             source(X) :- edge(X, Y), \\+reach(Y, X).",
        );
        let strings = evaluate_strings(&p, &db, DEFAULT_BUDGET).unwrap();
        let interned = CompiledProgram::compile(&p)
            .unwrap()
            .evaluate(Arc::new(db))
            .unwrap();
        for pred in ["reach", "source"] {
            let mut a = strings.tuples(pred);
            let mut b = interned.tuples(pred);
            a.sort();
            b.sort();
            assert_eq!(a, b, "{pred}");
        }
        assert!(strings.contains("source", &[Val::str("a")]));
    }

    #[test]
    fn reference_honors_budget_and_arith_semantics() {
        let mut db = Database::new();
        for i in 0..20 {
            for j in 0..20 {
                db.add_fact("edge", vec![Val::int(i), Val::int(j)]);
            }
        }
        let p = program("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        let err = evaluate_strings(&p, &db, 50).unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { budget: 50 }));

        let mut db = Database::new();
        db.add_fact("v", vec![Val::str("s")]);
        let p = program("w(Y) :- v(X), Y = X + 1.");
        let err = evaluate_strings(&p, &db, DEFAULT_BUDGET).unwrap_err();
        let interned_err = CompiledProgram::compile(&p)
            .unwrap()
            .evaluate_with(Arc::new(db), EvalMode::SemiNaive, DEFAULT_BUDGET)
            .unwrap_err();
        assert_eq!(err, interned_err, "identical error payloads on both paths");
    }
}
