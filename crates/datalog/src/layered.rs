//! A two-layer fact database: a frozen, shared base (the EDB — e.g. a
//! chain's converted facts) plus a private overlay holding everything
//! derived during one evaluation run.
//!
//! This is what makes GCC execution compile-once / evaluate-many: the
//! base is an `Arc<Database>` shared by every GCC evaluated against the
//! same chain, and each run allocates only its own (small) overlay
//! instead of cloning the full fact database. Both layers store interned
//! tuples (see [`mod@crate::intern`]); the [`Val`]-based methods convert at
//! the edge.

use crate::eval::{Database, Tuple};
use crate::intern::{ITuple, IVal, Sym};
use crate::Val;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A read-mostly base layer plus a mutable overlay of derived facts.
///
/// Reads see the union of both layers; writes go to the overlay and
/// deduplicate against both. The base is never mutated.
#[derive(Clone, Debug)]
pub struct LayeredDatabase {
    base: Arc<Database>,
    overlay: Database,
}

impl LayeredDatabase {
    /// Start a new layer over `base` with an empty overlay.
    pub fn new(base: Arc<Database>) -> LayeredDatabase {
        LayeredDatabase {
            base,
            overlay: Database::new(),
        }
    }

    /// The frozen base layer.
    pub fn base(&self) -> &Database {
        &self.base
    }

    /// The overlay of facts added on top of the base.
    pub fn overlay(&self) -> &Database {
        &self.overlay
    }

    /// Split into a shared base reference and a mutable overlay — the
    /// shape the evaluator works over (reads span both layers, writes
    /// land in the overlay).
    pub(crate) fn split_mut(&mut self) -> (&Database, &mut Database) {
        (&self.base, &mut self.overlay)
    }

    /// Mutable access to the base layer, copy-on-write: when the base
    /// `Arc` is shared the underlying database is cloned first, so other
    /// holders never observe the mutation. This is the EDB-delta
    /// application hook of incremental maintenance
    /// ([`crate::CompiledProgram::apply_delta`]); per-run GCC evaluation
    /// never touches it.
    pub fn base_mut(&mut self) -> &mut Database {
        Arc::make_mut(&mut self.base)
    }

    /// Remove an interned fact from the overlay only; returns `true` if
    /// it was stored there (incremental-maintenance internals).
    pub(crate) fn remove_overlay_ifact(&mut self, pred: Sym, tuple: &[IVal]) -> bool {
        self.overlay.remove_ifact(pred, tuple)
    }

    /// Empty the overlay while retaining allocations (incremental
    /// maintenance rebuilds it from scratch at state initialization).
    pub(crate) fn clear_overlay_retaining(&mut self) {
        self.overlay.clear_retaining();
    }

    /// Add a fact to the overlay; returns `true` if it was new to the
    /// combined view.
    pub fn add_fact(&mut self, pred: impl AsRef<str>, tuple: Tuple) -> bool {
        let pred = crate::intern::intern(pred.as_ref());
        let tuple: ITuple = tuple.iter().map(IVal::from_val).collect();
        self.add_ifact(pred, tuple)
    }

    /// Add an already-interned fact to the overlay; returns `true` if it
    /// was new to the combined view.
    pub fn add_ifact(&mut self, pred: Sym, tuple: ITuple) -> bool {
        if self.base.icontains(pred, tuple.as_slice()) {
            return false;
        }
        self.overlay.add_ifact(pred, tuple)
    }

    /// Is `tuple` present in relation `pred` in either layer?
    pub fn contains(&self, pred: &str, tuple: &[Val]) -> bool {
        self.overlay.contains(pred, tuple) || self.base.contains(pred, tuple)
    }

    /// Is the interned `tuple` present in either layer?
    pub fn icontains(&self, pred: Sym, tuple: &[IVal]) -> bool {
        self.overlay.icontains(pred, tuple) || self.base.icontains(pred, tuple)
    }

    /// All tuples of `pred` across both layers, base first, materialized
    /// at the AST boundary.
    pub fn tuples(&self, pred: &str) -> Vec<Tuple> {
        let mut out = self.base.tuples(pred);
        out.extend(self.overlay.tuples(pred));
        out
    }

    /// Tuples of `pred` matching a pattern (`None` = wildcard), across
    /// both layers.
    pub fn query(&self, pred: &str, pattern: &[Option<Val>]) -> Vec<Tuple> {
        let mut hits = self.base.query(pred, pattern);
        hits.extend(self.overlay.query(pred, pattern));
        hits
    }

    /// Total number of distinct tuples across both layers.
    pub fn len(&self) -> usize {
        self.base.len() + self.overlay.len()
    }

    /// True when both layers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names of all non-empty relations in either layer, deduplicated
    /// and sorted.
    pub fn predicates(&self) -> Vec<Arc<str>> {
        self.base
            .predicates()
            .into_iter()
            .chain(self.overlay.predicates())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Split into the shared base and the owned overlay.
    pub fn into_parts(self) -> (Arc<Database>, Database) {
        (self.base, self.overlay)
    }

    /// Collapse into a single flat [`Database`] containing both layers.
    ///
    /// When this layer holds the only reference to the base, the base is
    /// reused in place — no relation is cloned. Otherwise (the base is
    /// still shared, e.g. by a validation session) the base is cloned;
    /// callers on hot paths should query the layered view instead.
    pub fn flatten(self) -> Database {
        let (base, overlay) = self.into_parts();
        let mut db = Arc::try_unwrap(base).unwrap_or_else(|shared| (*shared).clone());
        db.merge(overlay);
        db
    }
}

impl From<Database> for LayeredDatabase {
    fn from(base: Database) -> LayeredDatabase {
        LayeredDatabase::new(Arc::new(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Arc<Database> {
        let mut db = Database::new();
        db.add_fact("edge", vec![Val::str("a"), Val::str("b")]);
        db.add_fact("edge", vec![Val::str("b"), Val::str("c")]);
        Arc::new(db)
    }

    #[test]
    fn reads_union_both_layers() {
        let mut layered = LayeredDatabase::new(base());
        assert!(layered.contains("edge", &[Val::str("a"), Val::str("b")]));
        assert!(layered.add_fact("reach", vec![Val::str("a"), Val::str("c")]));
        assert!(layered.contains("reach", &[Val::str("a"), Val::str("c")]));
        assert_eq!(layered.len(), 3);
        assert_eq!(layered.tuples("edge").len(), 2);
        let preds = layered.predicates();
        let preds: Vec<&str> = preds.iter().map(|p| &**p).collect();
        assert_eq!(preds, ["edge", "reach"]);
    }

    #[test]
    fn overlay_dedupes_against_base() {
        let mut layered = LayeredDatabase::new(base());
        assert!(!layered.add_fact("edge", vec![Val::str("a"), Val::str("b")]));
        assert!(layered.overlay().is_empty());
        assert!(layered.add_fact("edge", vec![Val::str("c"), Val::str("d")]));
        assert!(!layered.add_fact("edge", vec![Val::str("c"), Val::str("d")]));
        assert_eq!(layered.overlay().len(), 1);
    }

    #[test]
    fn base_is_never_mutated() {
        let shared = base();
        let mut layered = LayeredDatabase::new(Arc::clone(&shared));
        layered.add_fact("edge", vec![Val::str("x"), Val::str("y")]);
        assert_eq!(shared.len(), 2);
        assert!(!shared.contains("edge", &[Val::str("x"), Val::str("y")]));
    }

    #[test]
    fn flatten_reuses_sole_reference() {
        let mut layered = LayeredDatabase::new(base());
        layered.add_fact("reach", vec![Val::str("a"), Val::str("c")]);
        let flat = layered.flatten();
        assert_eq!(flat.len(), 3);
        assert!(flat.contains("edge", &[Val::str("a"), Val::str("b")]));
        assert!(flat.contains("reach", &[Val::str("a"), Val::str("c")]));
    }

    #[test]
    fn flatten_clones_when_base_is_shared() {
        let shared = base();
        let mut layered = LayeredDatabase::new(Arc::clone(&shared));
        layered.add_fact("reach", vec![Val::str("a"), Val::str("c")]);
        let flat = layered.flatten();
        assert_eq!(flat.len(), 3);
        assert_eq!(shared.len(), 2); // the shared base is untouched
    }

    #[test]
    fn query_spans_layers() {
        let mut layered = LayeredDatabase::new(base());
        layered.add_fact("edge", vec![Val::str("a"), Val::str("z")]);
        let hits = layered.query("edge", &[Some(Val::str("a")), None]);
        assert_eq!(hits.len(), 2);
    }
}
