//! # `nrslb-datalog` — a stratified Datalog engine
//!
//! The paper proposes expressing General Certificate Constraints as
//! *stratified Datalog* programs (§3), citing three properties that make
//! the language a good fit for executing third-party trust policies:
//! declarative first-order semantics, guaranteed termination, and no I/O.
//! This crate implements that language:
//!
//! * [`ast`] — terms, literals, rules, programs;
//! * [`lexer`] / [`parser`] — the concrete syntax used in the paper's
//!   listings, including `:-` rules, `\+` negation, comparison operators
//!   and arithmetic bindings like `Lifetime = NA - NB`;
//! * [`safety`] — range-restriction checking (every variable bound by a
//!   positive literal before use in negation, comparison or the head);
//! * [`stratify`] — predicate dependency analysis; programs with negation
//!   (or arithmetic) inside a recursive cycle are rejected, which is what
//!   makes termination a *property of the language* rather than a runtime
//!   hope;
//! * [`compile`] — [`CompiledProgram`]: the immutable, pre-stratified
//!   product of those checks, compiled once per GCC and evaluated any
//!   number of times;
//! * [`layered`] — [`LayeredDatabase`]: a frozen shared fact base plus a
//!   per-run overlay of derived tuples, so evaluating many GCCs against
//!   one chain never clones the chain's facts;
//! * [`eval`] — fact storage and the classic [`Engine`] wrapper doing
//!   bottom-up evaluation with semi-naive iteration (and a naive mode
//!   kept for the ablation benchmark), plus a derived-tuple budget as
//!   defense in depth;
//! * [`mod@incremental`] — delta maintenance: counting / DRed
//!   propagation of EDB insertions and deletions through a compiled
//!   program ([`CompiledProgram::apply_delta`]), keeping derived state
//!   live under root-store feed deltas without re-evaluating from
//!   scratch;
//! * [`mod@explain`] — provenance: derivation trees showing *why* a derived
//!   tuple holds, the audit trail for GCC decisions;
//! * [`mod@intern`] — the global symbol table and interned ground
//!   representation ([`intern::Sym`], [`intern::IVal`],
//!   [`intern::ITuple`]) everything above executes over: the semi-naive
//!   join compares `u32` ids, never `Arc<str>`s;
//! * [`mod@reference`] — the independent string-path evaluator kept as the
//!   differential oracle and ablation arm for the interned core.
//!
//! ```
//! use nrslb_datalog::{Database, Engine, Program, Val};
//!
//! let program = Program::parse(
//!     "reachable(X, Y) :- edge(X, Y).
//!      reachable(X, Z) :- reachable(X, Y), edge(Y, Z).",
//! )
//! .unwrap();
//! let mut db = Database::new();
//! db.add_fact("edge", vec![Val::str("a"), Val::str("b")]);
//! db.add_fact("edge", vec![Val::str("b"), Val::str("c")]);
//! let result = Engine::new(&program).unwrap().run(db).unwrap();
//! assert!(result.contains("reachable", &[Val::str("a"), Val::str("c")]));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod eval;
pub mod explain;
pub mod incremental;
pub mod intern;
pub mod layered;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod reference;
pub mod safety;
pub mod stratify;

pub use ast::{Program, Rule, Term, Val};
pub use compile::{CompiledProgram, EvalScratch};
pub use eval::{Database, Engine, EvalMode, EvalStats};
pub use explain::{explain, Derivation};
pub use incremental::{delta_fact, DeltaOutcome, IncrementalState, MaintenancePolicy};
pub use intern::{intern, ITuple, IVal, Sym};
pub use layered::LayeredDatabase;
pub use metrics::EvalMetrics;
pub use reference::{evaluate_strings, StringEvaluation};

use std::fmt;

/// Errors from parsing, checking or evaluating Datalog programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the source.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error.
    Parse {
        /// Byte offset in the source.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A rule violates range restriction (safety).
    Unsafe {
        /// The rule, pretty-printed.
        rule: String,
        /// The violation.
        message: String,
    },
    /// The program cannot be stratified (negation or arithmetic in a
    /// recursive cycle).
    NotStratifiable {
        /// Description of the offending cycle.
        message: String,
    },
    /// Evaluation exceeded the derived-tuple budget.
    BudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// A runtime evaluation error (e.g. arithmetic overflow).
    Eval {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            DatalogError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            DatalogError::Unsafe { rule, message } => {
                write!(f, "unsafe rule `{rule}`: {message}")
            }
            DatalogError::NotStratifiable { message } => {
                write!(f, "program is not stratifiable: {message}")
            }
            DatalogError::BudgetExceeded { budget } => {
                write!(f, "evaluation exceeded budget of {budget} derived tuples")
            }
            DatalogError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for DatalogError {}
