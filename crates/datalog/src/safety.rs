//! Range-restriction (safety) checking.
//!
//! A rule is *safe* when, scanning its body left to right:
//!
//! * every variable of a negated literal is already bound by an earlier
//!   positive literal or assignment;
//! * every variable of a comparison is already bound;
//! * the right side of an assignment is fully bound (the left side
//!   becomes bound);
//! * after the whole body, every head variable is bound.
//!
//! Safety guarantees that evaluation only ever enumerates ground tuples,
//! which together with stratification gives the termination property the
//! paper relies on for executing untrusted constraint programs.

use crate::ast::{BodyItem, Program, Rule, Term};
use crate::DatalogError;
use std::collections::HashSet;
use std::sync::Arc;

/// Check every rule in `program`; returns the first violation.
pub fn check_program(program: &Program) -> Result<(), DatalogError> {
    for rule in &program.rules {
        check_rule(rule)?;
    }
    Ok(())
}

/// Check a single rule for range restriction.
pub fn check_rule(rule: &Rule) -> Result<(), DatalogError> {
    let mut bound: HashSet<Arc<str>> = HashSet::new();
    let fail = |message: String| DatalogError::Unsafe {
        rule: rule.to_string(),
        message,
    };
    for item in &rule.body {
        match item {
            BodyItem::Pos(lit) => {
                for arg in &lit.args {
                    if let Term::Var(v) = arg {
                        bound.insert(v.clone());
                    }
                }
            }
            BodyItem::Neg(lit) => {
                for arg in &lit.args {
                    if let Term::Var(v) = arg {
                        if !bound.contains(v) {
                            return Err(fail(format!(
                                "variable {v} in negated literal is not bound by an earlier positive literal"
                            )));
                        }
                    }
                }
            }
            BodyItem::Cmp(lhs, _, rhs) => {
                let mut vars = Vec::new();
                lhs.vars(&mut vars);
                rhs.vars(&mut vars);
                for v in vars {
                    if !bound.contains(&v) {
                        return Err(fail(format!(
                            "variable {v} in comparison is not bound by an earlier positive literal"
                        )));
                    }
                }
            }
            BodyItem::Assign(target, expr) => {
                let mut vars = Vec::new();
                expr.vars(&mut vars);
                for v in vars {
                    if !bound.contains(&v) {
                        return Err(fail(format!(
                            "variable {v} on the right of `=` is not bound"
                        )));
                    }
                }
                bound.insert(target.clone());
            }
        }
    }
    for arg in &rule.head.args {
        if let Term::Var(v) = arg {
            if !bound.contains(v) {
                return Err(fail(format!("head variable {v} is not bound by the body")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) {
        check_program(&Program::parse(src).unwrap()).unwrap();
    }

    fn bad(src: &str) -> String {
        match check_program(&Program::parse(src).unwrap()) {
            Err(DatalogError::Unsafe { message, .. }) => message,
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn ground_facts_are_safe() {
        ok("p(1). q(\"x\", 2).");
    }

    #[test]
    fn nonground_fact_is_unsafe() {
        let msg = bad("p(X).");
        assert!(msg.contains("head variable X"));
    }

    #[test]
    fn bound_negation_is_safe() {
        ok("p(X) :- q(X), \\+r(X).");
    }

    #[test]
    fn unbound_negation_is_unsafe() {
        let msg = bad("p(X) :- q(X), \\+r(Y).");
        assert!(msg.contains("negated literal"));
    }

    #[test]
    fn negation_before_binding_is_unsafe() {
        // Order matters: X is bound only after the negation.
        let msg = bad("p(X) :- \\+r(X), q(X).");
        assert!(msg.contains("negated literal"));
    }

    #[test]
    fn comparisons_require_bound_vars() {
        ok("p(X) :- q(X, Y), X < Y.");
        let msg = bad("p(X) :- q(X), X < Y.");
        assert!(msg.contains("comparison"));
    }

    #[test]
    fn assignment_binds_target() {
        ok("p(L) :- q(A, B), L = B - A, L <= 100.");
        let msg = bad("p(L) :- q(A), L = A + Missing.");
        assert!(msg.contains("right of `=`"));
    }

    #[test]
    fn head_can_use_assigned_var() {
        ok("p(L) :- q(A, B), L = A * B.");
    }

    #[test]
    fn paper_listings_are_safe() {
        ok(r#"
            nov30th2022(1669784400).
            valid(Chain, "S/MIME") :- leaf(Chain, Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
            valid(Chain, "TLS") :- leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
        "#);
        ok(r#"
            oneMonthInSeconds(2630000).
            lifetimeValid(Leaf) :- notBefore(Leaf, NB), notAfter(Leaf, NA), Lifetime = NA - NB, oneMonthInSeconds(Limit), Lifetime <= Limit.
        "#);
    }
}
