//! Global symbol interning and the interned ground representation.
//!
//! The string-keyed AST ([`crate::ast`]) is the parse/display boundary;
//! everything the evaluator touches per tuple is interned here first:
//!
//! * [`Sym`] — a `u32` id for an interned string. Predicates, string
//!   constants and certificate handles all become symbols, so the
//!   semi-naive join compares and hashes `u32`s instead of `Arc<str>`s.
//! * [`IVal`] — the interned ground value (`Int(i64)` or `Sym`), a
//!   16-byte `Copy` type.
//! * [`ITuple`] — a small-vec ground tuple storing up to
//!   [`ITuple::INLINE`] values inline; certificate facts (arity ≤ 3)
//!   never touch the heap.
//!
//! The table is global and append-only: a symbol, once interned, is
//! valid for the life of the process. Resolution hands back the interned
//! `Arc<str>` (a refcount bump, not a copy), which is what makes the
//! `IVal` → [`Val`] edge conversion allocation-free. [`lookup`] probes
//! without inserting, so negative membership tests (e.g.
//! `Database::contains` on a never-seen string) cannot grow the table.

use crate::ast::Val;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// An interned string: a dense `u32` id into the global symbol table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw id (stable for the life of the process).
    pub fn to_raw(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from a raw id previously obtained via
    /// [`Sym::to_raw`]. The id must come from this process's table.
    pub fn from_raw(raw: u32) -> Sym {
        Sym(raw)
    }

    /// The interned string (a refcount bump on the table's `Arc<str>`).
    pub fn resolve(self) -> Arc<str> {
        table()
            .read()
            .expect("symbol table poisoned")
            .strings
            .get(self.0 as usize)
            .cloned()
            .unwrap_or_else(|| Arc::from("<unknown-sym>"))
    }
}

struct TableInner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

fn table() -> &'static RwLock<TableInner> {
    static TABLE: OnceLock<RwLock<TableInner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(TableInner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Intern `s`, inserting it into the global table if new.
pub fn intern(s: &str) -> Sym {
    if let Some(sym) = lookup(s) {
        return sym;
    }
    let mut inner = table().write().expect("symbol table poisoned");
    if let Some(&id) = inner.map.get(s) {
        return Sym(id);
    }
    let id = u32::try_from(inner.strings.len()).expect("symbol table exhausted");
    let arc: Arc<str> = Arc::from(s);
    inner.strings.push(Arc::clone(&arc));
    inner.map.insert(arc, id);
    Sym(id)
}

/// Probe the table **without inserting**: `None` means the string has
/// never been interned (so no interned tuple can contain it).
pub fn lookup(s: &str) -> Option<Sym> {
    table()
        .read()
        .expect("symbol table poisoned")
        .map
        .get(s)
        .map(|&id| Sym(id))
}

/// An interned ground value: what relations actually store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IVal {
    /// A 64-bit integer (identical to [`Val::Int`]).
    Int(i64),
    /// An interned string.
    Sym(Sym),
}

impl IVal {
    /// Convert from the AST value, interning strings.
    pub fn from_val(v: &Val) -> IVal {
        match v {
            Val::Int(i) => IVal::Int(*i),
            Val::Str(s) => IVal::Sym(intern(s)),
        }
    }

    /// Convert without inserting: `None` when the string was never
    /// interned (membership tests use this so probes cannot grow the
    /// table).
    pub fn lookup_val(v: &Val) -> Option<IVal> {
        match v {
            Val::Int(i) => Some(IVal::Int(*i)),
            Val::Str(s) => lookup(s).map(IVal::Sym),
        }
    }

    /// Back to the AST value. Allocation-free: symbol resolution clones
    /// the table's `Arc<str>`.
    pub fn to_val(self) -> Val {
        match self {
            IVal::Int(i) => Val::Int(i),
            IVal::Sym(s) => Val::Str(s.resolve()),
        }
    }
}

/// A ground tuple of interned values with inline storage for the small
/// arities certificate facts use (a hand-rolled small-vec: the workspace
/// vendors no `smallvec`).
#[derive(Clone, Debug)]
pub struct ITuple {
    len: u32,
    inline: [IVal; ITuple::INLINE],
    /// Spill storage, used only when `len > INLINE`.
    heap: Vec<IVal>,
}

impl ITuple {
    /// Values stored inline before spilling to the heap.
    pub const INLINE: usize = 4;

    /// An empty tuple.
    pub fn new() -> ITuple {
        ITuple {
            len: 0,
            inline: [IVal::Int(0); ITuple::INLINE],
            heap: Vec::new(),
        }
    }

    /// Build from a slice of values.
    pub fn from_slice(vals: &[IVal]) -> ITuple {
        let mut t = ITuple::new();
        for v in vals {
            t.push(*v);
        }
        t
    }

    /// Append a value.
    pub fn push(&mut self, v: IVal) {
        let len = self.len as usize;
        if len < ITuple::INLINE {
            self.inline[len] = v;
        } else {
            if self.heap.is_empty() {
                // First spill: move the inline prefix to the heap so the
                // logical slice stays contiguous.
                self.heap.reserve(ITuple::INLINE + 1);
                self.heap.extend_from_slice(&self.inline);
            }
            self.heap.push(v);
        }
        self.len += 1;
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The values as a contiguous slice.
    pub fn as_slice(&self) -> &[IVal] {
        if (self.len as usize) <= ITuple::INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.heap
        }
    }

    /// Materialize as an AST tuple (allocates the `Vec`; symbol
    /// resolution itself is refcount-only).
    pub fn to_vals(&self) -> Vec<Val> {
        self.as_slice().iter().map(|v| v.to_val()).collect()
    }
}

impl Default for ITuple {
    fn default() -> ITuple {
        ITuple::new()
    }
}

impl PartialEq for ITuple {
    fn eq(&self, other: &ITuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ITuple {}

impl Hash for ITuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `<[IVal]>::hash` so `Borrow<[IVal]>` lookups agree.
        self.as_slice().hash(state);
    }
}

impl std::borrow::Borrow<[IVal]> for ITuple {
    fn borrow(&self) -> &[IVal] {
        self.as_slice()
    }
}

impl FromIterator<IVal> for ITuple {
    fn from_iter<I: IntoIterator<Item = IVal>>(iter: I) -> ITuple {
        let mut t = ITuple::new();
        for v in iter {
            t.push(v);
        }
        t
    }
}

/// A fast, non-cryptographic hasher for symbol/tuple keyed maps (the
/// FxHash mix: rotate, xor, multiply). Join keys are attacker-neutral
/// `u32` ids, so SipHash's DoS resistance buys nothing here.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Build-hasher for [`FxHasher`]-keyed collections.
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A `Sym`-keyed hash map using the fast hasher.
pub type SymMap<V> = HashMap<Sym, V, FxBuild>;

/// An `IVal`-keyed hash map using the fast hasher.
pub type IValMap<V> = HashMap<IVal, V, FxBuild>;

/// A set of interned tuples using the fast hasher.
pub type ITupleSet = std::collections::HashSet<ITuple, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_lookup_does_not_insert() {
        let a = intern("intern-test-alpha");
        assert_eq!(intern("intern-test-alpha"), a);
        assert_eq!(lookup("intern-test-alpha"), Some(a));
        assert_eq!(lookup("intern-test-never-seen-xyzzy"), None);
        // Still absent: lookup must not have inserted.
        assert_eq!(lookup("intern-test-never-seen-xyzzy"), None);
        assert_eq!(&*a.resolve(), "intern-test-alpha");
    }

    #[test]
    fn ival_roundtrip() {
        let v = Val::str("intern-test-roundtrip");
        let iv = IVal::from_val(&v);
        assert_eq!(iv.to_val(), v);
        assert_eq!(IVal::lookup_val(&v), Some(iv));
        assert_eq!(IVal::from_val(&Val::int(-7)).to_val(), Val::int(-7));
        assert_eq!(IVal::lookup_val(&Val::str("intern-test-unseen-abcd")), None);
    }

    #[test]
    fn ituple_inline_and_spill() {
        let vals: Vec<IVal> = (0..9).map(IVal::Int).collect();
        for n in 0..vals.len() {
            let t = ITuple::from_slice(&vals[..n]);
            assert_eq!(t.len(), n);
            assert_eq!(t.as_slice(), &vals[..n]);
            let u: ITuple = vals[..n].iter().copied().collect();
            assert_eq!(t, u);
        }
        let small = ITuple::from_slice(&vals[..3]);
        let big = ITuple::from_slice(&vals[..7]);
        assert_ne!(small, big);
        let mut set = ITupleSet::default();
        set.insert(small.clone());
        assert!(set.contains(&vals[..3]));
        assert!(!set.contains(&vals[..4]));
    }

    #[test]
    fn ituple_hash_matches_slice_hash() {
        use std::hash::BuildHasher;
        let build = FxBuild::default();
        let t = ITuple::from_slice(&[IVal::Int(1), IVal::Int(2)]);
        let slice: &[IVal] = t.as_slice();
        assert_eq!(build.hash_one(&t), build.hash_one(slice));
    }
}
