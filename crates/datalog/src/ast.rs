//! Abstract syntax for stratified Datalog programs.

use std::fmt;
use std::sync::Arc;

/// A ground value: the constants that populate relations.
///
/// Strings are reference-counted because certificate fact bases repeat the
/// same handles (fingerprint hex, chain ids) across many tuples.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    /// A 64-bit integer (timestamps, lifetimes, path lengths...).
    Int(i64),
    /// A string constant (`"TLS"`, fingerprints, DNS names...).
    Str(Arc<str>),
}

impl Val {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Val {
        Val::Str(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Val {
        Val::Int(i)
    }

    /// The integer contents, if this is an [`Val::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            Val::Str(_) => None,
        }
    }

    /// The string contents, if this is a [`Val::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            Val::Int(_) => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(i) => write!(f, "{i}"),
            Val::Str(s) => write!(f, "{:?}", s.as_ref()),
        }
    }
}

/// A term: a constant or a variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A ground constant.
    Const(Val),
    /// A variable (`X`, `Chain`, `_Ignored`). The anonymous variable `_`
    /// is expanded to a fresh name by the parser.
    Var(Arc<str>),
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// Construct an integer constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Val::Int(i))
    }

    /// Construct a string constant term.
    pub fn str(s: impl AsRef<str>) -> Term {
        Term::Const(Val::str(s))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(name) => write!(f, "{name}"),
        }
    }
}

/// A predicate applied to terms: `notBefore(Cert, NB)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literal {
    /// Predicate name.
    pub pred: Arc<str>,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Literal {
    /// Construct a literal.
    pub fn new(pred: impl AsRef<str>, args: Vec<Term>) -> Literal {
        Literal {
            pred: Arc::from(pred.as_ref()),
            args,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{arg}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators available in rule bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=` (also written `=<` in classic Prolog; both are accepted)
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` — equality test (both sides must be bound)
    Eq,
    /// `!=` (also `\=`)
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators in expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        })
    }
}

/// An arithmetic expression over integer terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A bare term.
    Term(Term),
    /// A binary operation.
    Bin(Box<Expr>, ArithOp, Box<Expr>),
}

impl Expr {
    /// All variables mentioned in the expression.
    pub fn vars(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Expr::Term(Term::Var(v)) => out.push(v.clone()),
            Expr::Term(Term::Const(_)) => {}
            Expr::Bin(l, _, r) => {
                l.vars(out);
                r.vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::Bin(l, op, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

/// One item in a rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyItem {
    /// A positive literal: joins against the relation.
    Pos(Literal),
    /// A negated literal: `\+ EV(Cert)`. Requires stratification.
    Neg(Literal),
    /// A comparison between two arithmetic expressions: `NB < T`.
    Cmp(Expr, CmpOp, Expr),
    /// `X = Expr` — evaluate the right side and bind (or check) the left
    /// variable: `Lifetime = NA - NB`.
    Assign(Arc<str>, Expr),
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Pos(l) => write!(f, "{l}"),
            BodyItem::Neg(l) => write!(f, "\\+{l}"),
            BodyItem::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            BodyItem::Assign(v, e) => write!(f, "{v} = {e}"),
        }
    }
}

/// A rule `head :- body.`; a fact is a rule with an empty body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The derived literal.
    pub head: Literal,
    /// Body items, evaluated left to right.
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// True when the rule has no body (a ground or non-ground fact; only
    /// ground facts pass the safety check).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, item) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        write!(f, ".")
    }
}

/// A parsed program: an ordered list of rules and facts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The program's rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Parse a program from source text. See [`crate::parser`].
    pub fn parse(src: &str) -> Result<Program, crate::DatalogError> {
        crate::parser::parse_program(src)
    }

    /// Names of all predicates that appear in rule heads.
    pub fn derived_predicates(&self) -> std::collections::BTreeSet<Arc<str>> {
        self.rules.iter().map(|r| r.head.pred.clone()).collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_through_parser() {
        let src = r#"
            limit(2630000).
            valid(Chain, "TLS") :- leaf(Chain, C), \+ev(C), notBefore(C, NB), limit(T), NB < T.
            lifetimeOk(C) :- notBefore(C, NB), notAfter(C, NA), L = NA - NB, limit(Max), L <= Max.
        "#;
        let p = Program::parse(src).unwrap();
        let printed = p.to_string();
        let reparsed = Program::parse(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::int(5).as_int(), Some(5));
        assert_eq!(Val::int(5).as_str(), None);
        assert_eq!(Val::str("x").as_str(), Some("x"));
        assert_eq!(Val::str("x").as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Val::str("TLS").to_string(), "\"TLS\"");
        assert_eq!(Val::int(-3).to_string(), "-3");
        assert_eq!(
            Literal::new("leaf", vec![Term::var("Chain"), Term::var("Cert")]).to_string(),
            "leaf(Chain, Cert)"
        );
    }
}
