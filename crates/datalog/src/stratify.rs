//! Stratification: dependency analysis over predicates.
//!
//! Builds the predicate dependency graph (an edge `p → q` for every rule
//! deriving `p` whose body mentions `q`; the edge is *negative* when `q`
//! appears under `\+`). A program is stratifiable iff no cycle contains a
//! negative edge; predicates are then assigned strata evaluated bottom-up.
//!
//! Arithmetic is treated like negation for termination purposes: a rule
//! that *creates* new values (via `=` bindings used in its head) inside a
//! recursive cycle could enumerate unboundedly many tuples, so such
//! programs are rejected. This keeps the paper's "Datalog termination is
//! guaranteed" property honest even with the arithmetic its listings use.

use crate::ast::{BodyItem, Program};
use crate::DatalogError;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The result of stratification: each derived predicate's stratum, and
/// the total number of strata.
#[derive(Clone, Debug)]
pub struct Stratification {
    /// Stratum index per derived predicate (EDB predicates are absent and
    /// implicitly stratum 0).
    pub stratum: BTreeMap<Arc<str>, usize>,
    /// Total number of strata.
    pub count: usize,
}

impl Stratification {
    /// The stratum of `pred` (0 for pure EDB predicates).
    pub fn of(&self, pred: &str) -> usize {
        self.stratum.get(pred).copied().unwrap_or(0)
    }
}

/// Compute a stratification or explain why none exists.
pub fn stratify(program: &Program) -> Result<Stratification, DatalogError> {
    let derived: BTreeSet<Arc<str>> = program.rules.iter().map(|r| r.head.pred.clone()).collect();

    // Edges: (from=head, to=body-pred, negative?).
    let mut pos_edges: BTreeMap<Arc<str>, BTreeSet<Arc<str>>> = BTreeMap::new();
    let mut neg_edges: BTreeMap<Arc<str>, BTreeSet<Arc<str>>> = BTreeMap::new();
    for rule in &program.rules {
        let head = rule.head.pred.clone();
        for item in &rule.body {
            match item {
                BodyItem::Pos(lit) => {
                    if derived.contains(&lit.pred) {
                        pos_edges
                            .entry(head.clone())
                            .or_default()
                            .insert(lit.pred.clone());
                    }
                }
                BodyItem::Neg(lit) => {
                    if derived.contains(&lit.pred) {
                        neg_edges
                            .entry(head.clone())
                            .or_default()
                            .insert(lit.pred.clone());
                    }
                }
                BodyItem::Cmp(..) | BodyItem::Assign(..) => {}
            }
        }
    }

    // Iteratively compute strata: stratum(p) >= stratum(q) for positive
    // deps, stratum(p) >= stratum(q) + 1 for negative deps. Divergence
    // beyond the predicate count means a negative cycle.
    let mut stratum: BTreeMap<Arc<str>, usize> =
        derived.iter().map(|p| (p.clone(), 0usize)).collect();
    let limit = derived.len() + 1;
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            let head = &rule.head.pred;
            for item in &rule.body {
                let (pred, bump) = match item {
                    BodyItem::Pos(lit) => (&lit.pred, 0),
                    BodyItem::Neg(lit) => (&lit.pred, 1),
                    _ => continue,
                };
                if !derived.contains(pred) {
                    continue;
                }
                let need = stratum[pred] + bump;
                if stratum[head] < need {
                    if need >= limit {
                        return Err(DatalogError::NotStratifiable {
                            message: format!(
                                "predicate {head} depends negatively on itself (via {pred})"
                            ),
                        });
                    }
                    *stratum.get_mut(head).unwrap() = need;
                    changed = true;
                }
            }
        }
    }

    // Termination guard for arithmetic: a head-reaching assignment inside
    // a recursive component can generate fresh constants forever.
    let components = same_stratum_cycles(&pos_edges, &stratum);
    for rule in &program.rules {
        let creates_values = rule.body.iter().any(|i| matches!(i, BodyItem::Assign(..)));
        if !creates_values {
            continue;
        }
        let head = &rule.head.pred;
        // Recursive = the head participates in a cycle among its stratum
        // (including direct self-recursion).
        if components.contains(head) {
            return Err(DatalogError::NotStratifiable {
                message: format!(
                    "rule for {head} uses arithmetic inside a recursive cycle; \
                     this could generate unboundedly many values"
                ),
            });
        }
    }

    let count = stratum.values().copied().max().map(|m| m + 1).unwrap_or(1);
    Ok(Stratification { stratum, count })
}

/// Predicates that are part of some positive cycle (p reaches p).
fn same_stratum_cycles(
    pos_edges: &BTreeMap<Arc<str>, BTreeSet<Arc<str>>>,
    _stratum: &BTreeMap<Arc<str>, usize>,
) -> BTreeSet<Arc<str>> {
    let mut cyclic = BTreeSet::new();
    for start in pos_edges.keys() {
        // DFS from each successor of `start`; if we can get back, it's cyclic.
        let mut stack: Vec<&Arc<str>> = pos_edges[start].iter().collect();
        let mut seen: BTreeSet<&Arc<str>> = BTreeSet::new();
        while let Some(p) = stack.pop() {
            if p == start {
                cyclic.insert(start.clone());
                break;
            }
            if !seen.insert(p) {
                continue;
            }
            if let Some(next) = pos_edges.get(p) {
                stack.extend(next.iter());
            }
        }
    }
    cyclic
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(src: &str) -> Stratification {
        stratify(&Program::parse(src).unwrap()).unwrap()
    }

    fn fails(src: &str) -> String {
        match stratify(&Program::parse(src).unwrap()) {
            Err(DatalogError::NotStratifiable { message }) => message,
            other => panic!("expected NotStratifiable, got {other:?}"),
        }
    }

    #[test]
    fn positive_recursion_is_fine() {
        let s = strat("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
        assert_eq!(s.count, 1);
        assert_eq!(s.of("reach"), 0);
        assert_eq!(s.of("edge"), 0); // EDB
    }

    #[test]
    fn negation_pushes_up_a_stratum() {
        let s = strat(
            "bad(X) :- cert(X), revoked(X).
             good(X) :- cert(X), \\+bad(X).",
        );
        assert_eq!(s.of("bad"), 0);
        assert_eq!(s.of("good"), 1);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn chained_negation() {
        let s = strat(
            "a(X) :- e(X).
             b(X) :- e(X), \\+a(X).
             c(X) :- e(X), \\+b(X).",
        );
        assert_eq!(s.of("a"), 0);
        assert_eq!(s.of("b"), 1);
        assert_eq!(s.of("c"), 2);
    }

    #[test]
    fn negative_self_cycle_rejected() {
        let msg = fails("p(X) :- q(X), \\+p(X).");
        assert!(msg.contains("negatively"));
    }

    #[test]
    fn negative_two_cycle_rejected() {
        let msg = fails(
            "p(X) :- q(X), \\+r(X).
             r(X) :- q(X), \\+p(X).",
        );
        assert!(msg.contains("negatively"));
    }

    #[test]
    fn arithmetic_in_recursion_rejected() {
        let msg = fails("count(Y) :- count(X), Y = X + 1.");
        assert!(msg.contains("arithmetic"));
    }

    #[test]
    fn arithmetic_in_mutual_recursion_rejected() {
        let msg = fails(
            "even(X) :- odd(X2), X = X2 - 1, positive(X).
             odd(X) :- even(X2), X = X2 - 1, positive(X).",
        );
        assert!(msg.contains("arithmetic"));
    }

    #[test]
    fn arithmetic_outside_recursion_allowed() {
        let s = strat(
            "lifetime(C, L) :- notBefore(C, NB), notAfter(C, NA), L = NA - NB.
             shortLived(C) :- lifetime(C, L), L < 100.",
        );
        assert_eq!(s.count, 1);
    }

    #[test]
    fn paper_listing_1_stratifies() {
        let s = strat(
            r#"nov30th2022(1669784400).
               valid(Chain, "TLS") :- leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T."#,
        );
        // EV is an EDB predicate: negation over EDB needs no extra stratum.
        assert_eq!(s.count, 1);
    }
}
