//! Shim for the `serde` crate: serialization only, JSON only.
//!
//! [`Serialize`] converts a value into an owned [`Value`] tree which
//! `serde_json` renders. `#[derive(Serialize)]` (from the sibling
//! `serde_derive` shim) implements the trait for named-field structs —
//! the only shape the workspace's report types use.

// Let the derive's generated `::serde::` paths resolve inside this
// crate's own tests too.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A JSON value tree (the shim's serialization target).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer (i128 covers every integer type serialized here).
    Int(i128),
    /// A float; non-finite values render as `null` like serde_json.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Convert to a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_on_named_struct() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            count: usize,
            ratio: f64,
            ok: bool,
        }
        let v = Row {
            name: "x".into(),
            count: 3,
            ratio: 0.5,
            ok: true,
        }
        .to_value();
        let Value::Object(fields) = v else {
            panic!("expected object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["name", "count", "ratio", "ok"]);
    }

    #[test]
    fn nested_vec_and_option() {
        #[derive(Serialize)]
        struct Inner {
            v: u32,
        }
        #[derive(Serialize)]
        struct Outer {
            rows: Vec<Inner>,
            maybe: Option<u8>,
            tag: &'static str,
        }
        let v = Outer {
            rows: vec![Inner { v: 1 }, Inner { v: 2 }],
            maybe: None,
            tag: "t",
        }
        .to_value();
        let Value::Object(fields) = v else {
            panic!("expected object")
        };
        assert!(matches!(&fields[0].1, Value::Array(a) if a.len() == 2));
        assert_eq!(fields[1].1, Value::Null);
        assert_eq!(fields[2].1, Value::Str("t".into()));
    }
}
