//! Shim for `serde_derive`: `#[derive(Serialize)]` for structs with
//! named fields, built on the compiler's `proc_macro` API alone (no
//! syn/quote — the registry is unreachable in this environment).
//!
//! The macro walks the raw token stream: it finds the `struct` keyword,
//! takes the following identifier as the type name, skips ahead to the
//! brace-delimited field block, and collects field names (skipping
//! attributes, visibility modifiers, and each field's type tokens).
//! Enums and tuple structs are rejected with a compile error — the
//! workspace only derives on named-field report structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the shim's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Find `struct <Name>`; anything else (enum, union) is unsupported.
    let name = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match tokens.get(i + 1) {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                _ => return Err("expected a name after `struct`".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("shim serde_derive supports only named-field structs".into());
            }
            Some(_) => i += 1,
            None => return Err("expected a struct definition".into()),
        }
    };

    // The field block is the first brace group after the name (skipping
    // any generics, which the workspace's report structs don't use, and
    // which would also need lifetime plumbing this shim omits).
    let fields_group = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| "shim serde_derive supports only named-field structs".to_string())?;

    let fields = field_names(fields_group)?;
    let entries: String = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .map_err(|e| format!("generated impl failed to parse: {e:?}"))
}

/// Collect field names from the contents of a struct's brace block.
fn field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes: `#` followed by a bracket group.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next(); // the [...] group
        }
        // Skip visibility: `pub` optionally followed by `(...)`.
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(name)) => names.push(name.to_string()),
            None => return Ok(names),
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("shim serde_derive supports only named fields".into()),
        }
        // Skip the type: everything up to a top-level comma.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => return Ok(names),
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {}
            }
            tokens.next();
        }
    }
}
