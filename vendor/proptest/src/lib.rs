//! Shim for the `proptest` crate: the API subset the workspace's
//! property tests use, generating values from a deterministic
//! per-test RNG.
//!
//! Supported: `proptest!` (with optional `proptest_config`), `any`,
//! integer ranges, regex-subset string strategies (sequences of
//! character classes with `{m,n}` counts), `Just`, `prop_oneof!`,
//! `prop_map`, `prop_recursive`, tuples, `collection::vec`,
//! `option::of`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Deliberate deviations from real proptest: no shrinking (a failing
//! case reports the values' Debug form at full size) and a fixed seed
//! derived from the test name, so runs are reproducible by default.

use std::sync::Arc;

pub use strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Deterministic RNG and case-loop driver behind `proptest!`.
pub mod test_runner {
    /// SplitMix64 stream; deterministic, seeded per test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create an RNG from a 64-bit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Multiply-shift with one widening step keeps bias below
            // 2^-64, far under test-relevant thresholds.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform value in `[lo, hi)` over i128 (covers every integer
        /// range the workspace's strategies use).
        pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo < hi, "empty range in strategy");
            let span = (hi - lo) as u128;
            if span == 0 {
                // Span overflowed u128::MAX + 1: the full i128 domain.
                let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
                return raw as i128;
            }
            let raw = if span <= u64::MAX as u128 {
                self.below(span as u64) as u128
            } else {
                let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
                wide % span
            };
            lo + raw as i128
        }
    }

    /// Runner configuration (`with_cases` is the only knob used).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A skipped case (unmet assumption).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn fnv64(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: keep generating cases until `config.cases`
    /// are accepted, panicking on the first failure.
    pub fn run<F>(name: &str, config: ProptestConfig, f: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv64(name.as_bytes());
        let max_attempts = config.cases.saturating_mul(20).max(200);
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        while accepted < config.cases {
            assert!(
                attempts < max_attempts,
                "{name}: too many rejected cases ({accepted}/{} accepted in {attempts} attempts)",
                config.cases
            );
            let mut rng =
                TestRng::new(base ^ (u64::from(attempts)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempts += 1;
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case #{attempts}:\n{msg}")
                }
            }
        }
    }
}

/// Core [`Strategy`] trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::Arc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into branch cases, nested
        /// up to `depth` levels. The size-target parameters of real
        /// proptest are accepted but unused — each level picks leaf or
        /// branch with equal probability, which keeps values bounded.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                current = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            current
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
    trait ObjStrategy<V> {
        fn new_value_obj(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> ObjStrategy<S::Value> for S {
        fn new_value_obj(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn ObjStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value_obj(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    /// Types with a canonical whole-domain strategy ([`any`]).
    pub trait Arbitrary {
        /// Generate an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            // Short strings mixing printable ASCII with arbitrary
            // scalar values, so encoders meet multi-byte UTF-8.
            let len = rng.below(17);
            (0..len)
                .map(|_| {
                    if rng.below(4) < 3 {
                        (0x20 + rng.below(0x5F) as u32 as u8) as char
                    } else {
                        loop {
                            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                                break c;
                            }
                        }
                    }
                })
                .collect()
        }
    }

    /// Strategy generating any value of `T` (see [`any`]).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.range_i128(self.start as i128, self.end as i128) as $t
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            super::string::generate(self, rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11),
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Vector of values from `element`, length uniform in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!sizes.is_empty(), "empty size range in collection::vec");
        VecStrategy { element, sizes }
    }

    /// Strategy built by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_i128(self.sizes.start as i128, self.sizes.end as i128) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `None` or `Some` of a value from `inner`, equally likely.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy built by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }
}

/// Regex-subset string generation backing `&str` strategies.
///
/// Grammar: a pattern is a sequence of character classes `[...]`, each
/// optionally followed by `{n}` or `{m,n}`. Classes support literal
/// characters, `a-z` ranges, and `\n` / `\r` / `\t` / `\\` / `\]` /
/// `\-` escapes. This covers every pattern in the workspace's tests;
/// anything else panics so an unsupported pattern fails loudly.
pub mod string {
    use super::test_runner::TestRng;

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = rng.range_i128(*lo as i128, *hi as i128 + 1) as usize;
            for _ in 0..n {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }

    type Atom = (Vec<char>, usize, usize);

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            assert!(
                c == '[',
                "shim proptest supports only [class]{{m,n}} patterns, got {pattern:?}"
            );
            let set = parse_class(&mut chars, pattern);
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                parse_count(&mut chars, pattern)
            } else {
                (1, 1)
            };
            atoms.push((set, lo, hi));
        }
        atoms
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Vec<char> {
        // Resolve escapes first, then expand `a-z` ranges.
        let mut raw = Vec::new();
        loop {
            match chars.next() {
                None => panic!("unterminated character class in {pattern:?}"),
                Some(']') => break,
                Some('\\') => {
                    let c = match chars.next() {
                        Some('n') => '\n',
                        Some('r') => '\r',
                        Some('t') => '\t',
                        Some(c @ ('\\' | ']' | '-' | '[')) => c,
                        other => panic!("unsupported escape {other:?} in {pattern:?}"),
                    };
                    raw.push((c, true));
                }
                Some(c) => raw.push((c, false)),
            }
        }
        let mut set = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            // A bare `-` between two members denotes a range; escaped,
            // leading, or trailing dashes are literal.
            if i + 2 < raw.len() && raw[i + 1] == ('-', false) {
                let (lo, hi) = (raw[i].0, raw[i + 2].0);
                assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(raw[i].0);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        set
    }

    fn parse_count(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (usize, usize) {
        let mut body = String::new();
        loop {
            match chars.next() {
                None => panic!("unterminated count in {pattern:?}"),
                Some('}') => break,
                Some(c) => body.push(c),
            }
        }
        let parse_num = |s: &str| -> usize {
            s.parse()
                .unwrap_or_else(|_| panic!("bad repeat count {s:?} in {pattern:?}"))
        };
        match body.split_once(',') {
            None => {
                let n = parse_num(&body);
                (n, n)
            }
            Some((lo, hi)) => (parse_num(lo), parse_num(hi)),
        }
    }
}

/// The names property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Fail the current case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  both: {:?}",
                        format!($($fmt)+),
                        l
                    )));
                }
            }
        }
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(binding in strategy, ...)` body
/// runs `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $( #[test] fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::test_runner::run(stringify!($name), config, |rng| {
                    $(let $pat = $crate::Strategy::new_value(&($strategy), rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        #[allow(unreachable_code)]
                        {
                            $body
                            ::std::result::Result::Ok(())
                        }
                    })();
                    outcome
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = crate::string::generate("[a-z][a-z0-9-]{0,8}[a-z0-9]", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 10, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let s2 = crate::string::generate("[ -~\\n]{0,200}", &mut rng);
            assert!(s2.len() <= 200);
            assert!(s2.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..500 {
            let v = Strategy::new_value(&(-60_000_000_000i64..250_000_000_000), &mut rng);
            assert!((-60_000_000_000..250_000_000_000).contains(&v));
            let u = Strategy::new_value(&(2usize..6), &mut rng);
            assert!((2..6).contains(&u));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_wires_bindings(
            v in crate::collection::vec(any::<u8>(), 0..8),
            flag in any::<bool>(),
            name in "[a-z]{1,5}",
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(!name.is_empty() && name.len() <= 5);
            if flag {
                return Ok(());
            }
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(name.len(), 0, "name {} must be non-empty", name);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u8..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        let strat = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 64, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let t = Strategy::new_value(&strat, &mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 4);
        }
    }

    #[test]
    fn oneof_and_tuples() {
        let strat = prop_oneof![Just(0i64), (1i64..10, 1i64..10).prop_map(|(a, b)| a * b),];
        let mut rng = crate::TestRng::new(5);
        let mut saw_zero = false;
        let mut saw_product = false;
        for _ in 0..200 {
            let v = Strategy::new_value(&strat, &mut rng);
            if v == 0 {
                saw_zero = true;
            } else {
                assert!((1..100).contains(&v));
                saw_product = true;
            }
        }
        assert!(saw_zero && saw_product);
    }
}
