//! Shim for the `rand` crate: `StdRng` + the `Rng`/`SeedableRng` trait
//! surface this workspace uses (`gen`, `gen_range`, `gen_bool`).
//!
//! The core generator is SplitMix64 — statistically fine for test-corpus
//! generation (the only use in this workspace), deterministic per seed,
//! and trivially portable. It is **not** cryptographic; nothing here
//! feeds key material (the crypto crate has its own primitives).

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from raw generator output (rand's `Standard`
/// distribution, collapsed into one trait).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (rand's `Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// A range a value can be drawn from.
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draw uniformly from the range. Panics on an empty range, like rand.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }

        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The standard generator: SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use crate::StdRng;
}

/// One-stop imports (mirrors `rand::prelude`).
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
        }
    }
}
