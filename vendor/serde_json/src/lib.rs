//! Shim for `serde_json`: renders the `serde` shim's [`serde::Value`]
//! tree as JSON text. Serialization only.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The shim's rendering is total, so this is never
/// produced — it exists so call sites written against real serde_json
/// (`to_string_pretty(..)?` / `.expect(..)`) compile unchanged.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: floats always carry a decimal point
                // or exponent so they reparse as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => render_seq(items.iter(), items.len(), '[', ']', indent, depth, out),
        Value::Object(fields) => {
            render_seq(fields.iter(), fields.len(), '{', '}', indent, depth, out)
        }
    }
}

/// Render one array item or object entry.
trait Entry {
    fn render(&self, indent: Option<usize>, depth: usize, out: &mut String);
}

impl Entry for Value {
    fn render(&self, indent: Option<usize>, depth: usize, out: &mut String) {
        render(self, indent, depth, out);
    }
}

impl Entry for (String, Value) {
    fn render(&self, indent: Option<usize>, depth: usize, out: &mut String) {
        render_string(&self.0, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        render(&self.1, indent, depth, out);
    }
}

fn render_seq<'a, E: Entry + 'a>(
    entries: impl Iterator<Item = &'a E>,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, entry) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        entry.render(indent, depth + 1, out);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Float(1.0)),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&Raw(v)).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y\n","d":1.0}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        #[derive(serde::Serialize)]
        struct R {
            n: u8,
        }
        let s = to_string_pretty(&R { n: 5 }).unwrap();
        assert_eq!(s, "{\n  \"n\": 5\n}");
    }
}
