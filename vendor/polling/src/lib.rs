//! Shim for the `polling` crate: a portable readiness queue (the API
//! subset the trust daemon's reactor uses), in the style of
//! smol-rs/polling.
//!
//! On Linux this wraps `epoll(7)` directly — the symbols are declared
//! `extern "C"` against the C library every Rust binary already links,
//! so no third-party crate is needed. Elsewhere it falls back to
//! `poll(2)` over a registration table, which is POSIX-portable (and
//! the moral equivalent of kqueue for the fd counts our tests use off
//! Linux).
//!
//! Semantics follow the real crate:
//!
//! * Interest is **oneshot** by default: after an event for a source is
//!   delivered, the source stays registered but disarmed until
//!   [`Poller::modify`] re-arms it. This makes per-connection state
//!   machines race-free by construction — the reactor re-arms exactly
//!   the interest its state wants next. [`Poller::modify_level`] opts a
//!   source into *level-triggered* interest instead, for hot
//!   request/reply connections where the per-delivery re-arm syscall is
//!   the dominant cost.
//! * [`Poller::notify`] wakes a concurrent [`Poller::wait`] from any
//!   thread (a self-socketpair under the hood); the wakeup is consumed
//!   internally and never surfaces as a caller-visible [`Event`].
//! * Error/hangup conditions are folded into readability/writability,
//!   so a peer close surfaces as a readable event whose subsequent
//!   `read` returns 0 — the state machine needs no separate EOF arm.

use std::io;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness interest in, or readiness state of, one registered source.
///
/// `key` is an opaque caller token (the reactor uses slab slots)
/// round-tripped through the kernel with the registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller token identifying the source.
    pub key: usize,
    /// Interest in (or presence of) readability.
    pub readable: bool,
    /// Interest in (or presence of) writability.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: the source stays registered but disarmed.
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// The key reserved for the internal notify waker; user keys must stay
/// below it.
const NOTIFY_KEY: usize = usize::MAX;

/// A readiness queue over `epoll(7)` (Linux) or `poll(2)` (fallback).
pub struct Poller {
    backend: backend::Backend,
    /// Self-socketpair waker: writing to `notify_tx` makes
    /// `notify_rx` readable, waking a blocked `wait`.
    notify_rx: UnixStream,
    notify_tx: UnixStream,
}

impl Poller {
    /// Create a poller with its notify waker armed.
    pub fn new() -> io::Result<Poller> {
        let (notify_tx, notify_rx) = UnixStream::pair()?;
        notify_rx.set_nonblocking(true)?;
        notify_tx.set_nonblocking(true)?;
        let backend = backend::Backend::new()?;
        // The waker is the one persistent (non-oneshot) registration.
        backend.register(notify_rx.as_raw_fd(), Event::readable(NOTIFY_KEY), false)?;
        Ok(Poller {
            backend,
            notify_rx,
            notify_tx,
        })
    }

    /// Register a source with its initial oneshot interest.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for the notify waker",
            ));
        }
        self.backend.register(source.as_raw_fd(), interest, true)
    }

    /// Re-arm (or change) a registered source's oneshot interest.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for the notify waker",
            ));
        }
        self.backend.rearm(source.as_raw_fd(), interest, true)
    }

    /// Re-arm (or change) a registered source with *level-triggered*
    /// interest: deliveries do not disarm it, so events keep arriving
    /// whenever the condition holds, with no re-arm call in between.
    /// This trades the oneshot mode's race-freedom-by-construction for
    /// one fewer syscall per delivery — callers must be prepared for
    /// events on a source whose state machine has since moved on, and
    /// must switch back to [`Poller::modify`] (or disarm with
    /// [`Event::none`]) before any state where a delivery would be
    /// acted on incorrectly.
    pub fn modify_level(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for the notify waker",
            ));
        }
        self.backend.rearm(source.as_raw_fd(), interest, false)
    }

    /// Remove a source from the poller entirely.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.backend.deregister(source.as_raw_fd())
    }

    /// Block until at least one source is ready (or `timeout` elapses,
    /// or [`Poller::notify`] is called), appending events to `events`.
    /// Returns the number of events delivered; `0` means timeout,
    /// notification, or a benign interruption — callers are expected to
    /// re-check their own queues and loop either way.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.backend.wait(events, timeout)?;
        // Consume waker bytes without surfacing them; keep any real
        // events gathered in the same wake.
        let mut n = 0;
        events.retain(|e| {
            if e.key == NOTIFY_KEY {
                n += 1;
                false
            } else {
                true
            }
        });
        if n > 0 {
            let mut buf = [0u8; 64];
            while let Ok(k) = (&self.notify_rx).read(&mut buf) {
                if k == 0 {
                    break;
                }
            }
        }
        Ok(events.len())
    }

    /// Wake a concurrent [`Poller::wait`] from any thread. Each call
    /// writes one byte to the waker pair; a full pipe means wakeups are
    /// already pending, which is just as good.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.notify_tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

use std::io::{Read, Write};

#[cfg(target_os = "linux")]
mod backend {
    //! `epoll(7)` backend, FFI-declared against the linked C library.

    use super::Event;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;

    /// Kernel `struct epoll_event`; packed on x86_64 only (the kernel
    /// uapi header carries `__attribute__((packed))` under `__x86_64__`).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Event, oneshot: bool) -> u32 {
        let mut mask = if oneshot { EPOLLONESHOT } else { 0 };
        if interest.readable {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    pub(super) struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend { epfd })
        }

        pub(super) fn register(&self, fd: RawFd, interest: Event, oneshot: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest, oneshot),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            Ok(())
        }

        pub(super) fn rearm(&self, fd: RawFd, interest: Event, oneshot: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest, oneshot),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) })?;
            Ok(())
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 1024];
            let n = match cvt(unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            }) {
                Ok(n) => n,
                // A signal interrupted the wait; report an empty wake
                // and let the caller loop.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                // Errors and hangups surface as readable+writable so the
                // owner's next I/O attempt observes the real error.
                let broken = events & (EPOLLERR | EPOLLHUP) != 0;
                out.push(Event {
                    key: data as usize,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0 || broken,
                    writable: events & EPOLLOUT != 0 || broken,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod backend {
    //! Portable `poll(2)` backend: a registration table re-polled on
    //! every wait. O(n) per wake, which is fine for the non-Linux dev
    //! machines this fallback serves.

    use super::Event;
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    struct Registration {
        key: usize,
        readable: bool,
        writable: bool,
        oneshot: bool,
    }

    pub(super) struct Backend {
        table: Mutex<HashMap<RawFd, Registration>>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            Ok(Backend {
                table: Mutex::new(HashMap::new()),
            })
        }

        pub(super) fn register(&self, fd: RawFd, interest: Event, oneshot: bool) -> io::Result<()> {
            self.table.lock().unwrap().insert(
                fd,
                Registration {
                    key: interest.key,
                    readable: interest.readable,
                    writable: interest.writable,
                    oneshot,
                },
            );
            Ok(())
        }

        pub(super) fn rearm(&self, fd: RawFd, interest: Event, oneshot: bool) -> io::Result<()> {
            match self.table.lock().unwrap().get_mut(&fd) {
                Some(reg) => {
                    reg.key = interest.key;
                    reg.readable = interest.readable;
                    reg.writable = interest.writable;
                    reg.oneshot = oneshot;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.table.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = {
                let table = self.table.lock().unwrap();
                table
                    .iter()
                    .map(|(fd, reg)| PollFd {
                        fd: *fd,
                        events: if reg.readable { POLLIN } else { 0 }
                            | if reg.writable { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect()
            };
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            let mut table = self.table.lock().unwrap();
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let Some(reg) = table.get_mut(&pfd.fd) else {
                    continue;
                };
                let broken = pfd.revents & (POLLERR | POLLHUP) != 0;
                out.push(Event {
                    key: reg.key,
                    readable: pfd.revents & POLLIN != 0 || broken,
                    writable: pfd.revents & POLLOUT != 0 || broken,
                });
                if reg.oneshot {
                    reg.readable = false;
                    reg.writable = false;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const SHORT: Option<Duration> = Some(Duration::from_millis(50));

    #[test]
    fn readable_event_fires_once_then_needs_rearm() {
        let poller = Poller::new().unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.add(&rx, Event::readable(7)).unwrap();

        tx.write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Oneshot: the byte is still unread, but the source is disarmed
        // until modify re-arms it.
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 0);
        poller.modify(&rx, Event::readable(7)).unwrap();
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 1);
    }

    #[test]
    fn level_interest_redelivers_without_rearm() {
        let poller = Poller::new().unwrap();
        let (mut tx, mut rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.add(&rx, Event::readable(5)).unwrap();
        poller.modify_level(&rx, Event::readable(5)).unwrap();

        let mut events = Vec::new();
        for round in 0..3 {
            tx.write_all(b"x").unwrap();
            // Level mode: every round is delivered with no modify call.
            assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 1, "round {round}");
            assert_eq!(events[0].key, 5);
            assert!(events[0].readable);
            let mut buf = [0u8; 8];
            assert_eq!(rx.read(&mut buf).unwrap(), 1);
        }
        // Buffer drained: level interest goes quiet until new bytes.
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 0);

        // Switching back to oneshot restores disarm-on-delivery.
        poller.modify(&rx, Event::readable(5)).unwrap();
        tx.write_all(b"xx").unwrap();
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 1);
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 0);
    }

    #[test]
    fn writable_event_on_unblocked_socket() {
        let poller = Poller::new().unwrap();
        let (tx, _rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        poller.add(&tx, Event::writable(3)).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 1);
        assert_eq!(events[0].key, 3);
        assert!(events[0].writable);
    }

    #[test]
    fn notify_wakes_blocked_wait_without_surfacing_an_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = poller.clone();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p2.notify().unwrap();
        });
        let mut events = Vec::new();
        // A long timeout the notify must cut short.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0);
        waker.join().unwrap();
    }

    #[test]
    fn deleted_source_stops_reporting() {
        let poller = Poller::new().unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.add(&rx, Event::readable(1)).unwrap();
        poller.delete(&rx).unwrap();
        tx.write_all(b"y").unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 0);
    }

    #[test]
    fn peer_hangup_surfaces_as_readable() {
        let poller = Poller::new().unwrap();
        let (tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.add(&rx, Event::readable(9)).unwrap();
        drop(tx);
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, SHORT).unwrap(), 1);
        assert!(events[0].readable);
    }

    #[test]
    fn reserved_key_rejected() {
        let poller = Poller::new().unwrap();
        let (_tx, rx) = UnixStream::pair().unwrap();
        assert!(poller.add(&rx, Event::readable(usize::MAX)).is_err());
    }
}
