//! Shim for the `crossbeam` crate: multi-producer multi-consumer
//! channels (the `crossbeam::channel` API subset the trust daemon's
//! worker pool uses), implemented with a `Mutex<VecDeque>` plus two
//! condvars, and scoped threads (the `crossbeam::thread` API subset
//! the parallel Merkle builder uses), delegating to
//! `std::thread::scope`.

pub mod thread {
    //! Scoped threads: `crossbeam::thread::scope` over `std::thread`.
    //!
    //! One behavioral difference from real crossbeam: a panicking child
    //! thread propagates its panic out of [`scope`] (as
    //! `std::thread::scope` does) instead of surfacing as an `Err`
    //! return. Callers here treat child panics as fatal either way.

    /// Spawns scoped threads; handed to the closure passed to [`scope`].
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; join before the scope ends or the
    /// scope joins it implicitly.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing frame. The
        /// closure receives the scope again (crossbeam's signature), so
        /// workers can spawn nested workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope whose spawned threads are all joined before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPMC channels: `bounded` and `unbounded`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item is pushed or all senders drop.
        not_empty: Condvar,
        /// Signalled when an item is popped or all receivers drop.
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloneable (MPMC: receivers compete for items).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Create a bounded channel: `send` blocks while `cap` items queue.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// Create an unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full. Errors when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.0.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next item, blocking while the channel is empty.
        /// Errors when the channel is empty and every sender has been
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive; `None` when no item is ready.
        pub fn try_recv(&self) -> Option<T> {
            let mut state = self.0.queue.lock().unwrap();
            let item = state.items.pop_front();
            if item.is_some() {
                drop(state);
                self.0.not_full.notify_one();
            }
            item
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake all receivers so they observe disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{channel, thread};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scoped_threads_can_nest() {
        let n =
            thread::scope(|s| s.spawn(|s| s.spawn(|_| 7).join().unwrap()).join().unwrap()).unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let mut workers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            workers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_when_senders_gone_and_empty() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }
}
