//! Shim for the `parking_lot` crate backed by `std::sync` primitives.
//!
//! Exposes the poison-free `parking_lot` API surface this workspace
//! uses: `lock()` / `read()` / `write()` return guards directly instead
//! of `Result`s. A poisoned std lock means a panic already unwound while
//! holding the guard; recovering the inner data keeps the semantics of
//! parking_lot (which has no poisoning at all).

use std::sync::{self, LockResult};

/// Unwrap a std lock result, ignoring poison like parking_lot does.
fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutex with the parking_lot API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock with the parking_lot API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(7));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
