//! Shim for the `criterion` crate: the API subset the workspace's
//! benches use (`benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros), measured with `std::time::Instant` and
//! reported on stdout as min / median / mean per iteration.
//!
//! Deliberate deviations from real criterion: no outlier analysis, no
//! comparison against saved baselines, no plots, no HTML report — just
//! enough statistics to compare two implementations in the same run.

use std::time::Instant;

/// Per-sample target duration; iteration counts are calibrated so one
/// sample costs roughly this long, keeping timer overhead negligible.
const TARGET_SAMPLE_NANOS: f64 = 2_000_000.0;

/// Re-export shape: benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped between setup calls.
///
/// The shim times each routine invocation individually, so the variants
/// only exist for call-site compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into());
        run_benchmark(&full_id, self.sample_size, f);
        self
    }

    /// Finish the group (stdout reporting happens per benchmark).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    report(id, &mut bencher.samples);
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, whole-loop style.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let iters = calibrate(|| {
            std::hint::black_box(routine());
        });
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / iters as f64);
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time is
    /// excluded by timing each invocation individually.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Calibrate to find how many timed invocations make up a sample.
        let mut input = Some(setup());
        let iters = calibrate(|| {
            let v = input.take().unwrap();
            std::hint::black_box(routine(v));
            input = Some(setup());
        });
        for _ in 0..self.sample_size {
            let mut total = 0u128;
            for _ in 0..iters {
                let v = setup();
                let start = Instant::now();
                std::hint::black_box(routine(v));
                total += start.elapsed().as_nanos();
            }
            self.samples.push(total as f64 / iters as f64);
        }
    }
}

/// Pick an iteration count so one sample takes ~[`TARGET_SAMPLE_NANOS`].
/// Doubles until the probe loop crosses 1ms, also serving as warmup.
fn calibrate<F: FnMut()>(mut probe: F) -> u64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            probe();
        }
        let nanos = start.elapsed().as_nanos() as f64;
        if nanos >= 1_000_000.0 || iters >= 1 << 20 {
            let per_iter = (nanos / iters as f64).max(1.0);
            return ((TARGET_SAMPLE_NANOS / per_iter) as u64).clamp(1, 1 << 22);
        }
        iters *= 2;
    }
}

fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<50} median {:>10}  mean {:>10}  min {:>10}  ({} samples)",
        fmt_nanos(median),
        fmt_nanos(mean),
        fmt_nanos(min),
        samples.len()
    );
}

fn fmt_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a group runner, mirroring
/// criterion's macro (both the simple and `name =`/`config =` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` running each group (benches set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn iter_batched_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(2);
        group.bench_function("rev", |b| {
            b.iter_batched(
                || (0..64u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn fmt_scales() {
        assert!(fmt_nanos(12.0).ends_with("ns"));
        assert!(fmt_nanos(12_000.0).ends_with("µs"));
        assert!(fmt_nanos(12_000_000.0).ends_with("ms"));
    }
}
