//! End-to-end acceptance of the deterministic simulation + differential
//! harness: a full-size oracle run agrees across ≥1,000 `(chain, GCC,
//! usage)` samples, runs are pure functions of their seed, and a
//! deliberately injected oracle fault (ignoring quarantine evidence) is
//! caught, not silently absorbed.
//!
//! Replay any run exactly: `NRSLB_SIM_SEED=<seed> cargo test -q
//! differential`.

use nrslb::sim::{run_differential, seed_from_env, DifferentialConfig};

fn ci_config() -> DifferentialConfig {
    DifferentialConfig {
        seed: seed_from_env(0xd1ff),
        min_gcc_checks: 1_000,
        report_dir: None,
        ..DifferentialConfig::default()
    }
}

#[test]
fn oracle_agrees_across_a_thousand_samples() {
    let outcome = run_differential(&ci_config());
    assert!(
        outcome.gcc_checks >= 1_000,
        "need >=1000 compiled-vs-naive checks, got {}",
        outcome.gcc_checks
    );
    assert!(outcome.cache_checks > 0, "cache path never exercised");
    assert!(outcome.store_checks > 0, "store path never exercised");
    assert!(
        outcome.excused_divergences > 0,
        "the fleet includes laggards and a quarantined victim; some \
         excused divergence must occur or the excuse logic is dead code"
    );
    outcome.assert_agreement();
}

#[test]
fn runs_are_a_pure_function_of_the_seed() {
    let a = run_differential(&ci_config());
    let b = run_differential(&ci_config());
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.events, b.events);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.gcc_checks, b.gcc_checks);
    assert_eq!(a.store_checks, b.store_checks);
    assert_eq!(a.excused_divergences, b.excused_divergences);
    assert_eq!(a.disagreements.len(), b.disagreements.len());
}

#[test]
#[should_panic(expected = "oracle disagreement")]
fn injected_oracle_fault_is_caught() {
    // The deliberate fault: pretend quarantined/stale replicas are in
    // sync. The split-view victim keeps serving its pre-attack store
    // while the primary evolves; the oracle must flag the divergence.
    let outcome = run_differential(&DifferentialConfig {
        ignore_quarantine: true,
        report_dir: None,
        ..ci_config()
    });
    outcome.assert_agreement();
}
