//! Full-validator run over a *signed* corpus: every generated chain must
//! pass all standard checks in every deployment mode — the corpus
//! generator and the validator agree about what a well-formed Web PKI
//! looks like (including the 4 name-constrained intermediates, whose
//! leaves are generated within their constraint scopes).

use nrslb::core::{Usage, ValidationMode, Validator};
use nrslb::ctlog::{Corpus, CorpusConfig};
use nrslb::rootstore::RootStore;
use std::sync::OnceLock;

fn signed_corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut config = CorpusConfig::small(77).signed();
        config.n_leaves = 80;
        Corpus::generate(config)
    })
}

#[test]
fn every_signed_corpus_chain_validates() {
    let corpus = signed_corpus();
    let mut store = RootStore::new("corpus");
    for root in &corpus.roots {
        store.add_trusted(root.clone()).unwrap();
    }
    let mid = (corpus.config.issuance_window.0 + corpus.config.issuance_window.1) / 2;

    for mode in [ValidationMode::UserAgent, ValidationMode::Hammurabi] {
        let validator = Validator::new(store.clone(), mode);
        let mut accepted = 0usize;
        for i in 0..corpus.leaves.len() {
            let chain = corpus.chain_for_leaf(i);
            // Validate at a time inside this leaf's own window.
            let at = chain[0].validity().not_before + 1_000;
            let out = validator
                .validate(&chain[0], &chain[1..2], Usage::Tls, at)
                .unwrap();
            assert!(
                out.accepted(),
                "leaf {i} rejected: {:?} (SANs {:?}, issuer {})",
                out.final_reason(),
                chain[0].dns_names(),
                chain[1].subject()
            );
            accepted += 1;
        }
        assert_eq!(accepted, corpus.leaves.len());
        let _ = mid;
    }
}

#[test]
fn corpus_signatures_verify_and_cross_chains_fail() {
    let corpus = signed_corpus();
    // Correct parentage verifies...
    for i in (0..corpus.leaves.len()).step_by(7) {
        let int = corpus.leaf_issuer[i];
        corpus.leaves[i]
            .verify_signed_by(&corpus.intermediates[int])
            .unwrap();
        let root = corpus.int_issuer[int];
        corpus.intermediates[int]
            .verify_signed_by(&corpus.roots[root])
            .unwrap();
    }
    // ...a wrong parent never does.
    let int0 = corpus.leaf_issuer[0];
    let other = (int0 + 1) % corpus.intermediates.len();
    assert!(corpus.leaves[0]
        .verify_signed_by(&corpus.intermediates[other])
        .is_err());
}

#[test]
fn unsigned_corpus_chains_fail_signature_checks() {
    // The default (unsigned) corpus is for scanning only: the validator
    // must reject its chains at the signature step, loudly.
    let corpus = Corpus::generate(CorpusConfig::small(78));
    let mut store = RootStore::new("unsigned");
    for root in &corpus.roots {
        store.add_trusted(root.clone()).unwrap();
    }
    let validator = Validator::new(store, ValidationMode::UserAgent);
    let chain = corpus.chain_for_leaf(0);
    let at = chain[0].validity().not_before + 1_000;
    let out = validator
        .validate(&chain[0], &chain[1..2], Usage::Tls, at)
        .unwrap();
    assert!(!out.accepted());
    assert!(matches!(
        out.final_reason(),
        Some(nrslb::core::RejectReason::BadSignature { .. })
    ));
}
