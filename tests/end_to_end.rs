//! Integration: the full paper pipeline across crates — primary store
//! with GCCs → signed root-store feed → derivative store → GCC-aware
//! validation in all three deployment modes.

use nrslb::core::daemon::{ephemeral_socket_path, TrustDaemon};
use nrslb::core::{Usage, ValidationMode, Validator};
use nrslb::incidents::catalog::{symantec, JUNE_1ST_2016};
use nrslb::incidents::pki::{intermediate_ca, leaf, root_ca, NOW_2017};
use nrslb::rootstore::{Gcc, GccMetadata, RootStore};
use nrslb::rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust, Subscriber};
use std::sync::Arc;

/// The headline flow: a primary expresses partial distrust as a GCC,
/// distributes it over a signed feed, and a derivative's validator
/// enforces it — no hard-coded browser logic anywhere.
#[test]
fn partial_distrust_travels_from_primary_to_derivative_clients() {
    // -- Primary side: Symantec-style incident response --
    let root = root_ca("E2E Symantec Root", 0x70);
    let normal_int = intermediate_ca("E2E Symantec Issuing", 0x71, &root);
    let exempt_int = intermediate_ca("E2E Apple IST", 0x72, &root);

    let mut primary = RootStore::new("nss");
    primary.add_trusted(root.cert.clone()).unwrap();
    let gcc = Gcc::parse(
        "symantec-partial-distrust",
        root.cert.fingerprint(),
        &symantec::listing_2_source(&exempt_int.cert.fingerprint().to_hex()),
        GccMetadata {
            justification: "gradual Symantec distrust".into(),
            discussion_url: "https://wiki.mozilla.org/CA/Symantec_Issues".into(),
            created_at: NOW_2017,
        },
    )
    .unwrap();
    primary.attach_gcc(gcc).unwrap();

    // -- Distribution: signed feed, hourly-poll derivative --
    let coordinator = CoordinatorKey::from_seed([0x73; 32], 4).unwrap();
    let feed_key = FeedKey::new([0x74; 32], 6, &coordinator).unwrap();
    let mut publisher = FeedPublisher::new("nss", feed_key, &primary, 0).unwrap();
    let mut derivative =
        Subscriber::builder("debian", FeedTrust::single(coordinator.public())).build();
    let report = derivative.sync(&mut publisher, 0).unwrap();
    assert!(report.snapshot_applied);

    // The GCC arrived intact.
    let received = derivative.store().gccs_for(&root.cert.fingerprint());
    assert_eq!(received.len(), 1);
    assert_eq!(received[0].name(), "symantec-partial-distrust");

    // -- Client side: validate chains with the derivative's store --
    let old_leaf = leaf(
        "old.example",
        &normal_int,
        JUNE_1ST_2016 - 1_000_000,
        4_000_000_000,
    );
    let new_leaf = leaf("new.example", &normal_int, NOW_2017, 4_000_000_000);
    let apple_leaf = leaf("apple.example", &exempt_int, NOW_2017, 4_000_000_000);
    let at = NOW_2017 + 10_000_000;

    let validator = Validator::new(derivative.store().clone(), ValidationMode::UserAgent);
    let ok = |leaf: &nrslb::x509::Certificate, int: &nrslb::x509::Certificate| {
        validator
            .validate(leaf, std::slice::from_ref(int), Usage::Tls, at)
            .unwrap()
            .accepted()
    };
    assert!(ok(&old_leaf, &normal_int.cert), "pre-2016 leaf stays valid");
    assert!(!ok(&new_leaf, &normal_int.cert), "new leaf is rejected");
    assert!(
        ok(&apple_leaf, &exempt_int.cert),
        "exempt intermediate passes"
    );
}

/// The three deployment modes (§3.1) must agree on accept/reject across
/// a matrix of chains, usages and times.
#[test]
fn deployment_modes_agree() {
    let scenario = symantec::scenario();
    let store = scenario.store.clone();

    let ua = Validator::new(store.clone(), ValidationMode::UserAgent);
    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path("e2e"))
        .spawn(store.clone())
        .unwrap();
    let platform = Validator::new(
        store.clone(),
        ValidationMode::Platform(Arc::new(daemon.client())),
    );
    let hammurabi = Validator::new(store, ValidationMode::Hammurabi);

    let cases = scenario.legitimate.iter().chain(&scenario.attacks);
    for case in cases {
        for usage in [Usage::Tls, Usage::SMime] {
            for dt in [0i64, 400_000_000] {
                let at = case.at + dt;
                let a = ua
                    .validate(&case.leaf, &case.intermediates, usage, at)
                    .unwrap()
                    .accepted();
                let b = platform
                    .validate(&case.leaf, &case.intermediates, usage, at)
                    .unwrap()
                    .accepted();
                let c = hammurabi
                    .validate(&case.leaf, &case.intermediates, usage, at)
                    .unwrap()
                    .accepted();
                assert_eq!(
                    a, b,
                    "{}: user-agent vs platform ({usage}, {at})",
                    case.label
                );
                assert_eq!(
                    a, c,
                    "{}: user-agent vs hammurabi ({usage}, {at})",
                    case.label
                );
            }
        }
    }
}

/// Every incident's GCC behaves identically under all three modes.
#[test]
fn incident_catalog_cross_mode_parity() {
    for spec in nrslb::incidents::all_incidents() {
        let scenario = (spec.build)();
        let ua = Validator::new(scenario.store.clone(), ValidationMode::UserAgent);
        let ham = Validator::new(scenario.store.clone(), ValidationMode::Hammurabi);
        for case in scenario.legitimate.iter().chain(&scenario.attacks) {
            let a = ua
                .validate(&case.leaf, &case.intermediates, case.usage, case.at)
                .unwrap()
                .accepted();
            let b = ham
                .validate(&case.leaf, &case.intermediates, case.usage, case.at)
                .unwrap()
                .accepted();
            assert_eq!(a, b, "{}: {}", spec.id, case.label);
        }
    }
}

/// Systematic constraints compiled to GCCs (paper §3: "Mozilla could
/// write a similar GCC for every root in NSS") enforce the same policy
/// as the built-in store fields.
#[test]
fn systematic_constraints_equal_their_gcc_compilation() {
    let root = root_ca("E2E Sys Root", 0x76);
    let int = intermediate_ca("E2E Sys Int", 0x77, &root);
    let cutoff = 1_600_000_000i64;

    // Store A: native systematic constraint fields.
    let mut native = RootStore::new("native");
    native.add_trusted(root.cert.clone()).unwrap();
    native
        .record_mut(&root.cert.fingerprint())
        .unwrap()
        .tls_distrust_after = Some(cutoff);

    // Store B: the compiled GCC instead.
    let mut compiled = RootStore::new("compiled");
    compiled.add_trusted(root.cert.clone()).unwrap();
    let gcc = native
        .record(&root.cert.fingerprint())
        .unwrap()
        .systematic_gcc()
        .expect("record is constrained");
    compiled.attach_gcc(gcc).unwrap();

    let va = Validator::new(native, ValidationMode::UserAgent);
    let vb = Validator::new(compiled, ValidationMode::UserAgent);
    for nb in [cutoff - 5_000_000, cutoff + 5_000_000] {
        let l = leaf("sys.example", &int, nb, 4_000_000_000);
        let at = cutoff + 10_000_000;
        let a = va
            .validate(&l, std::slice::from_ref(&int.cert), Usage::Tls, at)
            .unwrap()
            .accepted();
        let b = vb
            .validate(&l, std::slice::from_ref(&int.cert), Usage::Tls, at)
            .unwrap()
            .accepted();
        assert_eq!(a, b, "notBefore {nb}");
        assert_eq!(a, nb < cutoff);
    }
}

/// Feeds carry certificates as DER: a derivative materializes
/// byte-identical certificates (fingerprints survive the round trip,
/// which matters because GCCs attach by fingerprint).
#[test]
fn feed_roundtrip_preserves_fingerprints() {
    let pki = nrslb::x509::testutil::simple_chain("fingerprint.example");
    let mut primary = RootStore::new("nss");
    primary.add_trusted(pki.root.clone()).unwrap();

    let coordinator = CoordinatorKey::from_seed([0x78; 32], 4).unwrap();
    let feed_key = FeedKey::new([0x79; 32], 4, &coordinator).unwrap();
    let mut publisher = FeedPublisher::new("nss", feed_key, &primary, 0).unwrap();
    let mut sub = Subscriber::builder("sub", FeedTrust::single(coordinator.public())).build();
    sub.sync(&mut publisher, 0).unwrap();
    let rec = sub.store().record(&pki.root.fingerprint()).unwrap();
    assert_eq!(rec.cert.to_der(), pki.root.to_der());
}
