//! Workspace-level property-based tests (proptest) on the core data
//! structures and invariants.

use nrslb::crypto::merkle::{leaf_hash, verify_inclusion, MerkleTree};
use nrslb::crypto::{hex, sha256};
use nrslb::datalog::{Database, Engine, Program, Val};
use nrslb::der::{decode, encode, Oid, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// DER
// ---------------------------------------------------------------------

/// Strategy for arbitrary DER value trees of bounded depth.
fn der_value(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Boolean),
        any::<i64>().prop_map(|i| Value::Integer(i as i128)),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::OctetString),
        Just(Value::Null),
        proptest::collection::vec(0u64..10_000, 2..6).prop_map(|mut arcs| {
            // First two arcs are range-limited by X.690.
            arcs[0] %= 3;
            if arcs[0] < 2 {
                arcs[1] %= 40;
            }
            Value::Oid(Oid(arcs))
        }),
        "[a-zA-Z0-9 .-]{0,24}".prop_map(Value::PrintableString),
        "[ -~]{0,24}".prop_map(Value::Ia5String),
        any::<String>().prop_map(Value::Utf8String),
        // Timestamps within GeneralizedTime's year range.
        (-60_000_000_000i64..250_000_000_000).prop_map(Value::GeneralizedTime),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(n, bytes)| Value::ContextPrimitive(n % 31, bytes)),
    ];
    leaf.prop_recursive(depth, 64, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Sequence),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Set),
            (any::<u8>(), proptest::collection::vec(inner, 0..4))
                .prop_map(|(n, items)| Value::ContextConstructed(n % 31, items)),
        ]
    })
}

proptest! {
    #[test]
    fn der_roundtrip(value in der_value(3)) {
        let bytes = encode(&value);
        let back = decode(&bytes).expect("encoder output always decodes");
        prop_assert_eq!(back, value);
    }

    #[test]
    fn der_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn der_encoding_is_canonical(value in der_value(3)) {
        // decode(encode(v)) re-encodes to identical bytes.
        let bytes = encode(&value);
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(encode(&back), bytes);
    }
}

// ---------------------------------------------------------------------
// Crypto
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = nrslb::crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    #[test]
    fn merkle_inclusion_all_leaves(entries in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..16), 1..24)) {
        let mut tree = MerkleTree::new();
        for e in &entries {
            tree.push(e);
        }
        let n = entries.len() as u64;
        let root = tree.root();
        for (i, e) in entries.iter().enumerate() {
            let proof = tree.prove_inclusion(i as u64, n).unwrap();
            prop_assert!(verify_inclusion(&leaf_hash(e), &proof, &root).is_ok());
        }
    }

    #[test]
    fn merkle_proofs_reject_cross_leaf(
        entries in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..8), 2..12),
        a in 0usize..12, b in 0usize..12,
    ) {
        let a = a % entries.len();
        let b = b % entries.len();
        prop_assume!(a != b && entries[a] != entries[b]);
        let mut tree = MerkleTree::new();
        for e in &entries {
            tree.push(e);
        }
        let root = tree.root();
        let proof = tree.prove_inclusion(a as u64, entries.len() as u64).unwrap();
        prop_assert!(verify_inclusion(&leaf_hash(&entries[b]), &proof, &root).is_err());
    }
}

// ---------------------------------------------------------------------
// Hash-based signatures
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn hbs_sign_verify_and_tamper(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut kp = nrslb::crypto::Keypair::from_seed(seed, 2).unwrap();
        let pk = kp.public();
        let sig = kp.sign(&msg).unwrap();
        prop_assert!(nrslb::crypto::hbs::verify(&pk, &msg, &sig).is_ok());
        // Any single-bit flip in the message must invalidate.
        let mut tampered = msg.clone();
        if tampered.is_empty() {
            tampered.push(1);
        } else {
            tampered[0] ^= 1;
        }
        prop_assert!(nrslb::crypto::hbs::verify(&pk, &tampered, &sig).is_err());
    }
}

// ---------------------------------------------------------------------
// Datalog
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn datalog_fact_text_roundtrip(
        facts in proptest::collection::vec(
            ("[a-z][a-zA-Z0-9]{0,8}", proptest::collection::vec(
                prop_oneof![
                    any::<i64>().prop_map(Val::Int),
                    "[ -~]{0,16}".prop_map(Val::str),
                ], 1..4)),
            0..20),
    ) {
        let mut db = Database::new();
        for (pred, tuple) in &facts {
            db.add_fact(pred.as_str(), tuple.clone());
        }
        let text = db.to_fact_text();
        let program = Program::parse(&text).expect("fact text parses");
        let rebuilt = Engine::new(&program).unwrap().run(Database::new()).unwrap();
        prop_assert_eq!(rebuilt.len(), db.len());
        for (pred, tuple) in &facts {
            prop_assert!(rebuilt.contains(pred, tuple));
        }
    }

    #[test]
    fn datalog_parser_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = Program::parse(&src);
    }

    #[test]
    fn transitive_closure_matches_reference(
        edges in proptest::collection::vec((0u8..12, 0u8..12), 0..30),
    ) {
        // Reference: Floyd-Warshall over the same edges.
        let mut reach = [[false; 12]; 12];
        for &(a, b) in &edges {
            reach[a as usize][b as usize] = true;
        }
        for k in 0..12 {
            for i in 0..12 {
                for j in 0..12 {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        let mut db = Database::new();
        for &(a, b) in &edges {
            db.add_fact("edge", vec![Val::int(a as i64), Val::int(b as i64)]);
        }
        let program = Program::parse(
            "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).",
        ).unwrap();
        let out = Engine::new(&program).unwrap().run(db).unwrap();
        for i in 0..12i64 {
            for j in 0..12i64 {
                prop_assert_eq!(
                    out.contains("reach", &[Val::int(i), Val::int(j)]),
                    reach[i as usize][j as usize],
                    "reach({}, {})", i, j
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// DNS name matching
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn subtree_membership_is_suffix_consistent(
        labels in proptest::collection::vec("[a-z]{1,5}", 1..5),
        extra in proptest::collection::vec("[a-z]{1,5}", 0..3),
    ) {
        use nrslb::x509::name::{in_subtree, DotSemantics};
        let base = labels.join(".");
        let name = if extra.is_empty() {
            base.clone()
        } else {
            format!("{}.{}", extra.join("."), base)
        };
        // Any name formed by prepending labels to the base is in the
        // RFC 5280 subtree.
        prop_assert!(in_subtree(&name, &base, DotSemantics::Rfc5280));
        // A name with a mutated last label is not.
        let mut outside_labels = labels.clone();
        let last = outside_labels.last_mut().unwrap();
        *last = format!("{last}x");
        let outside = outside_labels.join(".");
        prop_assert!(!in_subtree(&outside, &base, DotSemantics::Rfc5280));
    }
}
