//! Integration: revocation (OneCRL / CRLite-style) composed with
//! GCC-aware validation — the §2.2 responses that were revocations
//! rather than constraints.

use nrslb::core::{Usage, ValidationMode, Validator};
use nrslb::incidents::pki::{intermediate_ca, leaf, root_ca, NOW_2015};
use nrslb::revocation::{CrliteCascade, OneCrl, RevocationChecker};
use nrslb::rootstore::RootStore;
use std::sync::Arc;

/// The 2015 MCS/CNNIC first response: revoke the MCS intermediate via
/// OneCRL/CRLSet. Even a store with full (binary) trust in CNNIC then
/// rejects the MITM chain, while the legitimate intermediate keeps
/// working.
#[test]
fn onecrl_blocks_revoked_intermediate() {
    let root = root_ca("CNNIC ROOT (rev)", 0x60);
    let good_int = intermediate_ca("CNNIC SSL (rev)", 0x61, &root);
    let mcs_int = intermediate_ca("MCS Holdings (rev)", 0x62, &root);
    let mut store = RootStore::new("keep");
    store.add_trusted(root.cert.clone()).unwrap();

    let mut onecrl = OneCrl::new();
    onecrl.revoke_cert(&mcs_int.cert, "used to MITM traffic");

    let validator =
        Validator::new(store, ValidationMode::UserAgent).with_revocation(Arc::new(onecrl));

    let victim = leaf("www.google.com", &mcs_int, NOW_2015 - 1_000, 4_000_000_000);
    let out = validator
        .validate(
            &victim,
            std::slice::from_ref(&mcs_int.cert),
            Usage::Tls,
            NOW_2015,
        )
        .unwrap();
    assert!(!out.accepted());
    assert_eq!(
        out.final_reason(),
        Some(&nrslb::core::RejectReason::Revoked { index: 1 })
    );

    let legit = leaf("www.cnnic.cn", &good_int, NOW_2015 - 1_000, 4_000_000_000);
    let out = validator
        .validate(
            &legit,
            std::slice::from_ref(&good_int.cert),
            Usage::Tls,
            NOW_2015,
        )
        .unwrap();
    assert!(out.accepted());
}

/// WoSign's backdated leaves: revoked individually via OneCRL by
/// (issuer, serial) while the rest of the CA's issuance survives.
#[test]
fn onecrl_issuer_serial_revocation_of_backdated_leaves() {
    let root = root_ca("WoSign (rev)", 0x63);
    let int = intermediate_ca("WoSign Class 1 (rev)", 0x64, &root);
    let mut store = RootStore::new("primary");
    store.add_trusted(root.cert.clone()).unwrap();

    let backdated = leaf("backdated.example.cn", &int, 1_420_000_000, 4_000_000_000);
    let honest = leaf("honest.example.cn", &int, 1_420_000_000, 4_000_000_000);

    let mut onecrl = OneCrl::new();
    onecrl.revoke_issuer_serial(
        &backdated.issuer().to_string(),
        backdated.serial(),
        "backdated SHA-1 certificate",
    );

    let validator =
        Validator::new(store, ValidationMode::UserAgent).with_revocation(Arc::new(onecrl));
    let at = 1_480_000_000;
    assert!(!validator
        .validate(&backdated, std::slice::from_ref(&int.cert), Usage::Tls, at)
        .unwrap()
        .accepted());
    assert!(validator
        .validate(&honest, std::slice::from_ref(&int.cert), Usage::Tls, at)
        .unwrap()
        .accepted());
}

/// The CRLite cascade gives the same verdicts as the exact list it was
/// built from, across the whole universe.
#[test]
fn crlite_cascade_matches_exact_list() {
    let root = root_ca("CRLite Root", 0x65);
    let int = intermediate_ca("CRLite Issuing", 0x66, &root);
    let mut revoked_certs = Vec::new();
    let mut valid_certs = Vec::new();
    for i in 0..40 {
        let l = leaf(&format!("site{i}.example"), &int, 0, 4_000_000_000);
        if i % 5 == 0 {
            revoked_certs.push(l);
        } else {
            valid_certs.push(l);
        }
    }
    let cascade = CrliteCascade::build_from_certs(&revoked_certs, &valid_certs);
    let mut exact = OneCrl::new();
    for c in &revoked_certs {
        exact.revoke_fingerprint(c.fingerprint(), "x");
    }
    for c in revoked_certs.iter().chain(&valid_certs) {
        assert_eq!(cascade.is_revoked(c), exact.is_revoked(c), "{c:?}");
    }
}

/// Revocation verdicts agree between the user-agent and Hammurabi
/// deployment modes (the `revoked/1` facts reach the policy program).
#[test]
fn revocation_cross_mode_parity() {
    let root = root_ca("Rev Parity Root", 0x67);
    let int = intermediate_ca("Rev Parity Int", 0x68, &root);
    let mut store = RootStore::new("parity");
    store.add_trusted(root.cert.clone()).unwrap();

    let bad = leaf("revoked.example", &int, 0, 4_000_000_000);
    let good = leaf("fine.example", &int, 0, 4_000_000_000);
    let mut onecrl = OneCrl::new();
    onecrl.revoke_cert(&bad, "incident");
    let checker: Arc<OneCrl> = Arc::new(onecrl);

    let ua =
        Validator::new(store.clone(), ValidationMode::UserAgent).with_revocation(checker.clone());
    let ham = Validator::new(store, ValidationMode::Hammurabi).with_revocation(checker);

    for l in [&bad, &good] {
        let a = ua
            .validate(l, std::slice::from_ref(&int.cert), Usage::Tls, 1_000)
            .unwrap();
        let b = ham
            .validate(l, std::slice::from_ref(&int.cert), Usage::Tls, 1_000)
            .unwrap();
        assert_eq!(a.accepted(), b.accepted());
        assert_eq!(a.final_reason(), b.final_reason());
    }
}

/// The 2011 Comodo incident (paper §2.1): nine fraudulent leaves,
/// answered by revocation. All nine are blocked; Comodo's legitimate
/// subscribers are untouched — no root removal needed.
#[test]
fn comodo_2011_fraudulent_leaves_revoked() {
    use nrslb::incidents::catalog::comodo;
    let scenario = comodo::scenario();
    let mut onecrl = OneCrl::new();
    for cert in &scenario.fraudulent {
        onecrl.revoke_cert(cert, "fraudulently issued via compromised RA");
    }
    let validator = Validator::new(scenario.store.clone(), ValidationMode::UserAgent)
        .with_revocation(Arc::new(onecrl));
    for cert in &scenario.fraudulent {
        let out = validator
            .validate(
                cert,
                std::slice::from_ref(&scenario.intermediate),
                Usage::Tls,
                scenario.at,
            )
            .unwrap();
        assert!(!out.accepted(), "fraudulent leaf accepted: {cert:?}");
    }
    for cert in &scenario.legitimate {
        let out = validator
            .validate(
                cert,
                std::slice::from_ref(&scenario.intermediate),
                Usage::Tls,
                scenario.at,
            )
            .unwrap();
        assert!(out.accepted(), "legitimate leaf rejected: {cert:?}");
    }

    // Without the revocation list, every fraudulent leaf would pass —
    // revocation is load-bearing here.
    let naive = Validator::new(scenario.store, ValidationMode::UserAgent);
    assert!(naive
        .validate(
            &scenario.fraudulent[0],
            std::slice::from_ref(&scenario.intermediate),
            Usage::Tls,
            scenario.at
        )
        .unwrap()
        .accepted());
}
