//! Adversarial robustness: every byte surface an attacker controls —
//! feed messages, checkpoints, certificates, handshake messages — is
//! mutated exhaustively-ish (seeded PRNG) and must neither panic nor
//! verify.

use nrslb::rootstore::RootStore;
use nrslb::rsf::{Checkpoint, CoordinatorKey, FeedKey, FeedTrust, SignedMessage};
use nrslb::x509::testutil::simple_chain;

/// Small deterministic PRNG so failures are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn mutate(bytes: &[u8], rng: &mut Lcg) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.next() % 4 {
        0 => {
            // Flip one byte.
            let i = (rng.next() as usize) % out.len();
            out[i] ^= 1 + (rng.next() % 255) as u8;
        }
        1 => {
            // Truncate.
            let keep = (rng.next() as usize) % out.len();
            out.truncate(keep);
        }
        2 => {
            // Append garbage.
            for _ in 0..(rng.next() % 8 + 1) {
                out.push((rng.next() & 0xff) as u8);
            }
        }
        _ => {
            // Swap two regions.
            let i = (rng.next() as usize) % out.len();
            let j = (rng.next() as usize) % out.len();
            out.swap(i, j);
        }
    }
    out
}

#[test]
fn mutated_feed_messages_never_verify() {
    let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
    let key = FeedKey::new([2; 32], 8, &coordinator).unwrap();
    let trust = FeedTrust::single(coordinator.public());
    let pki = simple_chain("adv.example");
    let mut store = RootStore::new("nss");
    store.add_trusted(pki.root.clone()).unwrap();
    let snap = nrslb::rsf::Snapshot::capture("nss", 1, 0, &store);
    let message = key
        .sign(nrslb::rsf::signing::MessageKind::Snapshot, &snap.encode())
        .unwrap();
    let bytes = message.encode();

    let mut rng = Lcg(0xfeed);
    let mut decoded_ok = 0usize;
    for _ in 0..2_000 {
        let mutated = mutate(&bytes, &mut rng);
        if mutated == bytes {
            continue;
        }
        if let Ok(parsed) = SignedMessage::decode(&mutated) {
            decoded_ok += 1;
            // A structurally-valid mutation must still fail one of the
            // two signature links or decode to different payload bytes
            // covered by the signature; acceptance would be a forgery.
            if parsed.verify(&trust).is_ok() {
                // Only acceptable if the mutation reconstructed the
                // exact original message.
                assert_eq!(parsed.encode(), bytes, "mutated message verified!");
            }
        }
    }
    // Sanity: the harness actually exercised the decode path.
    assert!(decoded_ok < 2_000);
}

#[test]
fn mutated_checkpoints_never_verify() {
    let coordinator = CoordinatorKey::from_seed([3; 32], 4).unwrap();
    let key = FeedKey::new([4; 32], 8, &coordinator).unwrap();
    let mut log = nrslb::rsf::TransparencyLog::new();
    let msg = key
        .sign(nrslb::rsf::signing::MessageKind::Delta, b"payload")
        .unwrap();
    log.append(&msg);
    let checkpoint = log.checkpoint(&key).unwrap();
    let bytes = checkpoint.encode();

    let mut rng = Lcg(0xc4ec);
    for _ in 0..2_000 {
        let mutated = mutate(&bytes, &mut rng);
        if mutated == bytes {
            continue;
        }
        if let Ok(parsed) = Checkpoint::decode(&mutated) {
            if parsed.verify(&key.public()).is_ok() {
                assert_eq!(parsed.encode(), bytes, "mutated checkpoint verified!");
            }
        }
    }
}

#[test]
fn mutated_certificates_never_validate() {
    use nrslb::core::{Usage, ValidationMode, Validator};
    let pki = simple_chain("advcert.example");
    let mut store = RootStore::new("client");
    store.add_trusted(pki.root.clone()).unwrap();
    let validator = Validator::new(store, ValidationMode::UserAgent);
    let bytes = pki.leaf.to_der().to_vec();

    let mut rng = Lcg(0xce57);
    let mut parsed_ok = 0usize;
    for _ in 0..2_000 {
        let mutated = mutate(&bytes, &mut rng);
        if mutated == bytes {
            continue;
        }
        let Ok(cert) = nrslb::x509::Certificate::from_der(&mutated) else {
            continue;
        };
        parsed_ok += 1;
        // Any surviving parse must fail validation (the TBS no longer
        // matches the signature, or the structure changed).
        let outcome = validator
            .validate(
                &cert,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(
            !outcome.accepted(),
            "mutated certificate accepted: {cert:?}"
        );
    }
    let _ = parsed_ok; // structural mutations rarely parse; that's fine
}

#[test]
fn mutated_handshake_flights_never_complete() {
    use nrslb::core::ValidationMode;
    use nrslb::tls::{Client, ClientConfig, Message, Server, ServerIdentity};
    use nrslb::x509::builder::CaKey;

    let ca = CaKey::generate_for_tests("Adv TLS Root", 0xad);
    let (identity, root) = ServerIdentity::issue_under_test_root("adv-tls.example", &ca);
    let mut store = RootStore::new("client");
    store.add_trusted(root).unwrap();
    let mut server = Server::new(identity);

    // A pristine flight, serialized.
    let mut probe = Client::new(
        ClientConfig::new(store.clone(), ValidationMode::UserAgent, 1_000),
        "adv-tls.example",
        [0x11; 32],
    );
    let hello = probe.start();
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let bytes = Message::ServerFlight(Box::new(flight)).to_bytes();

    let mut rng = Lcg(0x715);
    for _ in 0..500 {
        let mutated = mutate(&bytes, &mut rng);
        if mutated == bytes {
            continue;
        }
        let Ok(Message::ServerFlight(flight)) = Message::from_bytes(&mutated) else {
            continue;
        };
        // Fresh client per attempt (state machines are single-shot).
        let mut client = Client::new(
            ClientConfig::new(store.clone(), ValidationMode::UserAgent, 1_000),
            "adv-tls.example",
            [0x11; 32],
        );
        let _ = client.start();
        assert!(
            client.process_server_flight(&flight).is_err(),
            "mutated flight accepted"
        );
    }
}
