//! Edge-case coverage for the validator that unit tests don't reach:
//! failures at every chain position, the leading-dot semantics knob,
//! concurrent daemon clients, and feed-driven policy retraction.

use nrslb::core::daemon::{ephemeral_socket_path, TrustDaemon};
use nrslb::core::validate::ValidatorConfig;
use nrslb::core::{RejectReason, Usage, ValidationMode, Validator};
use nrslb::rootstore::{Gcc, GccMetadata, RootStore};
use nrslb::x509::builder::{CaKey, CertificateBuilder};
use nrslb::x509::extensions::NameConstraints;
use nrslb::x509::name::DotSemantics;
use nrslb::x509::DistinguishedName;
use std::sync::Arc;

#[test]
fn expiry_reported_at_each_chain_position() {
    // Build a chain where each certificate has a distinct expiry, then
    // validate at times where exactly one has lapsed.
    let root_key = CaKey::generate_for_tests("Edge Root", 0xb0);
    let int_key = CaKey::generate_for_tests("Edge Int", 0xb1);
    // The validator reports the first expired certificate scanning from
    // the leaf, so expiries are staggered root-first: root at 2 000,
    // intermediate at 2 500, leaf at 3 000.
    let root = CertificateBuilder::new()
        .validity_window(0, 2_000)
        .ca(None)
        .build_self_signed(&root_key)
        .unwrap();
    let int = CertificateBuilder::new()
        .subject(int_key.name().clone())
        .subject_key(int_key.public())
        .validity_window(0, 2_500)
        .ca(Some(0))
        .build_signed_by(&root_key)
        .unwrap();
    let leaf = CertificateBuilder::new()
        .subject(DistinguishedName::common_name("edge.example"))
        .dns_names(&["edge.example"])
        .validity_window(0, 3_000)
        .build_signed_by(&int_key)
        .unwrap();
    let mut store = RootStore::new("edges");
    store.add_trusted(root).unwrap();
    let v = Validator::new(store, ValidationMode::UserAgent);

    let pool = [int];
    let at = |t: i64| v.validate(&leaf, &pool, Usage::Tls, t).unwrap();
    assert!(at(1_000).accepted());
    assert_eq!(
        at(2_200).final_reason(),
        Some(&RejectReason::Expired { index: 2 })
    );
    assert_eq!(
        at(2_600).final_reason(),
        Some(&RejectReason::Expired { index: 1 })
    );
    assert_eq!(
        at(3_500).final_reason(),
        Some(&RejectReason::Expired { index: 0 })
    );
}

#[test]
fn dot_semantics_knob_changes_verdicts() {
    // A name-constrained intermediate with a dotted base: under RFC 5280
    // semantics the apex name matches; under the stricter reading only
    // proper subdomains do — the exact Firefox/OpenSSL discrepancy the
    // paper cites (§5.1).
    let root_key = CaKey::generate_for_tests("Dot Root", 0xb2);
    let int_key = CaKey::generate_for_tests("Dot Int", 0xb3);
    let root = CertificateBuilder::new()
        .validity_window(0, 4_000_000_000)
        .ca(None)
        .build_self_signed(&root_key)
        .unwrap();
    let int = CertificateBuilder::new()
        .subject(int_key.name().clone())
        .subject_key(int_key.public())
        .validity_window(0, 4_000_000_000)
        .ca(Some(0))
        .name_constraints(NameConstraints::permit(&[".corp.example"]))
        .build_signed_by(&root_key)
        .unwrap();
    let apex = CertificateBuilder::new()
        .subject(DistinguishedName::common_name("corp.example"))
        .dns_names(&["corp.example"])
        .validity_window(0, 4_000_000_000)
        .build_signed_by(&int_key)
        .unwrap();
    let sub = CertificateBuilder::new()
        .subject(DistinguishedName::common_name("www.corp.example"))
        .dns_names(&["www.corp.example"])
        .validity_window(0, 4_000_000_000)
        .build_signed_by(&int_key)
        .unwrap();
    let mut store = RootStore::new("dots");
    store.add_trusted(root).unwrap();
    let pool = [int];

    for (semantics, apex_ok) in [
        (DotSemantics::Rfc5280, true),
        (DotSemantics::RequireSubdomain, false),
    ] {
        let v =
            Validator::new(store.clone(), ValidationMode::UserAgent).with_config(ValidatorConfig {
                dot_semantics: semantics,
                ..Default::default()
            });
        assert_eq!(
            v.validate(&apex, &pool, Usage::Tls, 1_000)
                .unwrap()
                .accepted(),
            apex_ok,
            "{semantics:?} apex"
        );
        assert!(
            v.validate(&sub, &pool, Usage::Tls, 1_000)
                .unwrap()
                .accepted(),
            "{semantics:?} subdomain always allowed"
        );
    }
}

#[test]
fn daemon_serves_concurrent_clients() {
    let pki = nrslb::x509::testutil::simple_chain("concurrent.example");
    let mut store = RootStore::new("platform");
    store.add_trusted(pki.root.clone()).unwrap();
    store
        .attach_gcc(
            Gcc::parse(
                "tls-only",
                pki.root.fingerprint(),
                r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
                GccMetadata::default(),
            )
            .unwrap(),
        )
        .unwrap();
    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path("concurrent"))
        .spawn(store.clone())
        .unwrap();

    let mut handles = Vec::new();
    for t in 0..8 {
        let client = daemon.client();
        let store = store.clone();
        let leaf = pki.leaf.clone();
        let int = pki.intermediate.clone();
        let now = pki.now;
        handles.push(std::thread::spawn(move || {
            let validator = Validator::new(store, ValidationMode::Platform(Arc::new(client)));
            for i in 0..5 {
                let tls = validator
                    .validate(&leaf, std::slice::from_ref(&int), Usage::Tls, now)
                    .unwrap();
                assert!(tls.accepted(), "thread {t} iter {i}");
                let smime = validator
                    .validate(&leaf, std::slice::from_ref(&int), Usage::SMime, now)
                    .unwrap();
                assert!(!smime.accepted(), "thread {t} iter {i} smime");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
}

#[test]
fn feed_retracts_gcc_and_derivative_follows() {
    use nrslb::rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust, Subscriber};
    let pki = nrslb::x509::testutil::simple_chain("retract.example");
    let mut primary = RootStore::new("nss");
    primary.add_trusted(pki.root.clone()).unwrap();
    let gcc = Gcc::parse(
        "temporary-block",
        pki.root.fingerprint(),
        r#"valid(Chain, "never") :- leaf(Chain, _)."#,
        GccMetadata::default(),
    )
    .unwrap();
    primary.attach_gcc(gcc.clone()).unwrap();

    let coordinator = CoordinatorKey::from_seed([0xb4; 32], 4).unwrap();
    let key = FeedKey::new([0xb5; 32], 8, &coordinator).unwrap();
    let mut publisher = FeedPublisher::new("nss", key, &primary, 0).unwrap();
    let mut derivative =
        Subscriber::builder("derivative", FeedTrust::single(coordinator.public())).build();
    derivative.sync(&mut publisher, 0).unwrap();
    // Derivative clients reject everything under the root.
    let check = |store: &RootStore| {
        Validator::new(store.clone(), ValidationMode::UserAgent)
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap()
            .accepted()
    };
    assert!(!check(derivative.store()));

    // The primary retracts the GCC (incident resolved); the derivative
    // picks it up on the next poll and clients recover.
    primary.detach_gcc(&pki.root.fingerprint(), &gcc.source_hash());
    publisher.publish(&primary, 100).unwrap();
    let report = derivative.sync(&mut publisher, 0).unwrap();
    assert_eq!(report.deltas_applied, 1);
    assert!(derivative
        .store()
        .gccs_for(&pki.root.fingerprint())
        .is_empty());
    assert!(check(derivative.store()));
}

#[test]
fn systematic_constraint_change_propagates() {
    use nrslb::rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust, Subscriber};
    let pki = nrslb::x509::testutil::simple_chain("sysprop.example");
    let mut primary = RootStore::new("nss");
    primary.add_trusted(pki.root.clone()).unwrap();

    let coordinator = CoordinatorKey::from_seed([0xb6; 32], 4).unwrap();
    let key = FeedKey::new([0xb7; 32], 8, &coordinator).unwrap();
    let mut publisher = FeedPublisher::new("nss", key, &primary, 0).unwrap();
    let mut derivative =
        Subscriber::builder("derivative", FeedTrust::single(coordinator.public())).build();
    derivative.sync(&mut publisher, 0).unwrap();
    assert!(
        derivative
            .store()
            .record(&pki.root.fingerprint())
            .unwrap()
            .ev_allowed
    );

    // NSS flips the EV bit and sets a TLS cutoff.
    {
        let rec = primary.record_mut(&pki.root.fingerprint()).unwrap();
        rec.ev_allowed = false;
        rec.tls_distrust_after = Some(42);
    }
    publisher.publish(&primary, 100).unwrap();
    derivative.sync(&mut publisher, 0).unwrap();
    let rec = derivative.store().record(&pki.root.fingerprint()).unwrap();
    assert!(!rec.ev_allowed);
    assert_eq!(rec.tls_distrust_after, Some(42));
}
