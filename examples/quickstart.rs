//! Quickstart: validate a chain, then attach the paper's Listing 1 GCC
//! to its root and watch the policy bite — in-process first, then the
//! same evaluation delegated to a trust daemon over IPC.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nrslb::core::daemon::{ephemeral_socket_path, TrustDaemon};
use nrslb::core::{Usage, ValidationMode, Validator};
use nrslb::rootstore::{Gcc, GccMetadata, RootStore};
use nrslb::x509::testutil::simple_chain;
use std::sync::Arc;

fn main() {
    // A synthetic PKI: root -> intermediate -> leaf for one hostname.
    let pki = simple_chain("shop.example");
    println!("leaf:         {:?}", pki.leaf);
    println!("intermediate: {:?}", pki.intermediate);
    println!("root:         {:?}", pki.root);

    // A root store that trusts the root, with no policy attached.
    let mut store = RootStore::new("quickstart");
    store.add_trusted(pki.root.clone()).unwrap();

    let validator = Validator::new(store.clone(), ValidationMode::UserAgent);
    let outcome = validator
        .validate_for_host(
            &pki.leaf,
            std::slice::from_ref(&pki.intermediate),
            "shop.example",
            pki.now,
        )
        .unwrap();
    println!("\nwithout GCC: accepted = {}", outcome.accepted());

    // Attach the paper's Listing 1 (TrustCor) constraint: the leaf must
    // have been issued before 2022-11-30. Our leaf is issued in early
    // 2022, so TLS stays valid; shift time forward and issue later and
    // it would not.
    let gcc = Gcc::parse(
        "trustcor-listing-1",
        pki.root.fingerprint(),
        r#"
        nov30th2022(1669784400).
        valid(Chain, "S/MIME") :-
          leaf(Chain, Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
        valid(Chain, "TLS") :-
          leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
        "#,
        GccMetadata {
            justification: "TrustCor date/usage constraints (paper Listing 1)".into(),
            discussion_url: "https://groups.google.com/a/mozilla.org/g/dev-security-policy".into(),
            created_at: 1_669_784_400,
        },
    )
    .expect("GCC parses, is safe and stratifies");
    store.attach_gcc(gcc).unwrap();

    let validator = Validator::new(store.clone(), ValidationMode::UserAgent);
    for usage in [Usage::Tls, Usage::SMime] {
        let outcome = validator
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                usage,
                pki.now,
            )
            .unwrap();
        println!(
            "with Listing-1 GCC, usage {usage}: accepted = {} (gcc verdicts: {:?})",
            outcome.accepted(),
            outcome
                .attempts
                .last()
                .map(|a| a
                    .gcc_verdicts
                    .iter()
                    .map(|v| (&*v.gcc_name, v.accepted))
                    .collect::<Vec<_>>())
                .unwrap_or_default()
        );
    }

    // The same policy through the *platform execution* mode: a trust
    // daemon owns the store and evaluates GCCs over a Unix socket,
    // while the user-agent validator delegates via a keep-alive client.
    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path("quickstart"))
        .spawn(store.clone())
        .unwrap();
    let platform = Validator::new(
        store,
        ValidationMode::Platform(Arc::new(daemon.keep_alive_client())),
    );
    let outcome = platform
        .validate(
            &pki.leaf,
            std::slice::from_ref(&pki.intermediate),
            Usage::Tls,
            pki.now,
        )
        .unwrap();
    println!(
        "\nvia trust daemon ({:?} engine): accepted = {}",
        daemon.engine(),
        outcome.accepted()
    );
}
