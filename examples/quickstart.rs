//! Quickstart: validate a chain, then attach the paper's Listing 1 GCC
//! to its root and watch the policy bite.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nrslb::core::{Usage, ValidationMode, Validator};
use nrslb::rootstore::{Gcc, GccMetadata, RootStore};
use nrslb::x509::testutil::simple_chain;

fn main() {
    // A synthetic PKI: root -> intermediate -> leaf for one hostname.
    let pki = simple_chain("shop.example");
    println!("leaf:         {:?}", pki.leaf);
    println!("intermediate: {:?}", pki.intermediate);
    println!("root:         {:?}", pki.root);

    // A root store that trusts the root, with no policy attached.
    let mut store = RootStore::new("quickstart");
    store.add_trusted(pki.root.clone()).unwrap();

    let validator = Validator::new(store.clone(), ValidationMode::UserAgent);
    let outcome = validator
        .validate_for_host(
            &pki.leaf,
            std::slice::from_ref(&pki.intermediate),
            "shop.example",
            pki.now,
        )
        .unwrap();
    println!("\nwithout GCC: accepted = {}", outcome.accepted());

    // Attach the paper's Listing 1 (TrustCor) constraint: the leaf must
    // have been issued before 2022-11-30. Our leaf is issued in early
    // 2022, so TLS stays valid; shift time forward and issue later and
    // it would not.
    let gcc = Gcc::parse(
        "trustcor-listing-1",
        pki.root.fingerprint(),
        r#"
        nov30th2022(1669784400).
        valid(Chain, "S/MIME") :-
          leaf(Chain, Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
        valid(Chain, "TLS") :-
          leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
        "#,
        GccMetadata {
            justification: "TrustCor date/usage constraints (paper Listing 1)".into(),
            discussion_url: "https://groups.google.com/a/mozilla.org/g/dev-security-policy".into(),
            created_at: 1_669_784_400,
        },
    )
    .expect("GCC parses, is safe and stratifies");
    store.attach_gcc(gcc).unwrap();

    let validator = Validator::new(store, ValidationMode::UserAgent);
    for usage in [Usage::Tls, Usage::SMime] {
        let outcome = validator
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                usage,
                pki.now,
            )
            .unwrap();
        println!(
            "with Listing-1 GCC, usage {usage}: accepted = {} (gcc verdicts: {:?})",
            outcome.accepted(),
            outcome
                .attempts
                .last()
                .map(|a| a
                    .gcc_verdicts
                    .iter()
                    .map(|v| (&*v.gcc_name, v.accepted))
                    .collect::<Vec<_>>())
                .unwrap_or_default()
        );
    }
}
