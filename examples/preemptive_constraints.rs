//! Pre-emptive constraints (paper §5): infer a CA's scope of issuance
//! from a CT log, compile it into a GCC, and catch mis-issuance that the
//! CAge baseline (names only) misses.
//!
//! ```sh
//! cargo run --example preemptive_constraints
//! ```

use nrslb::core::{evaluate_gcc, Usage};
use nrslb::ctlog::{Corpus, CorpusConfig};
use nrslb::preemptive::cage::CageModel;
use nrslb::preemptive::gccgen::{generate_cage_gcc, generate_preemptive_gcc, suggest_split};
use nrslb::preemptive::scope::{infer_scopes, tld_cdf_at};
use nrslb::x509::{CertificateBuilder, DistinguishedName};

fn main() {
    // A CT-log-shaped corpus calibrated to the paper's 2022 measurement.
    let corpus = Corpus::generate(CorpusConfig::paper_2022(20_000));
    println!(
        "corpus: {} roots, {} intermediates, {} leaves",
        corpus.roots.len(),
        corpus.intermediates.len(),
        corpus.leaves.len()
    );

    // Scope inference over the log (the "study" §5.2 calls for).
    let scopes = infer_scopes(&corpus.leaves);
    println!(
        "CAge observation: {:.0}% of issuing CAs sign for <= 10 TLDs (paper: 90%)\n",
        tld_cdf_at(&scopes, 10) * 100.0
    );

    // Pick the busiest CA and constrain it.
    let ca = {
        let mut counts = vec![0usize; corpus.intermediates.len()];
        for &i in &corpus.leaf_issuer {
            counts[i] += 1;
        }
        (0..counts.len()).max_by_key(|&i| counts[i]).unwrap()
    };
    let int = &corpus.intermediates[ca];
    let root = &corpus.roots[corpus.int_issuer[ca]];
    let scope = &scopes[&int.subject().to_string()];
    println!("busiest CA: {}", int.subject());
    println!(
        "  observed scope: {} leaves, {} TLDs, EKUs {:?}, max lifetime {} days, EV seen: {}",
        scope.leaf_count,
        scope.tlds.len(),
        scope.ekus,
        scope.max_lifetime / 86_400,
        scope.ev_seen
    );

    let preemptive = generate_preemptive_gcc("preemptive", root.fingerprint(), scope, 0).unwrap();
    let cage_gcc = generate_cage_gcc("cage", root.fingerprint(), scope, 0).unwrap();
    let cage_model = CageModel::train(&scopes);
    println!("\ngenerated pre-emptive GCC:\n{}", preemptive.source());

    // Mis-issuance 1: a TLD the CA never served (both catch it).
    let name_attack = CertificateBuilder::new()
        .subject(DistinguishedName::common_name("bank.evil"))
        .dns_names(&["login.bank.neverseen"])
        .validity_window(0, 90 * 86_400)
        .build_unsigned(int.subject().clone())
        .unwrap();
    // Mis-issuance 2: names in scope, but a 20-year lifetime (only the
    // pre-emptive GCC catches it — the paper's advantage over CAge).
    let in_tld = scope.tlds.iter().next().unwrap();
    let field_attack = CertificateBuilder::new()
        .subject(DistinguishedName::common_name("sneaky"))
        .dns_names(&[&format!("sneaky.{in_tld}")])
        .validity_window(0, 20 * 365 * 86_400)
        .key_usage(nrslb::x509::KeyUsage::DIGITAL_SIGNATURE)
        .extended_key_usage(nrslb::x509::ExtendedKeyUsage::server_auth())
        .build_unsigned(int.subject().clone())
        .unwrap();

    for (label, attack) in [
        ("novel-TLD attack", name_attack),
        ("20-year-lifetime attack", field_attack),
    ] {
        let chain = vec![attack.clone(), int.clone(), root.clone()];
        println!(
            "{label}: CAge accepts = {}, CAge-GCC accepts = {}, pre-emptive GCC accepts = {}",
            cage_model.accepts(&attack),
            evaluate_gcc(&cage_gcc, &chain, Usage::Tls).unwrap(),
            evaluate_gcc(&preemptive, &chain, Usage::Tls).unwrap(),
        );
    }

    // Split suggestion (§5.2's bimodal CAs).
    match suggest_split(scope, 0.3) {
        Some((a, b)) => println!("\nbimodal issuance: suggest splitting into {a:?} and {b:?}"),
        None => println!("\nno bimodal split suggested for this CA (scope is unimodal)"),
    }
}
