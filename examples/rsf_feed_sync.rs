//! Root-Store Feeds end to end (paper §4): a primary publishes signed
//! snapshots and deltas (including a GCC), a derivative polls, and a
//! merge with the derivative's own additions flags the dangerous
//! conflict.
//!
//! ```sh
//! cargo run --example rsf_feed_sync
//! ```

use nrslb::rootstore::{Gcc, GccMetadata, RootStore, TrustStatus};
use nrslb::rsf::merge::MergePolicy;
use nrslb::rsf::{
    merge_stores, FeedKey, FeedPublisher, FeedTrust, QuorumAuthority, QuorumConfig, Subscriber,
};
use nrslb::x509::testutil::simple_chain;

fn main() {
    // Key ceremony: the coordinating body (the ICANN stand-in) is a
    // 2-of-3 signer quorum, so no single leaked key can forge the
    // feed; subscribers pin the quorum and reject any checkpoint
    // witnessed by fewer than 2 signers.
    let authority = QuorumAuthority::from_seed([1; 32], QuorumConfig { k: 2, n: 3 }, 6).unwrap();
    let feed_key = FeedKey::new_quorum([2; 32], 8, &authority).unwrap();
    let trust = FeedTrust::quorum(authority.trust());

    // The primary store starts with two roots.
    let pki_a = simple_chain("feed-a.example");
    let pki_b = simple_chain("feed-b.example");
    let mut primary = RootStore::new("nss");
    primary.add_trusted(pki_a.root.clone()).unwrap();
    primary.add_trusted(pki_b.root.clone()).unwrap();

    let mut publisher = FeedPublisher::new_quorum("nss", feed_key, authority, &primary, 0).unwrap();
    let mut debian = Subscriber::builder("debian", trust).build();

    // Bootstrap sync: the derivative fetches the signed snapshot.
    let report = debian.sync(&mut publisher, 0).unwrap();
    println!(
        "bootstrap: snapshot applied = {}, sequence = {}, {} bytes",
        report.snapshot_applied, report.sequence, report.bytes_transferred
    );
    println!("derivative now trusts {} roots\n", debian.store().len());

    // Incident: the primary partially distrusts root A via a GCC and
    // publishes a delta.
    let gcc = Gcc::parse(
        "incident-response",
        pki_a.root.fingerprint(),
        r#"valid(Chain, "TLS") :- leaf(Chain, _)."#, // TLS-only from now on
        GccMetadata {
            justification: "S/MIME issuance compromised; restrict root A to TLS".into(),
            discussion_url: "https://bugzilla.example/4242".into(),
            created_at: 3_600,
        },
    )
    .unwrap();
    primary.attach_gcc(gcc).unwrap();
    publisher.publish(&primary, 3_600).unwrap();

    let report = debian.sync(&mut publisher, 0).unwrap();
    println!(
        "hourly poll: {} delta(s) applied, sequence = {}",
        report.deltas_applied, report.sequence
    );
    let gccs = debian.store().gccs_for(&pki_a.root.fingerprint());
    println!(
        "derivative received GCC '{}' with justification: {:?}\n",
        gccs[0].name(),
        gccs[0].metadata().justification
    );

    // Later: the primary removes root B outright (negative inclusion).
    primary.distrust(pki_b.root.fingerprint(), "key compromise");
    publisher.publish(&primary, 7_200).unwrap();
    debian.sync(&mut publisher, 0).unwrap();
    println!(
        "after distrust delta, root B status at derivative: {:?}",
        debian.store().status(&pki_b.root.fingerprint())
    );

    // The derivative augments its store... by re-adding root B. The
    // merge flags the conflict instead of silently resolving it.
    let mut derivative_own = debian.store().clone();
    derivative_own
        .add_trusted_overriding(pki_b.root.clone())
        .unwrap();
    let report = merge_stores(
        "merged",
        debian.store(),
        &derivative_own,
        MergePolicy::PrimaryWins,
    );
    println!("\nmerge of primary feed with derivative additions:");
    for conflict in &report.conflicts {
        let nrslb::rsf::Conflict::PrimaryDistrustsDerivativeTrusts {
            fingerprint,
            justification,
        } = conflict;
        println!(
            "  CONFLICT: {} distrusted by primary ({justification}) but trusted by derivative",
            fingerprint.short()
        );
    }
    assert_eq!(
        report.merged.status(&pki_b.root.fingerprint()),
        TrustStatus::Distrusted
    );
    println!("  primary-wins merge keeps it distrusted");
}
