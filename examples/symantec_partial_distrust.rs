//! The Debian dilemma (paper §2.3): replay the 2018 Symantec partial
//! distrust under the three derivative strategies.
//!
//! ```sh
//! cargo run --example symantec_partial_distrust
//! ```

use nrslb::incidents::catalog::symantec;
use nrslb::incidents::matrix::{evaluate_scenario, DerivativeStrategy};

fn main() {
    // A population: 30 pre-cutoff subscribers, 10 post-cutoff leaves via
    // the exempt Apple intermediate, 20 post-cutoff leaves the primary
    // policy (Listing 2) rejects.
    let scenario = symantec::scenario_sized(30, 10, 20);
    println!("Symantec scenario:");
    println!("  affected root: {:?}", scenario.affected_root);
    println!(
        "  attached GCC:  {}",
        scenario
            .store
            .gccs_for(&scenario.affected_root.fingerprint())[0]
            .name()
    );
    println!(
        "  {} legitimate chains, {} mis-issued chains\n",
        scenario.legitimate.len(),
        scenario.attacks.len()
    );

    for strategy in [
        DerivativeStrategy::BinaryKeep,
        DerivativeStrategy::BinaryRemove,
        DerivativeStrategy::Gcc,
    ] {
        let stats = evaluate_scenario(&scenario, strategy);
        println!("strategy {strategy}:");
        println!(
            "  legitimate accepted: {}/{}",
            stats.legitimate_accepted, stats.legitimate_total
        );
        println!(
            "  attacks accepted:    {}/{}",
            stats.attacks_accepted, stats.attacks_total
        );
        let verdict = if stats.matches_primary() {
            "matches the primary exactly"
        } else if stats.vulnerable() {
            "VULNERABLE: accepts chains the primary rejects"
        } else {
            "DENIAL OF SERVICE: rejects chains the primary accepts (Debian was forced to revert this)"
        };
        println!("  -> {verdict}\n");
    }
}
