//! The platform-execution deployment mode (paper §3.1): a trust daemon
//! owning the platform root store evaluates GCCs over a Unix-domain
//! socket while the user-agent drives chain construction.
//!
//! ```sh
//! cargo run --example trust_daemon
//! ```

use nrslb::core::daemon::{ephemeral_socket_path, TrustDaemon};
use nrslb::core::{Usage, ValidationMode, Validator};
use nrslb::rootstore::{Gcc, GccMetadata, RootStore};
use nrslb::x509::testutil::simple_chain;
use std::sync::Arc;

fn main() {
    let pki = simple_chain("daemon-demo.example");

    // The *platform* root store (what /etc/ssl/certs would be, plus
    // policy): trusts the root and carries a GCC that limits it to TLS.
    let mut platform_store = RootStore::new("platform");
    platform_store.add_trusted(pki.root.clone()).unwrap();
    platform_store
        .attach_gcc(
            Gcc::parse(
                "tls-only",
                pki.root.fingerprint(),
                r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
                GccMetadata {
                    justification: "email mis-issuance incident: restrict to TLS".into(),
                    ..Default::default()
                },
            )
            .unwrap(),
        )
        .unwrap();

    // Spawn the daemon (a thread in this demo; a systemd service in the
    // deployment the paper sketches).
    let socket = ephemeral_socket_path("example");
    let daemon = TrustDaemon::builder()
        .socket(&socket)
        .spawn(platform_store.clone())
        .unwrap();
    println!(
        "trust daemon listening on {}",
        daemon.socket_path().display()
    );

    // The user-agent: pulls root *certificates* from the platform (as
    // today) but delegates GCC evaluation to the daemon over IPC.
    let user_agent = Validator::new(
        platform_store,
        ValidationMode::Platform(Arc::new(daemon.client())),
    );

    for usage in [Usage::Tls, Usage::SMime] {
        let outcome = user_agent
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                usage,
                pki.now,
            )
            .unwrap();
        println!(
            "validate for {usage}: accepted = {} ({} candidate chain(s) tried)",
            outcome.accepted(),
            outcome.attempts.len()
        );
        if let Some(reason) = outcome.final_reason() {
            println!("  rejected because: {reason}");
        }
    }
    // Dropping the daemon handle shuts it down and removes the socket.
    drop(daemon);
    println!("daemon stopped, socket removed: {}", !socket.exists());
}
