//! A TLS-shaped handshake where the user-agent enforces a GCC (paper
//! §1/§3.1): the server's certificate is fine by every classical check,
//! but the root store's policy decides.
//!
//! ```sh
//! cargo run --example tls_handshake
//! ```

use nrslb::core::ValidationMode;
use nrslb::rootstore::{Gcc, GccMetadata, RootStore};
use nrslb::tls::{Client, ClientConfig, Server, ServerIdentity, TlsError};
use nrslb::x509::builder::CaKey;

fn main() {
    // Server side: an identity under a root the client trusts.
    let ca = CaKey::generate_for_tests("Handshake Demo Root", 0x77);
    let (identity, root) = ServerIdentity::issue_under_test_root("pay.example", &ca);
    let mut server = Server::new(identity);

    let mut store = RootStore::new("browser");
    store.add_trusted(root.clone()).unwrap();

    // Handshake 1: no policy — succeeds.
    let mut client = Client::new(
        ClientConfig::new(store.clone(), ValidationMode::UserAgent, 1_000),
        "pay.example",
        [0x01; 32],
    );
    let hello = client.start();
    let flight = server.respond(&hello, [0x02; 32]).unwrap();
    let finished = client.process_server_flight(&flight).unwrap();
    server.finish(&finished).unwrap();
    println!(
        "handshake without policy: session established, master secret {}",
        client.session().unwrap().master_secret.short()
    );

    // The primary pushes a WoSign-style partial distrust: only
    // certificates issued before t=500 stay valid. Our server's leaf is
    // issued at t=0... but wait, it was issued with notBefore 0, so it
    // survives. Tighten to before t=0 to show the rejection.
    let gcc = Gcc::parse(
        "no-new-certs",
        root.fingerprint(),
        "cutoff(0).\nvalid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff(T), NB < T.",
        GccMetadata {
            justification: "distrust all newly issued certificates".into(),
            ..Default::default()
        },
    )
    .unwrap();
    store.attach_gcc(gcc).unwrap();

    // Handshake 2: same server, same chain — the GCC rejects it.
    let mut client = Client::new(
        ClientConfig::new(store, ValidationMode::UserAgent, 1_000),
        "pay.example",
        [0x03; 32],
    );
    let hello = client.start();
    let flight = server.respond(&hello, [0x04; 32]).unwrap();
    match client.process_server_flight(&flight) {
        Err(TlsError::CertificateRejected(why)) => {
            println!("handshake with GCC: rejected at the certificate step: {why}");
        }
        other => panic!("expected certificate rejection, got {other:?}"),
    }
}
